//! Attribute identifiers and the attribute catalog.
//!
//! FDB keeps attribute names in the f-tree rather than with each singleton,
//! which is what makes its `rename` operator constant-time (§2.1). We follow
//! the same design: attribute names are interned once in a [`Catalog`] and
//! every schema, f-tree node and plan operator refers to attributes by a
//! compact [`AttrId`].

use std::collections::HashMap;
use std::fmt;

/// Compact identifier of an attribute, valid within one [`Catalog`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AttrId(pub u32);

impl AttrId {
    /// Index view for direct vector addressing.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Interner mapping attribute names to [`AttrId`]s and back.
///
/// The catalog is append-only; ids are dense and never recycled, so they can
/// be used as vector indices throughout the engine.
#[derive(Clone, Debug, Default)]
pub struct Catalog {
    names: Vec<String>,
    index: HashMap<String, AttrId>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its id (existing or fresh).
    pub fn intern(&mut self, name: &str) -> AttrId {
        if let Some(&id) = self.index.get(name) {
            return id;
        }
        let id = AttrId(self.names.len() as u32);
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        id
    }

    /// Interns several names at once, in order.
    pub fn intern_all<'a>(&mut self, names: impl IntoIterator<Item = &'a str>) -> Vec<AttrId> {
        names.into_iter().map(|n| self.intern(n)).collect()
    }

    /// Looks up an already-interned name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.index.get(name).copied()
    }

    /// Returns the name of `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this catalog.
    pub fn name(&self, id: AttrId) -> &str {
        &self.names[id.idx()]
    }

    /// Number of interned attributes.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True if no attribute has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Generates a fresh attribute with a unique, derived name.
    ///
    /// Used for aggregate output attributes such as `sum(price)` when the
    /// query does not name them explicitly; if the derived name collides, a
    /// numeric suffix disambiguates.
    pub fn fresh(&mut self, base: &str) -> AttrId {
        if self.lookup(base).is_none() {
            return self.intern(base);
        }
        for i in 2.. {
            let candidate = format!("{base}_{i}");
            if self.lookup(&candidate).is_none() {
                return self.intern(&candidate);
            }
        }
        unreachable!("catalog exhausted usize suffixes")
    }

    /// Iterates over `(id, name)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (AttrId(i as u32), n.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.intern("customer");
        let b = c.intern("customer");
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut c = Catalog::new();
        let ids = c.intern_all(["a", "b", "c"]);
        assert_eq!(ids, vec![AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(c.name(ids[1]), "b");
    }

    #[test]
    fn lookup_missing_is_none() {
        let c = Catalog::new();
        assert_eq!(c.lookup("nope"), None);
    }

    #[test]
    fn fresh_avoids_collisions() {
        let mut c = Catalog::new();
        c.intern("sum(price)");
        let f = c.fresh("sum(price)");
        assert_eq!(c.name(f), "sum(price)_2");
        let g = c.fresh("sum(price)");
        assert_eq!(c.name(g), "sum(price)_3");
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut c = Catalog::new();
        c.intern_all(["x", "y"]);
        let collected: Vec<_> = c.iter().map(|(id, n)| (id.0, n.to_string())).collect();
        assert_eq!(collected, vec![(0, "x".to_string()), (1, "y".to_string())]);
    }
}
