//! Ordering-strategy ablation: `ORDER BY … LIMIT k` through the three
//! physical strategies (DESIGN.md "ordering strategies"):
//!
//! * **stream** — restructure by swaps until Theorem 2 holds, then
//!   enumerate with constant delay, stopping at `k` (§4.2);
//! * **heap** — bounded-heap top-k over the *unrestructured* arena: one
//!   unordered enumeration pass through a size-`k` heap, `O(k·row)`
//!   auxiliary memory;
//! * **sort** — collect-sort-cut: enumerate everything flat, stable
//!   sort, truncate (`O(N·row)` memory in the flat result);
//!
//! plus an **auto** row reporting what the cost model picks. Every row
//! carries `ibytes=` — the plan's intermediate arena allocation *plus*
//! the ordering-side peak (heap payload / sort buffer) — so `perfgate`
//! holds the memory profile to its tight ratio, and the binary itself
//! asserts the acceptance property: the heap's allocation undercuts the
//! collect-sort-cut baseline on the swap-requiring query.
//!
//! `cargo run --release -p fdb-bench --bin ordering -- --scale 2 --json out.json`

use fdb_bench::{median_secs, Args, BenchSetup};
use fdb_core::engine::{OrderMode, OrderStrategy, RunOptions};
use fdb_core::{ExecStats, OrderRunStats};
use fdb_relational::planner::JoinAggTask;
use fdb_relational::{AggFunc, AggSpec, SortKey};
use fdb_workload::orders::OrdersConfig;

fn strategy_tag(s: OrderStrategy) -> &'static str {
    match s {
        OrderStrategy::Unordered => "unordered",
        OrderStrategy::StreamInTree => "stream",
        OrderStrategy::DirectAccess => "direct",
        OrderStrategy::HeapTopK { .. } => "heap",
        OrderStrategy::CollectSortCut => "sort",
    }
}

fn main() {
    let args = Args::parse(1, 1);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Ordering-strategy ablation at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        // Only the factorised side runs here.
        materialise_flat: false,
        threads: args.threads,
    }
    .build();
    let a = env.attrs;
    let revenue = env.fdb.catalog.intern("revenue_ordering");

    // The query set: one order the stored f-tree realises for free
    // (Q11's), one that needs a swap (Q12's — the acceptance shape:
    // keys not realised by the f-tree), and ORDER BY the aggregate (Q7).
    let queries: Vec<(&str, JoinAggTask)> = vec![
        (
            "Q11-top10",
            JoinAggTask {
                inputs: vec!["R1".into()],
                projection: Some(vec![a.package, a.item, a.date]),
                order_by: vec![
                    SortKey::asc(a.package),
                    SortKey::asc(a.item),
                    SortKey::asc(a.date),
                ],
                limit: Some(10),
                ..Default::default()
            },
        ),
        (
            "Q12-top10",
            JoinAggTask {
                inputs: vec!["R1".into()],
                projection: Some(vec![a.date, a.package, a.item]),
                order_by: vec![
                    SortKey::asc(a.date),
                    SortKey::asc(a.package),
                    SortKey::asc(a.item),
                ],
                limit: Some(10),
                ..Default::default()
            },
        ),
        (
            "Q7-top5",
            JoinAggTask {
                inputs: vec!["R1".into()],
                group_by: vec![a.customer],
                aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), revenue)],
                order_by: vec![SortKey::desc(revenue), SortKey::asc(a.customer)],
                limit: Some(5),
                ..Default::default()
            },
        ),
    ];

    let modes: [(&str, OrderMode); 4] = [
        ("FDB stream", OrderMode::ForceStream),
        ("FDB heap", OrderMode::ForceHeap),
        ("FDB sort", OrderMode::ForceSort),
        ("FDB auto", OrderMode::Auto),
    ];

    // (query, mode) -> combined intermediate bytes, for the acceptance
    // assertion below.
    let mut ibytes_of: Vec<(String, usize)> = Vec::new();
    for (name, task) in &queries {
        for (engine, mode) in modes {
            let opts = RunOptions::new().threads(env.threads).order(mode);
            let ((exec, ord, rows), t): ((ExecStats, OrderRunStats, usize), f64) =
                median_secs(args.repeats, || {
                    let result = env.fdb.run(task, opts).expect("fdb plans");
                    let exec = result.exec_stats();
                    let (rel, ord) = result.to_relation_counted().expect("fdb enumerates");
                    (exec, ord, rel.len())
                });
            let ibytes = exec.intermediate_bytes + ord.order_bytes;
            emit.row(
                "ordering",
                scale,
                name,
                engine,
                t,
                &format!(
                    "ibytes={ibytes} obytes={} rows={rows} seen={} strategy={}",
                    ord.order_bytes,
                    ord.rows_enumerated,
                    strategy_tag(ord.strategy),
                ),
            );
            ibytes_of.push((format!("{name}/{engine}"), ibytes));
        }
    }

    // Acceptance: on the swap-requiring query the heap's total
    // intermediate allocation must undercut collect-sort-cut — the
    // LIMIT-k path no longer pays O(flat result).
    let get = |k: &str| {
        ibytes_of
            .iter()
            .find(|(key, _)| key == k)
            .map(|&(_, v)| v)
            .expect("row recorded")
    };
    let heap = get("Q12-top10/FDB heap");
    let sort = get("Q12-top10/FDB sort");
    assert!(
        heap < sort,
        "heap top-k ibytes ({heap}) must be strictly below collect-sort-cut ({sort})"
    );
    println!("# acceptance: Q12-top10 heap ibytes {heap} < sort ibytes {sort}");
    emit.finish();
}
