#![allow(dead_code)] // helpers are shared across test binaries that each use a subset

//! Shared helpers for the integration tests: paired engine setup and
//! SQL-driven equivalence checking between the factorised engine and the
//! relational baselines.

use fdb::core::engine::{ConsolidateMode, FdbEngine, PlanStrategy, RunOptions};
use fdb::core::ExhaustiveConfig;
use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::{GroupStrategy, Relation};
use fdb::Catalog;

/// A factorised engine and two relational baselines over the same data.
pub struct EnginePair {
    pub fdb: FdbEngine,
    pub rdb_sort: RdbEngine,
    pub rdb_hash: RdbEngine,
}

impl EnginePair {
    pub fn new(catalog: Catalog) -> Self {
        EnginePair {
            fdb: FdbEngine::new(catalog.clone()),
            rdb_sort: RdbEngine::new(catalog.clone(), GroupStrategy::Sort),
            rdb_hash: RdbEngine::new(catalog, GroupStrategy::Hash),
        }
    }

    pub fn register(&mut self, name: &str, rel: Relation) {
        self.fdb.register_relation(name, rel.clone());
        self.rdb_sort.register(name, rel.clone());
        self.rdb_hash.register(name, rel);
    }

    /// Parses `sql`, runs it on all engines and plan modes, and asserts
    /// that every result is the same set of tuples. Returns the canonical
    /// result.
    pub fn assert_all_agree(&mut self, sql: &str) -> Relation {
        let schemas = self.fdb.schemas();
        let query = fdb::parse(sql, &mut self.fdb.catalog, &schemas)
            .unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        self.rdb_sort.catalog = self.fdb.catalog.clone();
        self.rdb_hash.catalog = self.fdb.catalog.clone();
        let task = query.to_task();

        let fdb_default = self
            .fdb
            .run_default(&task)
            .unwrap_or_else(|e| panic!("fdb greedy `{sql}`: {e}"))
            .to_relation()
            .unwrap_or_else(|e| panic!("fdb enumerate `{sql}`: {e}"))
            .canonical();
        let fdb_never = self
            .fdb
            .run(
                &task,
                RunOptions {
                    strategy: PlanStrategy::Greedy,
                    consolidate: ConsolidateMode::Never,
                },
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        let fdb_always = self
            .fdb
            .run(
                &task,
                RunOptions {
                    strategy: PlanStrategy::Greedy,
                    consolidate: ConsolidateMode::Always,
                },
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();
        let fdb_exhaustive = self
            .fdb
            .run(
                &task,
                RunOptions {
                    strategy: PlanStrategy::Exhaustive(ExhaustiveConfig { max_states: 4000 }),
                    consolidate: ConsolidateMode::Auto,
                },
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical();

        let rdb_naive = self
            .rdb_sort
            .run(&task, PlanMode::Naive)
            .unwrap_or_else(|e| panic!("rdb naive `{sql}`: {e}"))
            .canonical();
        let rdb_hash = self
            .rdb_hash
            .run(&task, PlanMode::Naive)
            .unwrap()
            .canonical();
        let rdb_eager = self
            .rdb_sort
            .run(&task, PlanMode::Eager)
            .unwrap_or_else(|e| panic!("rdb eager `{sql}`: {e}"))
            .canonical();

        assert_eq!(fdb_default, rdb_naive, "fdb vs rdb naive on `{sql}`");
        assert_eq!(fdb_never, rdb_naive, "fdb (no consolidation) on `{sql}`");
        assert_eq!(fdb_always, rdb_naive, "fdb (consolidated) on `{sql}`");
        assert_eq!(fdb_exhaustive, rdb_naive, "fdb exhaustive on `{sql}`");
        assert_eq!(rdb_hash, rdb_naive, "hash vs sort grouping on `{sql}`");
        assert_eq!(rdb_eager, rdb_naive, "eager vs naive on `{sql}`");
        rdb_naive
    }

    /// Runs `sql` on the factorised engine only, returning the (ordered)
    /// result for order-sensitive assertions.
    pub fn run_fdb(&mut self, sql: &str) -> Relation {
        let schemas = self.fdb.schemas();
        let query = fdb::parse(sql, &mut self.fdb.catalog, &schemas)
            .unwrap_or_else(|e| panic!("parse `{sql}`: {e}"));
        let task = query.to_task();
        self.fdb
            .run_default(&task)
            .unwrap_or_else(|e| panic!("fdb `{sql}`: {e}"))
            .to_relation()
            .unwrap_or_else(|e| panic!("fdb enumerate `{sql}`: {e}"))
    }
}

/// The pizzeria database registered in all engines.
pub fn pizzeria_engines() -> EnginePair {
    let mut catalog = Catalog::new();
    let db = fdb::workload::pizzeria::pizzeria(&mut catalog);
    let mut pair = EnginePair::new(catalog);
    pair.register("Orders", db.orders);
    pair.register("Pizzas", db.pizzas);
    pair.register("Items", db.items);
    pair
}
