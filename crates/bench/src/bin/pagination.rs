//! Deep-offset pagination ablation: `ORDER BY … LIMIT k OFFSET m`
//! through the four physical strategies (DESIGN.md "ordering
//! strategies"):
//!
//! * **direct** — restructure until the order is realised, then *seek*
//!   to the `m`-th tuple via the count annotations (DESIGN.md §2.2) and
//!   stream exactly the page: `O(k)` rows enumerated at any depth;
//! * **stream** — the same realising plan, but the skipped prefix is
//!   streamed and counted off: `O(m + k)` rows;
//! * **heap** — bounded `(m+k)`-heap over the unrestructured
//!   enumeration: every row passes the heap, `O((m+k)·row)` memory;
//! * **sort** — collect-sort-cut: enumerate everything, stable sort,
//!   cut rows `m..m+k`;
//!
//! plus an **auto** row reporting the cost model's pick. Offsets sweep
//! {10%, 50%, 90%} of each query's result. Every row carries `ibytes=`
//! (plan intermediates + ordering-side peak) for the perfgate memory
//! ratio and `seen=` (rows that reached the ordering stage), and the
//! binary asserts the acceptance properties itself: at every offset the
//! direct page is **byte-identical** to collect-sort-cut's, direct
//! enumerates exactly the page (`seen == rows`, O(k) however deep the
//! offset), and at OFFSET = 90% it enumerates ≥ 10× fewer rows than
//! collect-sort-cut.
//!
//! `cargo run --release -p fdb-bench --bin pagination -- --scale 1 --json out.json`

use fdb_bench::{median_secs, Args, BenchSetup};
use fdb_core::engine::{OrderMode, OrderStrategy, RunOptions};
use fdb_core::{ExecStats, OrderRunStats};
use fdb_relational::planner::JoinAggTask;
use fdb_relational::{Relation, SortKey};
use fdb_workload::orders::OrdersConfig;

fn strategy_tag(s: OrderStrategy) -> &'static str {
    match s {
        OrderStrategy::Unordered => "unordered",
        OrderStrategy::StreamInTree => "stream",
        OrderStrategy::DirectAccess => "direct",
        OrderStrategy::HeapTopK { .. } => "heap",
        OrderStrategy::CollectSortCut => "sort",
    }
}

const K: usize = 10;

fn main() {
    let args = Args::parse(1, 1);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Deep-offset pagination ablation at scale {scale}, LIMIT {K}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        // Only the factorised side runs here.
        materialise_flat: false,
        threads: args.threads,
    }
    .build();
    let a = env.attrs;

    // One order the stored f-tree realises for free (Q11's — the seek
    // runs on the stored arena) and one that needs a swap first (Q12's
    // — the seek runs on the restructured arena).
    let queries: Vec<(&str, JoinAggTask)> = vec![
        (
            "Q11-page",
            JoinAggTask {
                inputs: vec!["R1".into()],
                projection: Some(vec![a.package, a.item, a.date]),
                order_by: vec![
                    SortKey::asc(a.package),
                    SortKey::asc(a.item),
                    SortKey::asc(a.date),
                ],
                ..Default::default()
            },
        ),
        (
            "Q12-page",
            JoinAggTask {
                inputs: vec!["R1".into()],
                projection: Some(vec![a.date, a.package, a.item]),
                order_by: vec![
                    SortKey::asc(a.date),
                    SortKey::asc(a.package),
                    SortKey::asc(a.item),
                ],
                ..Default::default()
            },
        ),
    ];

    let modes: [(&str, OrderMode); 5] = [
        ("FDB direct", OrderMode::ForceDirect),
        ("FDB stream", OrderMode::ForceStream),
        ("FDB heap", OrderMode::ForceHeap),
        ("FDB sort", OrderMode::ForceSort),
        ("FDB auto", OrderMode::Auto),
    ];

    for (name, base) in &queries {
        // Untimed sizing pass: the offsets are fractions of the result.
        let n = env
            .fdb
            .run(base, RunOptions::new().threads(env.threads))
            .expect("fdb plans")
            .to_relation()
            .expect("fdb enumerates")
            .len();
        assert!(n >= 100, "{name}: result too small to page ({n} rows)");
        for pct in [10usize, 50, 90] {
            let offset = n * pct / 100;
            let mut task = base.clone();
            task.limit = Some(K);
            task.offset = offset;
            // (engine label) -> (page, stats) for the acceptance checks.
            let mut pages: Vec<(&str, Relation, OrderRunStats)> = Vec::new();
            for (engine, mode) in modes {
                let opts = RunOptions::new().threads(env.threads).order(mode);
                let ((exec, rel, ord), t): ((ExecStats, Relation, OrderRunStats), f64) =
                    median_secs(args.repeats, || {
                        let result = env.fdb.run(&task, opts).expect("fdb plans");
                        let exec = result.exec_stats();
                        let (rel, ord) = result.to_relation_counted().expect("fdb enumerates");
                        (exec, rel, ord)
                    });
                let ibytes = exec.intermediate_bytes + ord.order_bytes;
                emit.row(
                    "pagination",
                    scale,
                    &format!("{name}-p{pct}"),
                    engine,
                    t,
                    &format!(
                        "ibytes={ibytes} obytes={} offset={offset} rows={} seen={} strategy={}",
                        ord.order_bytes,
                        rel.len(),
                        ord.rows_enumerated,
                        strategy_tag(ord.strategy),
                    ),
                );
                pages.push((engine, rel, ord));
            }
            let get = |engine: &str| {
                pages
                    .iter()
                    .find(|(e, _, _)| *e == engine)
                    .expect("row recorded")
            };
            let (_, direct_rel, direct_ord) = get("FDB direct");
            let (_, sort_rel, sort_ord) = get("FDB sort");
            // Acceptance: the seek really ran, produced the identical
            // page, and enumerated exactly the page — O(k), not O(m+k).
            assert!(
                matches!(direct_ord.strategy, OrderStrategy::DirectAccess),
                "{name}-p{pct}: ForceDirect must execute the seek, got {:?}",
                direct_ord.strategy
            );
            assert_eq!(
                direct_rel, sort_rel,
                "{name}-p{pct}: direct page differs from collect-sort-cut"
            );
            assert_eq!(
                direct_ord.rows_enumerated,
                direct_rel.len(),
                "{name}-p{pct}: direct access enumerated beyond the page"
            );
            if pct >= 90 {
                assert!(
                    sort_ord.rows_enumerated >= 10 * direct_ord.rows_enumerated.max(1),
                    "{name}-p{pct}: direct must enumerate ≥10× fewer rows than \
                     collect-sort-cut ({} vs {})",
                    direct_ord.rows_enumerated,
                    sort_ord.rows_enumerated
                );
                println!(
                    "# acceptance: {name}-p{pct} direct seen {} vs sort seen {} \
                     ({}× fewer), pages byte-identical",
                    direct_ord.rows_enumerated,
                    sort_ord.rows_enumerated,
                    sort_ord.rows_enumerated / direct_ord.rows_enumerated.max(1),
                );
            }
        }
    }
    emit.finish();
}
