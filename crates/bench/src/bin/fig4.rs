//! Figure 4 — the effect of dataset scale on performance (Experiment 1).
//!
//! Runs the AGG queries Q2 and Q3 on the materialised view `R1` at scales
//! 1, 2, 4, … and prints one row per (scale, query, engine):
//! FDB (factorised view, flat output) vs the sort-based and hash-based
//! relational baselines (standing in for SQLite and PostgreSQL — see
//! DESIGN.md §3.4). The performance gap must widen with scale, tracking
//! the succinctness gap between the representations.
//!
//! `cargo run --release -p fdb-bench --bin fig4 -- --max-scale 8`

use fdb_bench::{median_secs, paper_queries, Args, BenchSetup};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(1, 4);
    let mut emit = args.emitter();
    println!("# Figure 4: wall-clock time vs database scale for Q2 and Q3");
    println!("# engines: FDB (factorised view) | RDB sort (SQLite-like) | RDB hash (PSQL-like)");
    for scale in args.sweep() {
        let mut env = BenchSetup {
            config: OrdersConfig {
                scale,
                customers: args.customers,
                seed: 0xFDB,
            },
            materialise_flat: true,
            threads: args.threads,
        }
        .build();
        println!(
            "# scale {scale}: flat view {} tuples, factorised view {} singletons",
            env.flat_tuples, env.view_singletons
        );
        let attrs = env.attrs;
        let queries = paper_queries(&mut env.fdb.catalog, &attrs);
        env.rdb_sort.catalog = env.fdb.catalog.clone();
        env.rdb_hash.catalog = env.fdb.catalog.clone();
        for q in queries.iter().filter(|q| q.name == "Q2" || q.name == "Q3") {
            let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
            emit.row("4", scale, q.name, "FDB", t, &format!("rows={n}"));
            let (n, t) = median_secs(args.repeats, || {
                env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive)
            });
            emit.row("4", scale, q.name, "RDB sort", t, &format!("rows={n}"));
            let (n, t) = median_secs(args.repeats, || {
                env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive)
            });
            emit.row("4", scale, q.name, "RDB hash", t, &format!("rows={n}"));
        }
    }
    emit.finish();
}
