//! String generation from the `.{lo,hi}` pattern shape.
//!
//! Upstream treats `&str` strategies as full regexes. This shim
//! recognises the one shape the workspace uses — `.{lo,hi}`, "between
//! `lo` and `hi` arbitrary characters" — and degrades to printable junk
//! of bounded length for anything else, which still serves the
//! robustness tests' purpose (arbitrary non-crashing input).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// A compiled string pattern.
#[derive(Clone, Debug)]
pub struct StringPattern {
    min_len: usize,
    max_len: usize,
}

/// Compiles `source` into a [`StringPattern`].
pub fn pattern(source: &str) -> StringPattern {
    if let Some(rest) = source.strip_prefix(".{") {
        if let Some(body) = rest.strip_suffix('}') {
            if let Some((lo, hi)) = body.split_once(',') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse(), hi.trim().parse()) {
                    if lo <= hi {
                        return StringPattern {
                            min_len: lo,
                            max_len: hi,
                        };
                    }
                }
            }
        }
    }
    StringPattern {
        min_len: 0,
        max_len: 16,
    }
}

/// Character classes mixed into generated strings: mostly printable
/// ASCII (so SQL-ish tokens appear), some whitespace, some multi-byte
/// unicode to stress lexers.
fn arbitrary_char(rng: &mut TestRng) -> char {
    match rng.gen_range(0u32..10) {
        0..=6 => char::from(rng.gen_range(0x20u8..0x7F)),
        7 => *[' ', '\t', '\n', '\r'].strategy_pick(rng),
        8 => *['λ', 'é', '⋈', '𝔽', '☃', '中'].strategy_pick(rng),
        _ => char::from(rng.gen_range(0u8..0x20)),
    }
}

trait Pick<T> {
    fn strategy_pick(&self, rng: &mut TestRng) -> &T;
}

impl<T> Pick<T> for [T] {
    fn strategy_pick(&self, rng: &mut TestRng) -> &T {
        &self[rng.gen_range(0..self.len())]
    }
}

impl Strategy for StringPattern {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let len = rng.gen_range(self.min_len..=self.max_len);
        (0..len).map(|_| arbitrary_char(rng)).collect()
    }
}
