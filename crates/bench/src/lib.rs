//! # fdb-bench — harness regenerating the paper's evaluation (§6)
//!
//! Everything the figure binaries and Criterion benches share:
//!
//! * [`queries`] — the thirteen queries of Figure 3 (AGG: Q1–Q5, AGG+ORD:
//!   Q6–Q9, ORD: Q10–Q13) as engine-neutral tasks;
//! * [`setup`] — paired engine construction over the scalable Orders/
//!   Packages/Items dataset: the factorised view `R1` for FDB, the
//!   materialised flat views `R1`/`R2`/`R3` for the relational baselines;
//! * [`harness`] — timing and the row format shared by every figure
//!   binary (`figure=<n> scale=<s> query=<q> engine=<e> seconds=<t>`).
//!
//! Engine naming follows the paper: `FDB` (flat output), `FDB f/o`
//! (factorised output), `RDB sort` (SQLite-like sort-based grouping),
//! `RDB hash` (PostgreSQL-like hash grouping), with `man` marking eager-
//! aggregation plans (Figure 6).

pub mod harness;
pub mod perf;
pub mod queries;
pub mod setup;

pub use harness::{median_secs, print_row, time_secs, Args, Emitter};
pub use perf::{compare, parse_results, GateConfig, PerfRow, Verdict};
pub use queries::{extended_agg_queries, paper_queries, PaperQuery, QueryClass};
pub use setup::{BenchEnv, BenchSetup};
