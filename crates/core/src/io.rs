//! Persistence for factorised views.
//!
//! The paper's main scenario is read-optimised: views are materialised *as
//! factorisations* and queried repeatedly (§1). This module serialises an
//! [`FRep`] — f-tree, dependency sets and data — to a compact token stream
//! and reads it back into (possibly) another catalog, re-interning
//! attribute names.
//!
//! Format (`fdbv1`, whitespace-separated tokens, strings length-prefixed
//! so no escaping is needed):
//!
//! ```text
//! fdbv1 <n_attrs> {s<len>:<name>}            attribute table (local ids)
//! t <n_nodes> {<parent|-1> (a <k> <ids…> | g <k> {op} <over…> <out…>)}
//! op := c | (s|m|x|d|p) <id> | (e|f) <id> <cmp> <const> | k <id> <k>
//! cmp := 0..=5                                (=, <>, <, <=, >, >=)
//! d <n_edges> {<k> <ids…>}                   dependency hyperedges
//! {union per root}                            data, recursive:
//!   u <n_entries> {<value> {child unions}}
//! value := i<int> | f<hex-bits> | s<len>:<bytes> | t<k> {value}
//! ```

use crate::error::{FdbError, Result};
use crate::frep::{Arena, FRep, UnionId, UnionRef};
use crate::ftree::{AggLabel, AggOp, FTree, NodeId, NodeLabel};
use fdb_relational::{AttrId, Catalog, CmpOp, Value};
use std::collections::BTreeMap;
use std::io::{BufRead, Write};

const MAGIC: &str = "fdbv1";

fn cmp_code(op: CmpOp) -> usize {
    match op {
        CmpOp::Eq => 0,
        CmpOp::Ne => 1,
        CmpOp::Lt => 2,
        CmpOp::Le => 3,
        CmpOp::Gt => 4,
        CmpOp::Ge => 5,
    }
}

fn cmp_from(code: usize) -> Result<CmpOp> {
    Ok(match code {
        0 => CmpOp::Eq,
        1 => CmpOp::Ne,
        2 => CmpOp::Lt,
        3 => CmpOp::Le,
        4 => CmpOp::Gt,
        5 => CmpOp::Ge,
        _ => return Err(malformed(format!("unknown comparison code {code}"))),
    })
}

fn io_err(e: std::io::Error) -> FdbError {
    FdbError::Unresolved(format!("io error: {e}"))
}

fn malformed(what: impl Into<String>) -> FdbError {
    FdbError::Unresolved(format!("malformed fdbv1 stream: {}", what.into()))
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

/// Serialises a factorised view. Attribute names come from `catalog`.
pub fn write_frep(rep: &FRep, catalog: &Catalog, mut w: impl Write) -> Result<()> {
    let tree = rep.ftree();
    // Local attribute table: every attribute the view mentions (exposed or
    // in `over` sets or dependency edges), in first-use order.
    let mut attrs: Vec<AttrId> = Vec::new();
    let note = |a: AttrId, attrs: &mut Vec<AttrId>| {
        if !attrs.contains(&a) {
            attrs.push(a);
        }
    };
    for n in tree.live_nodes() {
        match &tree.node(n).label {
            NodeLabel::Atomic(class) => {
                for &a in class {
                    note(a, &mut attrs);
                }
            }
            NodeLabel::Agg(l) => {
                for f in &l.funcs {
                    if let Some(a) = f.attr() {
                        note(a, &mut attrs);
                    }
                }
                for &a in &l.over {
                    note(a, &mut attrs);
                }
                for &a in &l.outputs {
                    note(a, &mut attrs);
                }
            }
        }
    }
    for e in tree.deps() {
        for &a in e {
            note(a, &mut attrs);
        }
    }
    let local: BTreeMap<AttrId, usize> = attrs.iter().enumerate().map(|(i, &a)| (a, i)).collect();
    write!(w, "{MAGIC} {}", attrs.len()).map_err(io_err)?;
    for &a in &attrs {
        let name = catalog.name(a);
        write!(w, " s{}:{}", name.len(), name).map_err(io_err)?;
    }

    // Tree: pre-order, parents before children by construction.
    let nodes = tree.live_nodes();
    let node_idx: BTreeMap<NodeId, usize> =
        nodes.iter().enumerate().map(|(i, &n)| (n, i)).collect();
    write!(w, " t {}", nodes.len()).map_err(io_err)?;
    for &n in &nodes {
        let parent = match tree.node(n).parent {
            None => -1i64,
            Some(p) => node_idx[&p] as i64,
        };
        write!(w, " {parent}").map_err(io_err)?;
        match &tree.node(n).label {
            NodeLabel::Atomic(class) => {
                write!(w, " a {}", class.len()).map_err(io_err)?;
                for a in class {
                    write!(w, " {}", local[a]).map_err(io_err)?;
                }
            }
            NodeLabel::Agg(l) => {
                write!(w, " g {}", l.funcs.len()).map_err(io_err)?;
                for f in &l.funcs {
                    match f {
                        AggOp::Count => write!(w, " c").map_err(io_err)?,
                        AggOp::Sum(a) => write!(w, " s {}", local[a]).map_err(io_err)?,
                        AggOp::Min(a) => write!(w, " m {}", local[a]).map_err(io_err)?,
                        AggOp::Max(a) => write!(w, " x {}", local[a]).map_err(io_err)?,
                        AggOp::CountDistinct(a) => write!(w, " d {}", local[a]).map_err(io_err)?,
                        AggOp::Product(a) => write!(w, " p {}", local[a]).map_err(io_err)?,
                        AggOp::Exists(a, op, c) => {
                            write!(w, " e {} {} {}", local[a], cmp_code(*op), c).map_err(io_err)?
                        }
                        AggOp::Forall(a, op, c) => {
                            write!(w, " f {} {} {}", local[a], cmp_code(*op), c).map_err(io_err)?
                        }
                        AggOp::TopK(a, k) => write!(w, " k {} {}", local[a], k).map_err(io_err)?,
                    }
                }
                write!(w, " {}", l.over.len()).map_err(io_err)?;
                for a in &l.over {
                    write!(w, " {}", local[a]).map_err(io_err)?;
                }
                write!(w, " {}", l.outputs.len()).map_err(io_err)?;
                for a in &l.outputs {
                    write!(w, " {}", local[a]).map_err(io_err)?;
                }
            }
        }
    }
    write!(w, " d {}", tree.deps().len()).map_err(io_err)?;
    for e in tree.deps() {
        write!(w, " {}", e.len()).map_err(io_err)?;
        for a in e {
            write!(w, " {}", local[a]).map_err(io_err)?;
        }
    }
    for u in rep.root_unions() {
        write_union(u, &mut w)?;
    }
    writeln!(w).map_err(io_err)?;
    Ok(())
}

fn write_union(u: UnionRef<'_>, w: &mut impl Write) -> Result<()> {
    write!(w, " u {}", u.len()).map_err(io_err)?;
    for e in u.entries() {
        write_value(e.value(), w)?;
        for c in e.children() {
            write_union(c, w)?;
        }
    }
    Ok(())
}

fn write_value(v: &Value, w: &mut impl Write) -> Result<()> {
    match v {
        Value::Int(i) => write!(w, " i{i}").map_err(io_err),
        Value::Float(f) => write!(w, " f{:016x}", f.to_bits()).map_err(io_err),
        Value::Str(s) => write!(w, " s{}:{}", s.len(), s).map_err(io_err),
        Value::Tup(vs) => {
            write!(w, " t{}", vs.len()).map_err(io_err)?;
            for v in vs.iter() {
                write_value(v, w)?;
            }
            Ok(())
        }
        Value::Null => write!(w, " n").map_err(io_err),
    }
}

// ---------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------

/// Byte-stream tokenizer: whitespace-separated tokens with embedded
/// length-prefixed strings (which may contain any bytes, including
/// whitespace).
struct Tokens {
    buf: Vec<u8>,
    pos: usize,
}

impl Tokens {
    fn new(mut r: impl BufRead) -> Result<Self> {
        let mut buf = Vec::new();
        r.read_to_end(&mut buf).map_err(io_err)?;
        Ok(Tokens { buf, pos: 0 })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.buf.len() && self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    /// Next bare token (no embedded string payloads).
    fn word(&mut self) -> Result<&str> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.buf.len() && !self.buf[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(malformed("unexpected end of stream"));
        }
        std::str::from_utf8(&self.buf[start..self.pos]).map_err(|_| malformed("non-utf8 token"))
    }

    fn usize(&mut self) -> Result<usize> {
        self.word()?
            .parse()
            .map_err(|_| malformed("expected an unsigned integer"))
    }

    fn i64(&mut self) -> Result<i64> {
        self.word()?
            .parse()
            .map_err(|_| malformed("expected an integer"))
    }

    /// A length-prefixed string token `s<len>:<bytes>`.
    fn string(&mut self) -> Result<String> {
        self.skip_ws();
        if self.buf.get(self.pos) != Some(&b's') {
            return Err(malformed("expected a string token"));
        }
        self.pos += 1;
        let len_start = self.pos;
        while self.buf.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let len: usize = std::str::from_utf8(&self.buf[len_start..self.pos])
            .unwrap()
            .parse()
            .map_err(|_| malformed("bad string length"))?;
        if self.buf.get(self.pos) != Some(&b':') {
            return Err(malformed("expected `:` after string length"));
        }
        self.pos += 1;
        let end = self.pos + len;
        if end > self.buf.len() {
            return Err(malformed("string payload truncated"));
        }
        let s = std::str::from_utf8(&self.buf[self.pos..end])
            .map_err(|_| malformed("non-utf8 string payload"))?
            .to_string();
        self.pos = end;
        Ok(s)
    }

    /// A value token.
    fn value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.buf.get(self.pos) {
            Some(b'i') => {
                self.pos += 1;
                Ok(Value::Int(self.i64()?))
            }
            Some(b'f') => {
                self.pos += 1;
                let hex = self.word()?;
                let bits = u64::from_str_radix(hex, 16).map_err(|_| malformed("bad float bits"))?;
                Ok(Value::Float(f64::from_bits(bits)))
            }
            Some(b's') => Ok(Value::str(self.string()?)),
            Some(b't') => {
                self.pos += 1;
                let k = self.usize()?;
                let mut vs = Vec::with_capacity(k);
                for _ in 0..k {
                    vs.push(self.value()?);
                }
                Ok(Value::tup(vs))
            }
            Some(b'n') => {
                self.pos += 1;
                Ok(Value::Null)
            }
            _ => Err(malformed("expected a value token")),
        }
    }
}

/// Reads a factorised view, interning attribute names into `catalog`.
pub fn read_frep(r: impl BufRead, catalog: &mut Catalog) -> Result<FRep> {
    let mut t = Tokens::new(r)?;
    if t.word()? != MAGIC {
        return Err(malformed("bad magic (expected fdbv1)"));
    }
    let n_attrs = t.usize()?;
    let mut attrs = Vec::with_capacity(n_attrs);
    for _ in 0..n_attrs {
        let name = t.string()?;
        attrs.push(catalog.intern(&name));
    }
    let attr = |i: usize| -> Result<AttrId> {
        attrs
            .get(i)
            .copied()
            .ok_or_else(|| malformed("attribute index out of range"))
    };

    if t.word()? != "t" {
        return Err(malformed("expected tree section"));
    }
    let n_nodes = t.usize()?;
    let mut tree = FTree::new();
    let mut ids: Vec<NodeId> = Vec::with_capacity(n_nodes);
    for _ in 0..n_nodes {
        let parent = t.i64()?;
        let parent = if parent < 0 {
            None
        } else {
            Some(
                ids.get(parent as usize)
                    .copied()
                    .ok_or_else(|| malformed("parent index out of range"))?,
            )
        };
        let label = match t.word()? {
            "a" => {
                let k = t.usize()?;
                let mut class = Vec::with_capacity(k);
                for _ in 0..k {
                    class.push(attr(t.usize()?)?);
                }
                NodeLabel::Atomic(class)
            }
            "g" => {
                let k = t.usize()?;
                let mut funcs = Vec::with_capacity(k);
                for _ in 0..k {
                    funcs.push(match t.word()? {
                        "c" => AggOp::Count,
                        "s" => AggOp::Sum(attr(t.usize()?)?),
                        "m" => AggOp::Min(attr(t.usize()?)?),
                        "x" => AggOp::Max(attr(t.usize()?)?),
                        "d" => AggOp::CountDistinct(attr(t.usize()?)?),
                        "p" => AggOp::Product(attr(t.usize()?)?),
                        "e" => {
                            let a = attr(t.usize()?)?;
                            let op = cmp_from(t.usize()?)?;
                            AggOp::Exists(a, op, t.i64()?)
                        }
                        "f" => {
                            let a = attr(t.usize()?)?;
                            let op = cmp_from(t.usize()?)?;
                            AggOp::Forall(a, op, t.i64()?)
                        }
                        "k" => {
                            let a = attr(t.usize()?)?;
                            AggOp::TopK(a, t.usize()?)
                        }
                        other => return Err(malformed(format!("unknown agg op `{other}`"))),
                    });
                }
                let n_over = t.usize()?;
                let mut over = std::collections::BTreeSet::new();
                for _ in 0..n_over {
                    over.insert(attr(t.usize()?)?);
                }
                let n_out = t.usize()?;
                let mut outputs = Vec::with_capacity(n_out);
                for _ in 0..n_out {
                    outputs.push(attr(t.usize()?)?);
                }
                NodeLabel::Agg(AggLabel {
                    funcs,
                    over,
                    outputs,
                })
            }
            other => return Err(malformed(format!("unknown label kind `{other}`"))),
        };
        ids.push(tree.add_node(label, parent));
    }
    if t.word()? != "d" {
        return Err(malformed("expected dependency section"));
    }
    let n_deps = t.usize()?;
    for _ in 0..n_deps {
        let k = t.usize()?;
        let mut edge = Vec::with_capacity(k);
        for _ in 0..k {
            edge.push(attr(t.usize()?)?);
        }
        tree.add_dep(edge);
    }

    let roots: Vec<NodeId> = tree.roots().to_vec();
    let mut arena = Arena::default();
    let mut root_unions = Vec::with_capacity(roots.len());
    for &root in &roots {
        root_unions.push(read_union(&mut t, &tree, root, &mut arena)?);
    }
    let rep = FRep::from_arena(tree, arena, root_unions);
    rep.check_invariants()?;
    Ok(rep)
}

/// Reads one union straight into the arena (no intermediate nested tree).
fn read_union(t: &mut Tokens, tree: &FTree, node: NodeId, arena: &mut Arena) -> Result<UnionId> {
    if t.word()? != "u" {
        return Err(malformed("expected a union"));
    }
    let n = t.usize()?;
    let children: Vec<NodeId> = tree.node(node).children.clone();
    let mut specs = Vec::with_capacity(n);
    let mut kid_ids = Vec::with_capacity(children.len());
    for _ in 0..n {
        let value = t.value()?;
        kid_ids.clear();
        for &c in &children {
            kid_ids.push(read_union(t, tree, c, arena)?);
        }
        specs.push(arena.entry(node, value, &kid_ids));
    }
    Ok(arena.push_union(node, &specs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::{Relation, Schema};

    fn sample_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item with spaces");
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, item]),
            [
                ("Hawaii", "base"),
                ("Hawaii", "ham and cheese"),
                ("Margherita", "base"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[pizza, item])).unwrap();
        (c, rep)
    }

    #[test]
    fn round_trip_same_catalog() {
        let (c, rep) = sample_rep();
        let mut buf = Vec::new();
        write_frep(&rep, &c, &mut buf).unwrap();
        let mut c2 = c.clone();
        let back = read_frep(buf.as_slice(), &mut c2).unwrap();
        back.check_invariants().unwrap();
        assert_eq!(back.tuple_count(), rep.tuple_count());
        assert_eq!(back.singleton_count(), rep.singleton_count());
        assert_eq!(back.flatten().canonical(), rep.flatten().canonical());
    }

    #[test]
    fn round_trip_fresh_catalog_reinterns() {
        let (c, rep) = sample_rep();
        let mut buf = Vec::new();
        write_frep(&rep, &c, &mut buf).unwrap();
        // A fresh catalog with different pre-existing ids.
        let mut c2 = Catalog::new();
        c2.intern("unrelated");
        let back = read_frep(buf.as_slice(), &mut c2).unwrap();
        assert_eq!(back.tuple_count(), 3);
        // Attribute names survived.
        assert!(c2.lookup("item with spaces").is_some());
    }

    #[test]
    fn round_trip_aggregate_view() {
        let (mut c, rep) = sample_rep();
        let item = c.lookup("item with spaces").unwrap();
        let n_item = rep.ftree().node_of_attr(item).unwrap();
        let out = c.intern("n");
        let target = crate::ops::AggTarget::subtree(rep.ftree(), n_item);
        let agged = crate::ops::aggregate(rep, &target, vec![AggOp::Count], vec![out]).unwrap();
        let mut buf = Vec::new();
        write_frep(&agged, &c, &mut buf).unwrap();
        let mut c2 = Catalog::new();
        let back = read_frep(buf.as_slice(), &mut c2).unwrap();
        assert_eq!(
            back.flatten().canonical().len(),
            agged.flatten().canonical().len()
        );
        // Dependency edges survived (count output depends on pizza).
        assert_eq!(back.ftree().deps().len(), agged.ftree().deps().len());
    }

    #[test]
    fn round_trip_composite_and_float_values() {
        use crate::frep::{Entry, Union};
        use crate::ftree::AggLabel;
        let mut c = Catalog::new();
        let x = c.intern("x");
        let s = c.intern("s");
        let n = c.intern("n");
        let mut t = FTree::new();
        let nx = t.add_node(NodeLabel::Atomic(vec![x]), None);
        let ng = t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Sum(x), AggOp::Count],
                over: [x].into_iter().collect(),
                outputs: vec![s, n],
            }),
            Some(nx),
        );
        let rep = FRep::new(
            t,
            vec![Union {
                node: nx,
                entries: vec![Entry {
                    value: Value::Float(0.1 + 0.2), // non-representable sum
                    children: vec![Union {
                        node: ng,
                        entries: vec![Entry {
                            value: Value::tup(vec![Value::Float(1.5), Value::Int(3)]),
                            children: vec![],
                        }],
                    }],
                }],
            }],
        )
        .unwrap();
        let mut buf = Vec::new();
        write_frep(&rep, &c, &mut buf).unwrap();
        let mut c2 = Catalog::new();
        let back = read_frep(buf.as_slice(), &mut c2).unwrap();
        // Bit-exact float round trip.
        assert_eq!(*back.root(0).entry(0).value(), Value::Float(0.1 + 0.2));
    }

    #[test]
    fn round_trip_null_values() {
        use fdb_relational::{Relation, Schema};
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y]),
            [
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::str("b")],
                vec![Value::Null, Value::Int(9)],
            ],
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[x, y])).unwrap();
        let mut buf = Vec::new();
        write_frep(&rep, &c, &mut buf).unwrap();
        let mut c2 = Catalog::new();
        let back = read_frep(buf.as_slice(), &mut c2).unwrap();
        assert!(back.same_data(&rep));
        // NULL sorted last at the root (greatest in the total order).
        let root = back.root(0);
        assert!(root.entry(root.len() - 1).value().is_null());
    }

    #[test]
    fn truncated_stream_is_error() {
        let (c, rep) = sample_rep();
        let mut buf = Vec::new();
        write_frep(&rep, &c, &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        let mut c2 = Catalog::new();
        assert!(read_frep(buf.as_slice(), &mut c2).is_err());
    }

    #[test]
    fn bad_magic_is_error() {
        let mut c = Catalog::new();
        assert!(read_frep("nope 0".as_bytes(), &mut c).is_err());
    }
}
