//! Factorisation trees (f-trees) — Definition 2 of the paper.
//!
//! An f-tree is a rooted forest whose nodes are labelled by non-empty sets
//! of attributes partitioning the schema. Nodes are either **atomic**
//! (equivalence classes of attributes, grown by selections `A = B`) or
//! **aggregate attributes** `F(X)` produced by the aggregation operator
//! (§3.1): they carry their aggregation function(s) and the original
//! attribute set `X`, which is what gives them their special semantics
//! during later aggregation.
//!
//! The tree also tracks the **dependency sets** (relation hyperedges,
//! extended by projections and aggregates) that drive the path constraint
//! (Proposition 1) and the child partition of the swap operator (§4.2).
//!
//! Nodes live in an arena and keep stable ids across restructuring, so
//! f-plan operators can reference nodes before execution.

use crate::error::{FdbError, Result};
use fdb_relational::{AttrId, Catalog, CmpOp};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Stable identifier of an f-tree node within one [`FTree`] arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

/// One primitive aggregation function (avg is desugared into sum + count
/// before reaching the f-tree, §3.2.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AggOp {
    Count,
    Sum(AttrId),
    Min(AttrId),
    Max(AttrId),
    /// Number of distinct non-NULL values of the attribute.
    CountDistinct(AttrId),
    /// Product of the attribute's non-NULL values (bag semantics); over a
    /// product of factors it decomposes as `product^count`.
    Product(AttrId),
    /// `1` if any non-NULL value satisfies `value θ c`, else `0`.
    Exists(AttrId, CmpOp, i64),
    /// `1` if every non-NULL value satisfies `value θ c` (vacuously `1`).
    Forall(AttrId, CmpOp, i64),
    /// The `k` largest non-NULL values (bag semantics), descending.
    TopK(AttrId, usize),
}

impl AggOp {
    /// The attribute this function aggregates, if any.
    pub fn attr(&self) -> Option<AttrId> {
        match self {
            AggOp::Count => None,
            AggOp::Sum(a)
            | AggOp::Min(a)
            | AggOp::Max(a)
            | AggOp::CountDistinct(a)
            | AggOp::Product(a)
            | AggOp::Exists(a, _, _)
            | AggOp::Forall(a, _, _)
            | AggOp::TopK(a, _) => Some(*a),
        }
    }

    /// True for aggregates whose result cannot be composed from
    /// per-subtree partial aggregates: their attribute must stay raw
    /// (unaggregated) until the final group-level evaluation, so the
    /// planner never folds it into a partial `γ`.
    pub fn needs_raw_input(&self) -> bool {
        matches!(self, AggOp::CountDistinct(_) | AggOp::TopK(..))
    }

    /// Human-readable name, e.g. `sum(price)`.
    pub fn display(&self, catalog: &Catalog) -> String {
        match self {
            AggOp::Count => "count".to_string(),
            AggOp::Sum(a) => format!("sum({})", catalog.name(*a)),
            AggOp::Min(a) => format!("min({})", catalog.name(*a)),
            AggOp::Max(a) => format!("max({})", catalog.name(*a)),
            AggOp::CountDistinct(a) => format!("count(distinct {})", catalog.name(*a)),
            AggOp::Product(a) => format!("product({})", catalog.name(*a)),
            AggOp::Exists(a, op, c) => {
                format!("exists({} {} {c})", catalog.name(*a), op.symbol())
            }
            AggOp::Forall(a, op, c) => {
                format!("forall({} {} {c})", catalog.name(*a), op.symbol())
            }
            AggOp::TopK(a, k) => format!("top_k({}, {k})", catalog.name(*a)),
        }
    }
}

/// Label of an aggregate attribute node `(F1,…,Fk)(X)`.
///
/// `funcs` and `outputs` are parallel: `outputs[i]` names the column holding
/// the value of `funcs[i]`. Singletons of a node with `k > 1` functions hold
/// composite `Value::Tup` values (§3.2.4).
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AggLabel {
    pub funcs: Vec<AggOp>,
    /// The original attributes `X` the functions were applied to.
    pub over: BTreeSet<AttrId>,
    pub outputs: Vec<AttrId>,
}

impl AggLabel {
    /// Index of the `count` component, if present.
    pub fn count_component(&self) -> Option<usize> {
        self.funcs.iter().position(|f| matches!(f, AggOp::Count))
    }

    /// Index of the component computing `func`, if present.
    pub fn component_of(&self, func: &AggOp) -> Option<usize> {
        self.funcs.iter().position(|f| f == func)
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.funcs.len()
    }
}

/// Node label: an equivalence class of atomic attributes, or an aggregate
/// attribute.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeLabel {
    /// Equivalence class; `attrs[0]` is the representative. All attributes
    /// of the class carry the same value in every tuple.
    Atomic(Vec<AttrId>),
    /// Aggregate attribute `F(X)`.
    Agg(AggLabel),
}

impl NodeLabel {
    /// The attributes this node *exposes* in the output schema: the class
    /// members for atomic nodes, the output columns for aggregate nodes.
    pub fn exposed_attrs(&self) -> Vec<AttrId> {
        match self {
            NodeLabel::Atomic(attrs) => attrs.clone(),
            NodeLabel::Agg(l) => l.outputs.clone(),
        }
    }

    /// True if this node exposes `attr`.
    pub fn exposes(&self, attr: AttrId) -> bool {
        match self {
            NodeLabel::Atomic(attrs) => attrs.contains(&attr),
            NodeLabel::Agg(l) => l.outputs.contains(&attr),
        }
    }

    /// True if an aggregation over `attr` can read this node: the atomic
    /// class contains it, or an aggregate component computes over it.
    pub fn provides_agg_input(&self, op: &AggOp) -> bool {
        match (self, op) {
            (_, AggOp::Count) => true,
            (NodeLabel::Atomic(attrs), _) => attrs.contains(&op.attr().unwrap()),
            (NodeLabel::Agg(l), op) => l.component_of(op).is_some(),
        }
    }
}

/// One arena node.
#[derive(Clone, Debug)]
pub struct FNode {
    pub label: NodeLabel,
    pub parent: Option<NodeId>,
    pub children: Vec<NodeId>,
    /// Dead nodes have been merged away or removed; ids are never recycled.
    pub dead: bool,
}

/// A factorisation tree with dependency tracking.
#[derive(Clone, Debug)]
pub struct FTree {
    nodes: Vec<FNode>,
    roots: Vec<NodeId>,
    /// Dependency hyperedges over exposed attributes: initially one per
    /// base relation, extended by projections and aggregates (§3).
    deps: Vec<BTreeSet<AttrId>>,
}

impl Default for FTree {
    fn default() -> Self {
        Self::new()
    }
}

impl FTree {
    /// Creates an empty forest.
    pub fn new() -> Self {
        FTree {
            nodes: Vec::new(),
            roots: Vec::new(),
            deps: Vec::new(),
        }
    }

    /// Builds a linear f-tree (a path) over `attrs` in the given order,
    /// each attribute its own node, with a single dependency edge over all
    /// of them (a base relation makes all its attributes dependent, §2.1).
    pub fn path(attrs: &[AttrId]) -> Self {
        let mut t = FTree::new();
        let mut parent = None;
        for &a in attrs {
            let n = t.add_node(NodeLabel::Atomic(vec![a]), parent);
            parent = Some(n);
        }
        if attrs.len() > 1 {
            t.deps.push(attrs.iter().copied().collect());
        }
        t
    }

    /// Adds a node under `parent` (or as a root) and returns its id.
    pub fn add_node(&mut self, label: NodeLabel, parent: Option<NodeId>) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(FNode {
            label,
            parent,
            children: Vec::new(),
            dead: false,
        });
        match parent {
            Some(p) => self.nodes[p.idx()].children.push(id),
            None => self.roots.push(id),
        }
        id
    }

    /// Registers a dependency hyperedge (e.g. a base relation's schema).
    pub fn add_dep(&mut self, edge: impl IntoIterator<Item = AttrId>) {
        let e: BTreeSet<AttrId> = edge.into_iter().collect();
        if e.len() > 1 {
            self.deps.push(e);
        }
    }

    /// The dependency hyperedges.
    pub fn deps(&self) -> &[BTreeSet<AttrId>] {
        &self.deps
    }

    /// Root nodes, in order.
    pub fn roots(&self) -> &[NodeId] {
        &self.roots
    }

    /// Borrow of a node.
    ///
    /// # Panics
    /// Panics on a dead or foreign id (callers hold only live ids).
    pub fn node(&self, id: NodeId) -> &FNode {
        let n = &self.nodes[id.idx()];
        debug_assert!(!n.dead, "access to dead node {id:?}");
        n
    }

    fn node_mut(&mut self, id: NodeId) -> &mut FNode {
        &mut self.nodes[id.idx()]
    }

    /// Iterates over live node ids (pre-order over the forest).
    pub fn live_nodes(&self) -> Vec<NodeId> {
        let mut out = Vec::new();
        for &r in &self.roots {
            self.collect_subtree(r, &mut out);
        }
        out
    }

    fn collect_subtree(&self, n: NodeId, out: &mut Vec<NodeId>) {
        out.push(n);
        for &c in &self.node(n).children {
            self.collect_subtree(c, out);
        }
    }

    /// Nodes of the subtree rooted at `n` (pre-order, includes `n`).
    pub fn subtree_nodes(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.collect_subtree(n, &mut out);
        out
    }

    /// All attributes exposed in the subtree rooted at `n`.
    pub fn subtree_attrs(&self, n: NodeId) -> BTreeSet<AttrId> {
        self.subtree_nodes(n)
            .iter()
            .flat_map(|&m| self.node(m).label.exposed_attrs())
            .collect()
    }

    /// All attributes exposed by the whole forest, in pre-order.
    pub fn all_attrs(&self) -> Vec<AttrId> {
        self.live_nodes()
            .iter()
            .flat_map(|&n| self.node(n).label.exposed_attrs())
            .collect()
    }

    /// The node exposing `attr`, if any.
    pub fn node_of_attr(&self, attr: AttrId) -> Option<NodeId> {
        self.live_nodes()
            .into_iter()
            .find(|&n| self.node(n).label.exposes(attr))
    }

    /// True if `anc` is a strict ancestor of `desc`.
    pub fn is_ancestor(&self, anc: NodeId, desc: NodeId) -> bool {
        let mut cur = self.node(desc).parent;
        while let Some(p) = cur {
            if p == anc {
                return true;
            }
            cur = self.node(p).parent;
        }
        false
    }

    /// Depth of `n` (roots have depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = self.node(n).parent;
        while let Some(p) = cur {
            d += 1;
            cur = self.node(p).parent;
        }
        d
    }

    /// Path from the root down to `n`, inclusive.
    pub fn root_path(&self, n: NodeId) -> Vec<NodeId> {
        let mut path = vec![n];
        let mut cur = self.node(n).parent;
        while let Some(p) = cur {
            path.push(p);
            cur = self.node(p).parent;
        }
        path.reverse();
        path
    }

    /// Position of `child` within its parent's child list (or among roots).
    pub fn child_position(&self, child: NodeId) -> usize {
        match self.node(child).parent {
            Some(p) => self
                .node(p)
                .children
                .iter()
                .position(|&c| c == child)
                .expect("child registered under parent"),
            None => self
                .roots
                .iter()
                .position(|&r| r == child)
                .expect("root registered"),
        }
    }

    /// True if the subtree rooted at `n` is dependent on attribute set
    /// `other`: some hyperedge links an attribute exposed in the subtree to
    /// an attribute of `other`.
    pub fn subtree_depends_on(&self, n: NodeId, other: &BTreeSet<AttrId>) -> bool {
        let mine = self.subtree_attrs(n);
        self.deps
            .iter()
            .any(|e| e.iter().any(|a| mine.contains(a)) && e.iter().any(|a| other.contains(a)))
    }

    /// Checks the path constraint (Prop. 1): every dependency edge's
    /// attributes must lie on a single root-to-leaf path.
    pub fn check_path_constraint(&self) -> Result<()> {
        for edge in &self.deps {
            let mut nodes: Vec<NodeId> = Vec::new();
            for &a in edge {
                if let Some(n) = self.node_of_attr(a) {
                    if !nodes.contains(&n) {
                        nodes.push(n);
                    }
                }
            }
            nodes.sort_by_key(|&n| self.depth(n));
            for w in nodes.windows(2) {
                if !(w[0] == w[1] || self.is_ancestor(w[0], w[1])) {
                    return Err(FdbError::PathConstraint(format!(
                        "dependent nodes {:?} and {:?} are on diverging branches",
                        w[0], w[1]
                    )));
                }
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Structural operators (tree level). The representation-level versions
    // in `crate::ops` call these and mirror the change on the data.
    // ------------------------------------------------------------------

    /// Swap `χ_{A,B}`: `b` must be a child of `a`; `b` becomes the parent
    /// of `a`. Children of `b` that do not depend on `a` (`T_B`) move up
    /// with `b`; the rest (`T_AB`) stay under `a` (§4.2).
    ///
    /// Returns which children of `b` moved up and which stayed, in their
    /// original order — the representation transform needs this partition.
    pub fn swap(&mut self, a: NodeId, b: NodeId) -> Result<SwapOutcome> {
        if self.node(b).parent != Some(a) {
            return Err(FdbError::InvalidOperator(format!(
                "swap requires {b:?} to be a child of {a:?}"
            )));
        }
        let a_attrs: BTreeSet<AttrId> = self.node(a).label.exposed_attrs().into_iter().collect();
        let b_children = self.node(b).children.clone();
        let (moved_up, stayed): (Vec<NodeId>, Vec<NodeId>) = b_children
            .iter()
            .partition(|&&c| !self.subtree_depends_on(c, &a_attrs));

        // Detach b from a.
        let b_pos_in_a = self.child_position(b);
        self.node_mut(a).children.remove(b_pos_in_a);
        // b takes a's place under a's parent (or among the roots).
        let a_parent = self.node(a).parent;
        let a_pos = self.child_position(a);
        match a_parent {
            Some(p) => self.node_mut(p).children[a_pos] = b,
            None => self.roots[a_pos] = b,
        }
        self.node_mut(b).parent = a_parent;
        // a becomes b's last child; T_AB re-hang under a.
        self.node_mut(b).children = moved_up.clone();
        self.node_mut(b).children.push(a);
        self.node_mut(a).parent = Some(b);
        for &c in &stayed {
            self.node_mut(c).parent = Some(a);
        }
        self.node_mut(a).children.extend(stayed.iter().copied());
        Ok(SwapOutcome {
            moved_up,
            stayed,
            b_pos_in_a,
        })
    }

    /// Merge: `a` and `b` must be siblings (same parent, or both roots) and
    /// atomic. `b`'s class joins `a`'s class, `b`'s children re-hang under
    /// `a` after `a`'s own. Implements a selection `A = B` on sibling
    /// nodes.
    pub fn merge(&mut self, a: NodeId, b: NodeId) -> Result<MergeOutcome> {
        if a == b || self.node(a).parent != self.node(b).parent {
            return Err(FdbError::InvalidOperator(format!(
                "merge requires distinct siblings, got {a:?}, {b:?}"
            )));
        }
        let (a_attrs, b_attrs) = match (&self.node(a).label, &self.node(b).label) {
            (NodeLabel::Atomic(x), NodeLabel::Atomic(y)) => (x.clone(), y.clone()),
            _ => {
                return Err(FdbError::InvalidOperator(
                    "merge applies to atomic nodes only".into(),
                ))
            }
        };
        let a_pos = self.child_position(a);
        let b_pos = self.child_position(b);
        let b_children = std::mem::take(&mut self.node_mut(b).children);
        for &c in &b_children {
            self.node_mut(c).parent = Some(a);
        }
        self.node_mut(a).children.extend(b_children);
        let mut merged = a_attrs;
        merged.extend(b_attrs);
        self.node_mut(a).label = NodeLabel::Atomic(merged);
        self.detach(b);
        self.node_mut(b).dead = true;
        Ok(MergeOutcome { a_pos, b_pos })
    }

    /// Absorb: `desc` must be a strict descendant of `anc`, both atomic.
    /// `desc`'s class joins `anc`'s class; `desc`'s children are spliced
    /// into `desc`'s parent at `desc`'s position. Implements a selection
    /// `A = B` along a path.
    pub fn absorb(&mut self, anc: NodeId, desc: NodeId) -> Result<AbsorbOutcome> {
        if !self.is_ancestor(anc, desc) {
            return Err(FdbError::InvalidOperator(format!(
                "absorb requires {desc:?} to be a descendant of {anc:?}"
            )));
        }
        let (anc_attrs, desc_attrs) = match (&self.node(anc).label, &self.node(desc).label) {
            (NodeLabel::Atomic(x), NodeLabel::Atomic(y)) => (x.clone(), y.clone()),
            _ => {
                return Err(FdbError::InvalidOperator(
                    "absorb applies to atomic nodes only".into(),
                ))
            }
        };
        let parent = self.node(desc).parent.expect("descendant has a parent");
        let pos = self.child_position(desc);
        let desc_children = std::mem::take(&mut self.node_mut(desc).children);
        for &c in &desc_children {
            self.node_mut(c).parent = Some(parent);
        }
        let pc = &mut self.node_mut(parent).children;
        pc.splice(pos..=pos, desc_children.iter().copied());
        let mut merged = anc_attrs;
        merged.extend(desc_attrs);
        self.node_mut(anc).label = NodeLabel::Atomic(merged);
        self.node_mut(desc).dead = true;
        Ok(AbsorbOutcome {
            parent,
            pos,
            spliced: desc_children.len(),
        })
    }

    /// Aggregation at the tree level: replaces the sibling subtrees rooted
    /// at `targets` (children of `parent`, or roots when `parent` is
    /// `None`) with a fresh aggregate node labelled by `funcs`/`outputs`.
    ///
    /// Returns the new node's id. Dependencies are updated per §3: the
    /// removed attributes' dependents become mutually dependent and the new
    /// outputs depend on them.
    pub fn aggregate(
        &mut self,
        parent: Option<NodeId>,
        targets: &[NodeId],
        funcs: Vec<AggOp>,
        outputs: Vec<AttrId>,
    ) -> Result<NodeId> {
        if targets.is_empty() {
            return Err(FdbError::InvalidOperator(
                "aggregate needs at least one target subtree".into(),
            ));
        }
        for &t in targets {
            if self.node(t).parent != parent {
                return Err(FdbError::InvalidOperator(format!(
                    "aggregate target {t:?} is not a child of {parent:?}"
                )));
            }
        }
        // The original attribute set X: atomic attrs plus the `over` sets
        // of aggregate nodes being re-aggregated (they stand for relations
        // over those attributes, §3.1).
        let mut over: BTreeSet<AttrId> = BTreeSet::new();
        let mut removed: BTreeSet<AttrId> = BTreeSet::new();
        for &t in targets {
            for m in self.subtree_nodes(t) {
                match &self.node(m).label {
                    NodeLabel::Atomic(attrs) => {
                        over.extend(attrs.iter().copied());
                        removed.extend(attrs.iter().copied());
                    }
                    NodeLabel::Agg(l) => {
                        over.extend(l.over.iter().copied());
                        removed.extend(l.outputs.iter().copied());
                    }
                }
            }
        }
        // Insert the new node at the first target's position.
        let first_pos = self.child_position(targets[0]);
        let new_id = NodeId(self.nodes.len() as u32);
        self.nodes.push(FNode {
            label: NodeLabel::Agg(AggLabel {
                funcs,
                over,
                outputs: outputs.clone(),
            }),
            parent,
            children: Vec::new(),
            dead: false,
        });
        // Remove targets (and their subtrees) from the forest.
        for &t in targets {
            let pos = self.child_position(t);
            match parent {
                Some(p) => {
                    self.node_mut(p).children.remove(pos);
                }
                None => {
                    self.roots.remove(pos);
                }
            }
            for m in self.subtree_nodes(t) {
                self.node_mut(m).dead = true;
            }
        }
        match parent {
            Some(p) => self.node_mut(p).children.insert(first_pos, new_id),
            None => self.roots.insert(first_pos, new_id),
        }
        self.project_deps(&removed, &outputs);
        Ok(new_id)
    }

    /// Removes a leaf node (projection step). Dependencies are updated as
    /// for aggregation but with no new outputs.
    pub fn remove_leaf(&mut self, n: NodeId) -> Result<usize> {
        if !self.node(n).children.is_empty() {
            return Err(FdbError::InvalidOperator(format!(
                "{n:?} is not a leaf; push it down first"
            )));
        }
        let removed: BTreeSet<AttrId> = self.node(n).label.exposed_attrs().into_iter().collect();
        let pos = self.child_position(n);
        self.detach(n);
        self.node_mut(n).dead = true;
        self.project_deps(&removed, &[]);
        Ok(pos)
    }

    /// Replaces a node's label (used by projection to shrink an
    /// equivalence class without touching data).
    pub fn node_label_set(&mut self, n: NodeId, label: NodeLabel) {
        self.node_mut(n).label = label;
    }

    /// Projects one attribute out of a multi-member equivalence class.
    ///
    /// The data is untouched (the representative's value stands for the
    /// whole class); dependency edges mentioning the removed attribute are
    /// rewritten to a remaining class member — the members are equal, so
    /// this preserves the dependencies the edges encode.
    pub fn shrink_class(&mut self, n: NodeId, attr: AttrId) -> Result<()> {
        let NodeLabel::Atomic(attrs) = &self.node(n).label else {
            return Err(FdbError::InvalidOperator(
                "shrink_class applies to atomic nodes".into(),
            ));
        };
        let mut rest = attrs.clone();
        rest.retain(|&a| a != attr);
        if rest.is_empty() {
            return Err(FdbError::InvalidOperator(
                "cannot shrink a class to empty; remove the node instead".into(),
            ));
        }
        let replacement = rest[0];
        self.node_mut(n).label = NodeLabel::Atomic(rest);
        for e in &mut self.deps {
            if e.remove(&attr) {
                e.insert(replacement);
            }
        }
        self.deps.retain(|e| e.len() > 1);
        Ok(())
    }

    /// Renames an exposed attribute in place (constant time; names live in
    /// the f-tree, not in singletons, §2.1).
    pub fn rename_attr(&mut self, from: AttrId, to: AttrId) -> Result<()> {
        let n = self
            .node_of_attr(from)
            .ok_or_else(|| FdbError::Unresolved(format!("attribute {from} not in f-tree")))?;
        match &mut self.node_mut(n).label {
            NodeLabel::Atomic(attrs) => {
                for a in attrs.iter_mut() {
                    if *a == from {
                        *a = to;
                    }
                }
            }
            NodeLabel::Agg(l) => {
                for a in l.outputs.iter_mut() {
                    if *a == from {
                        *a = to;
                    }
                }
            }
        }
        for e in &mut self.deps {
            if e.remove(&from) {
                e.insert(to);
            }
        }
        Ok(())
    }

    /// Disjoint union with another f-tree (the product operator): appends
    /// `other`'s nodes, roots and dependency edges, remapping node ids.
    ///
    /// Returns the id offset applied to `other`'s nodes.
    pub fn extend_forest(&mut self, other: &FTree) -> u32 {
        let offset = self.nodes.len() as u32;
        for node in &other.nodes {
            let mut n = node.clone();
            n.parent = n.parent.map(|p| NodeId(p.0 + offset));
            n.children = n.children.iter().map(|c| NodeId(c.0 + offset)).collect();
            self.nodes.push(n);
        }
        self.roots
            .extend(other.roots.iter().map(|r| NodeId(r.0 + offset)));
        self.deps.extend(other.deps.iter().cloned());
        offset
    }

    fn detach(&mut self, n: NodeId) {
        match self.node(n).parent {
            Some(p) => {
                let pos = self.child_position(n);
                self.node_mut(p).children.remove(pos);
            }
            None => {
                let pos = self.child_position(n);
                self.roots.remove(pos);
            }
        }
        self.node_mut(n).parent = None;
    }

    /// Projection effect on dependencies (§3): attributes dependent on the
    /// removed set become mutually dependent, and the new outputs (if any)
    /// depend on all of them.
    fn project_deps(&mut self, removed: &BTreeSet<AttrId>, new_outputs: &[AttrId]) {
        let mut dependents: BTreeSet<AttrId> = BTreeSet::new();
        for e in &self.deps {
            if e.iter().any(|a| removed.contains(a)) {
                dependents.extend(e.iter().copied().filter(|a| !removed.contains(a)));
            }
        }
        for e in &mut self.deps {
            e.retain(|a| !removed.contains(a));
        }
        self.deps.retain(|e| e.len() > 1);
        let mut new_edge = dependents;
        new_edge.extend(new_outputs.iter().copied());
        if new_edge.len() > 1 {
            self.deps.push(new_edge);
        }
    }

    /// Canonical structural key: label + multiset of child keys, used by
    /// the exhaustive optimiser to deduplicate states (sibling order is
    /// semantically irrelevant for products).
    pub fn canonical_key(&self) -> String {
        let mut keys: Vec<String> = self.roots.iter().map(|&r| self.node_key(r, true)).collect();
        keys.sort();
        keys.join("|")
    }

    /// Like [`FTree::canonical_key`] but ignoring aggregate *output* ids,
    /// so two search paths that created the same aggregate structure under
    /// different fresh names collide in the visited set.
    pub fn search_key(&self) -> String {
        let mut keys: Vec<String> = self
            .roots
            .iter()
            .map(|&r| self.node_key(r, false))
            .collect();
        keys.sort();
        keys.join("|")
    }

    fn node_key(&self, n: NodeId, with_outputs: bool) -> String {
        let mut label = String::new();
        match &self.node(n).label {
            NodeLabel::Atomic(attrs) => {
                let mut ids: Vec<u32> = attrs.iter().map(|a| a.0).collect();
                ids.sort_unstable();
                let _ = write!(label, "a{ids:?}");
            }
            NodeLabel::Agg(l) => {
                if with_outputs {
                    let _ = write!(label, "g{:?}/{:?}/{:?}", l.funcs, l.over, l.outputs);
                } else {
                    let _ = write!(label, "g{:?}/{:?}", l.funcs, l.over);
                }
            }
        }
        let mut child_keys: Vec<String> = self
            .node(n)
            .children
            .iter()
            .map(|&c| self.node_key(c, with_outputs))
            .collect();
        child_keys.sort();
        format!("({label}[{}])", child_keys.join(","))
    }

    /// Multi-line rendering with attribute names.
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for &r in &self.roots {
            self.display_node(r, catalog, 0, &mut out);
        }
        out
    }

    fn display_node(&self, n: NodeId, catalog: &Catalog, depth: usize, out: &mut String) {
        let pad = "  ".repeat(depth);
        match &self.node(n).label {
            NodeLabel::Atomic(attrs) => {
                let names: Vec<&str> = attrs.iter().map(|&a| catalog.name(a)).collect();
                let _ = writeln!(out, "{pad}{}", names.join("="));
            }
            NodeLabel::Agg(l) => {
                let over: Vec<&str> = l.over.iter().map(|&a| catalog.name(a)).collect();
                let funcs: Vec<String> = l.funcs.iter().map(|f| f.display(catalog)).collect();
                let _ = writeln!(out, "{pad}{}({})", funcs.join(","), over.join(","));
            }
        }
        for &c in &self.node(n).children {
            self.display_node(c, catalog, depth + 1, out);
        }
    }
}

/// Result of [`FTree::swap`]: partition of `b`'s former children.
#[derive(Clone, Debug)]
pub struct SwapOutcome {
    /// Children of `b` that moved up with `b` (`T_B`), original order.
    pub moved_up: Vec<NodeId>,
    /// Children of `b` that stayed under `a` (`T_AB`), original order.
    pub stayed: Vec<NodeId>,
    /// Position `b` had among `a`'s children before the swap.
    pub b_pos_in_a: usize,
}

/// Result of [`FTree::merge`]: the sibling positions of the merged nodes.
#[derive(Clone, Debug)]
pub struct MergeOutcome {
    pub a_pos: usize,
    pub b_pos: usize,
}

/// Result of [`FTree::absorb`].
#[derive(Clone, Debug)]
pub struct AbsorbOutcome {
    /// `desc`'s former parent.
    pub parent: NodeId,
    /// `desc`'s former position under that parent.
    pub pos: usize,
    /// Number of children spliced in place of `desc`.
    pub spliced: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the paper's f-tree T1 (Fig. 2): pizza → {date → customer,
    /// item → price}, with dependency edges for Orders(customer, date,
    /// pizza), Pizzas(pizza, item), Items(item, price).
    fn t1() -> (Catalog, FTree, [NodeId; 5]) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        let n_customer = t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        let n_price = t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        (c, t, [n_pizza, n_date, n_customer, n_item, n_price])
    }

    #[test]
    fn path_tree_shape() {
        let t = FTree::path(&[AttrId(0), AttrId(1), AttrId(2)]);
        assert_eq!(t.roots().len(), 1);
        let nodes = t.live_nodes();
        assert_eq!(nodes.len(), 3);
        assert_eq!(t.depth(nodes[2]), 2);
    }

    #[test]
    fn t1_satisfies_path_constraint() {
        let (_, t, _) = t1();
        t.check_path_constraint().unwrap();
    }

    #[test]
    fn diverging_dependency_violates_path_constraint() {
        let (_, mut t, [_, n_date, _, n_item, _]) = t1();
        // Pretend date and item come from the same relation: they sit on
        // diverging branches under pizza.
        let date = t.node(n_date).label.exposed_attrs()[0];
        let item = t.node(n_item).label.exposed_attrs()[0];
        t.add_dep([date, item]);
        assert!(t.check_path_constraint().is_err());
    }

    #[test]
    fn subtree_attrs_and_node_lookup() {
        let (c, t, [n_pizza, _, _, n_item, _]) = t1();
        let item = c.lookup("item").unwrap();
        let price = c.lookup("price").unwrap();
        let sub = t.subtree_attrs(n_item);
        assert!(sub.contains(&item) && sub.contains(&price));
        assert_eq!(sub.len(), 2);
        assert_eq!(t.node_of_attr(item), Some(n_item));
        assert_eq!(t.subtree_attrs(n_pizza).len(), 5);
    }

    #[test]
    fn swap_moves_independent_children_up() {
        // Swap date above pizza in T1. The item subtree depends on pizza
        // (edge pizza–item), so when swapping χ_{pizza,date}, date keeps
        // nothing (its only child customer depends on pizza via Orders).
        let (_, mut t, [n_pizza, n_date, n_customer, _, _]) = t1();
        let out = t.swap(n_pizza, n_date).unwrap();
        assert_eq!(t.roots(), &[n_date]);
        assert_eq!(t.node(n_pizza).parent, Some(n_date));
        // customer depends on pizza (Orders edge) so it stays under pizza.
        assert!(out.stayed.contains(&n_customer));
        assert!(t.node(n_pizza).children.contains(&n_customer));
        t.check_path_constraint().unwrap();
    }

    #[test]
    fn swap_keeps_independent_subtree() {
        // Example 11 setting: Orders = Menu(pizza,date) ⋈ Guests(date,
        // customer), so customer and pizza are independent given date.
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        let n_customer = t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        t.add_dep([pizza, date]);
        t.add_dep([date, customer]);
        let out = t.swap(n_pizza, n_date).unwrap();
        // customer does not depend on pizza: it moves up with date.
        assert_eq!(out.moved_up, vec![n_customer]);
        assert_eq!(t.node(n_date).children, vec![n_customer, n_pizza]);
        t.check_path_constraint().unwrap();
    }

    #[test]
    fn swap_requires_parent_child() {
        let (_, mut t, [n_pizza, _, n_customer, _, _]) = t1();
        assert!(t.swap(n_pizza, n_customer).is_err());
    }

    #[test]
    fn merge_unions_classes_and_children() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let x = c.intern("x");
        let mut t = FTree::new();
        let na = t.add_node(NodeLabel::Atomic(vec![a]), None);
        let nb = t.add_node(NodeLabel::Atomic(vec![b]), None);
        let nx = t.add_node(NodeLabel::Atomic(vec![x]), Some(nb));
        let out = t.merge(na, nb).unwrap();
        assert_eq!(out.a_pos, 0);
        assert_eq!(out.b_pos, 1);
        assert_eq!(t.roots(), &[na]);
        assert_eq!(t.node(na).label.exposed_attrs().len(), 2);
        assert_eq!(t.node(nx).parent, Some(na));
    }

    #[test]
    fn absorb_splices_children() {
        let (c, mut t, [n_pizza, n_date, n_customer, _, _]) = t1();
        // Pretend a self-join condition pizza = customer (types aside):
        // customer is a strict descendant of pizza.
        t.absorb(n_pizza, n_customer).unwrap();
        let pizza_class = t.node(n_pizza).label.exposed_attrs();
        assert_eq!(pizza_class.len(), 2);
        assert!(pizza_class.contains(&c.lookup("customer").unwrap()));
        assert!(t.node(n_date).children.is_empty());
    }

    #[test]
    fn aggregate_replaces_subtree_and_updates_deps() {
        let (mut c, mut t, [n_pizza, _, _, n_item, _]) = t1();
        let out_attr = c.intern("sum(price)");
        let price = c.lookup("price").unwrap();
        let new = t
            .aggregate(
                Some(n_pizza),
                &[n_item],
                vec![AggOp::Sum(price)],
                vec![out_attr],
            )
            .unwrap();
        // T2 of Fig. 2: pizza → {date → customer, sum(price)}.
        assert_eq!(t.node(n_pizza).children.len(), 2);
        assert_eq!(t.node(new).parent, Some(n_pizza));
        match &t.node(new).label {
            NodeLabel::Agg(l) => {
                assert_eq!(l.funcs, vec![AggOp::Sum(price)]);
                assert!(l.over.contains(&price));
                assert_eq!(l.over.len(), 2);
            }
            _ => panic!("expected aggregate node"),
        }
        // New dependency: sum(price) depends on pizza (Example 5).
        let pizza = c.lookup("pizza").unwrap();
        assert!(t
            .deps()
            .iter()
            .any(|e| e.contains(&out_attr) && e.contains(&pizza)));
        t.check_path_constraint().unwrap();
    }

    #[test]
    fn aggregate_of_aggregate_accumulates_over_set() {
        let (mut c, mut t, [n_pizza, _, _, n_item, _]) = t1();
        let price = c.lookup("price").unwrap();
        let s1 = c.intern("s1");
        let first = t
            .aggregate(Some(n_pizza), &[n_item], vec![AggOp::Sum(price)], vec![s1])
            .unwrap();
        // Now aggregate the whole forest (roots) into one value.
        let s2 = c.intern("s2");
        let root = t.roots()[0];
        let new = t
            .aggregate(None, &[root], vec![AggOp::Sum(price)], vec![s2])
            .unwrap();
        let _ = first;
        match &t.node(new).label {
            NodeLabel::Agg(l) => {
                // over = all five original attributes.
                assert_eq!(l.over.len(), 5);
            }
            _ => panic!("expected aggregate node"),
        }
        assert_eq!(t.roots(), &[new]);
    }

    #[test]
    fn remove_leaf_updates_deps() {
        let (mut c, mut t, [_, _, _, n_item, n_price]) = t1();
        t.remove_leaf(n_price).unwrap();
        assert!(t.node(n_item).children.is_empty());
        let price = c.intern("price");
        assert!(!t.deps().iter().any(|e| e.contains(&price)));
        // Removing an internal node must fail.
        assert!(t.remove_leaf(t.roots()[0]).is_err());
    }

    #[test]
    fn rename_is_constant_time_label_change() {
        let (mut c, mut t, [n_pizza, ..]) = t1();
        let pizza = c.lookup("pizza").unwrap();
        let renamed = c.intern("product");
        t.rename_attr(pizza, renamed).unwrap();
        assert!(t.node(n_pizza).label.exposes(renamed));
        assert!(!t.node(n_pizza).label.exposes(pizza));
    }

    #[test]
    fn extend_forest_remaps_ids() {
        let (_, mut t, _) = t1();
        let other = FTree::path(&[AttrId(10), AttrId(11)]);
        let before = t.live_nodes().len();
        t.extend_forest(&other);
        assert_eq!(t.roots().len(), 2);
        assert_eq!(t.live_nodes().len(), before + 2);
        t.check_path_constraint().unwrap();
    }

    #[test]
    fn canonical_key_ignores_sibling_order() {
        let mut t1 = FTree::new();
        let r1 = t1.add_node(NodeLabel::Atomic(vec![AttrId(0)]), None);
        t1.add_node(NodeLabel::Atomic(vec![AttrId(1)]), Some(r1));
        t1.add_node(NodeLabel::Atomic(vec![AttrId(2)]), Some(r1));
        let mut t2 = FTree::new();
        let r2 = t2.add_node(NodeLabel::Atomic(vec![AttrId(0)]), None);
        t2.add_node(NodeLabel::Atomic(vec![AttrId(2)]), Some(r2));
        t2.add_node(NodeLabel::Atomic(vec![AttrId(1)]), Some(r2));
        assert_eq!(t1.canonical_key(), t2.canonical_key());
        // But different shapes differ.
        let t3 = FTree::path(&[AttrId(0), AttrId(1), AttrId(2)]);
        assert_ne!(t1.canonical_key(), t3.canonical_key());
    }

    #[test]
    fn display_renders_tree() {
        let (c, t, _) = t1();
        let s = t.display(&c);
        assert!(s.contains("pizza"));
        assert!(s.contains("  date"));
        assert!(s.contains("    customer"));
    }
}
