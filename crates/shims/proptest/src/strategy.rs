//! The [`Strategy`] abstraction: a recipe for generating values.
//!
//! Unlike upstream there is no value tree / shrinking; a strategy simply
//! produces a value from the case RNG.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A recipe for producing test inputs.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f` (upstream's `prop_map`).
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Every strategy reference is itself a strategy.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// String literals act as (a tiny subset of) regex strategies; see
/// [`crate::string::pattern`].
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::pattern(self).generate(rng)
    }
}

impl Strategy for String {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::pattern(self).generate(rng)
    }
}
