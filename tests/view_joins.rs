//! Joins whose inputs mix factorised views and flat relations: the engine
//! must shadow colliding attribute names, merge on the natural-join
//! conditions, and agree with the relational baseline.

mod common;

use fdb::core::engine::FdbEngine;
use fdb::core::frep::FRep;
use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::planner::JoinAggTask;
use fdb::relational::{AggFunc, AggSpec, GroupStrategy, SortKey};
use fdb::workload::pizzeria::pizzeria;
use fdb::{Catalog, FTree};

#[test]
fn view_joined_with_flat_relation() {
    let mut catalog = Catalog::new();
    let db = pizzeria(&mut catalog);
    let a = db.attrs;

    // Factorised view over Pizzas (trie pizza → item), flat Items.
    let pizzas_rep = FRep::from_relation(
        &db.pizzas.project_cols(&[a.pizza, a.item]).canonical(),
        FTree::path(&[a.pizza, a.item]),
    )
    .unwrap();
    let mut fdb = FdbEngine::new(catalog.clone());
    fdb.register_view("PizzasV", pizzas_rep);
    fdb.register_relation("Items", db.items.clone());

    let total = fdb.catalog.intern("total");
    let task = JoinAggTask {
        inputs: vec!["PizzasV".into(), "Items".into()],
        group_by: vec![a.pizza],
        aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), total)],
        order_by: vec![SortKey::asc(a.pizza)],
        ..Default::default()
    };
    let got = fdb.run_default(&task).unwrap().to_relation().unwrap();

    let mut rdb = RdbEngine::new(fdb.catalog.clone(), GroupStrategy::Sort);
    rdb.register("PizzasV", db.pizzas.clone());
    rdb.register("Items", db.items.clone());
    let expected = rdb.run(&task, PlanMode::Naive).unwrap();
    assert_eq!(got.canonical(), expected.canonical());
    assert_eq!(got.len(), 3);
}

#[test]
fn two_views_join_with_shadowing() {
    let mut catalog = Catalog::new();
    let db = pizzeria(&mut catalog);
    let a = db.attrs;
    let orders_rep = FRep::from_relation(
        &db.orders
            .project_cols(&[a.pizza, a.customer, a.date])
            .canonical(),
        FTree::path(&[a.pizza, a.customer, a.date]),
    )
    .unwrap();
    let pizzas_rep = FRep::from_relation(
        &db.pizzas.project_cols(&[a.pizza, a.item]).canonical(),
        FTree::path(&[a.pizza, a.item]),
    )
    .unwrap();
    let mut fdb = FdbEngine::new(catalog.clone());
    fdb.register_view("OrdersV", orders_rep);
    fdb.register_view("PizzasV", pizzas_rep);

    // The shared `pizza` attribute must be shadowed in the second view and
    // equated by the natural-join selection.
    let n = fdb.catalog.intern("n");
    let task = JoinAggTask {
        inputs: vec!["OrdersV".into(), "PizzasV".into()],
        group_by: vec![a.customer],
        aggregates: vec![AggSpec::new(AggFunc::Count, n)],
        order_by: vec![SortKey::asc(a.customer)],
        ..Default::default()
    };
    let got = fdb.run_default(&task).unwrap().to_relation().unwrap();

    let mut rdb = RdbEngine::new(fdb.catalog.clone(), GroupStrategy::Hash);
    rdb.register("OrdersV", db.orders.clone());
    rdb.register("PizzasV", db.pizzas.clone());
    let expected = rdb.run(&task, PlanMode::Naive).unwrap();
    assert_eq!(got.canonical(), expected.canonical());
    // Mario: Capricciosa(3 items)×2 dates + Margherita(1): 7 order-items…
    // distinct (date, pizza, item) combos per customer; verified against
    // the oracle above, spot-check one row here.
    assert_eq!(got.row(1)[0], fdb::Value::str("Mario"));
}

#[test]
fn three_way_mixed_inputs_match_all_baselines() {
    let mut e = common::pizzeria_engines();
    // Re-register Pizzas as a factorised view in the FDB engine only; the
    // task is identical for the baselines.
    let (pizza, item) = (
        e.fdb.catalog.lookup("pizza").unwrap(),
        e.fdb.catalog.lookup("item").unwrap(),
    );
    let mut c2 = e.fdb.catalog.clone();
    let db = pizzeria(&mut c2);
    let rep = FRep::from_relation(
        &db.pizzas.project_cols(&[pizza, item]).canonical(),
        FTree::path(&[pizza, item]),
    )
    .unwrap();
    e.fdb.register_view("Pizzas", rep);
    e.assert_all_agree(
        "SELECT customer, SUM(price) AS revenue \
         FROM Orders, Pizzas, Items GROUP BY customer",
    );
    e.assert_all_agree(
        "SELECT pizza, COUNT(*) AS n FROM Orders, Pizzas GROUP BY pizza \
         ORDER BY n DESC, pizza",
    );
}
