//! F-plan operators on factorised representations (§2.1, §3, §4.2).
//!
//! Each operator transforms an [`crate::frep::FRep`] into another one, changing the
//! f-tree and mirroring the change on the data in one pass:
//!
//! | operator | implements | module |
//! |---|---|---|
//! | `product` | cross product (cheapest op: forest union) | [`mod@product`] |
//! | `select_const` | `A θ c` selections | [`select`] |
//! | `merge` / `absorb` | `A = B` selections (siblings / path) | [`restructure`] |
//! | `swap` | restructuring `χ_{A,B}` | [`restructure`] |
//! | `aggregate` | the new aggregation operator `γ_F(U)` | [`mod@aggregate`] |
//! | `project_away` | projection (leaf removal, with push-down) | [`project`] |
//! | `rename` | constant-time attribute renaming | [`project`] |
//!
//! Every operator exists in **two physical forms** over the arena
//! storage of [`crate::frep`]:
//!
//! * the **legacy copy transform** (`select_const`, `swap`, …): walks
//!   the source arena through [`crate::frep::UnionRef`] cursors and
//!   appends the rewritten representation into a fresh destination
//!   arena, deep-copying every untouched fragment record by record
//!   (`Arena::copy_union_from`). One full arena materialisation per
//!   operator — the reference semantics the differential suites pin.
//! * the **in-place rewrite** (`select_const_inplace`,
//!   `swap_inplace`, …): appends only the rewritten fragment to the
//!   *same* arena the representation lives in and **shares** untouched
//!   subtrees by id (`rewrite_at_inplace`). No per-operator
//!   materialisation; superseded records along the rewritten root path
//!   become unreachable garbage that the staged pipeline executor
//!   ([`crate::pipeline`]) sheds in one compaction pass per plan.
//!
//! `product` is the exception in both forms: it splices the right
//! arena onto the left in one wholesale table append without touching
//! the left side at all.
//!
//! All operators preserve the sortedness invariant of unions and prune
//! entries whose subtrees become empty, cascading towards the roots.

pub mod aggregate;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;

pub use aggregate::{aggregate, aggregate_par, aggregate_par_inplace, AggTarget};
pub use product::product;
pub use project::{project_away, project_away_inplace, remove_leaf, remove_leaf_inplace, rename};
pub use restructure::{absorb, absorb_inplace, merge, merge_inplace, swap, swap_inplace};
pub use select::{select_const, select_const_inplace};

use crate::error::Result;
use crate::frep::{Arena, UnionId, UnionRef};
use crate::ftree::{FTree, NodeId};

/// Rewrites every occurrence of `target`'s union, copying everything
/// else from `src` into `dst` unchanged.
///
/// The unions of a node occur once per combination of its ancestors'
/// values; this walks the unique root path (computed on the f-tree *before*
/// any structural change) and calls `f` on each occurrence, passing the
/// source cursor and the destination arena. If `f` returns `None` — or a
/// union with no entries — the containing entry is pruned and pruning
/// cascades upward; at the root an empty union denotes the empty
/// relation.
pub(crate) fn rewrite_at(
    tree: &FTree,
    src: &Arena,
    roots: &[UnionId],
    target: NodeId,
    dst: &mut Arena,
    f: &mut dyn FnMut(UnionRef<'_>, &mut Arena) -> Result<Option<UnionId>>,
) -> Result<Vec<UnionId>> {
    let path = tree.root_path(target);
    let root_idx = tree
        .roots()
        .iter()
        .position(|&r| r == path[0])
        .expect("target's root is a forest root");
    let mut out = Vec::with_capacity(roots.len());
    for (i, &r) in roots.iter().enumerate() {
        if i == root_idx {
            let nu = rewrite_rec(tree, src, r, &path, f, dst)?;
            out.push(nu.unwrap_or_else(|| dst.empty_union(path[0])));
        } else {
            out.push(dst.copy_union_from(src, r));
        }
    }
    Ok(out)
}

fn rewrite_rec(
    tree: &FTree,
    src: &Arena,
    uid: UnionId,
    path: &[NodeId],
    f: &mut dyn FnMut(UnionRef<'_>, &mut Arena) -> Result<Option<UnionId>>,
    dst: &mut Arena,
) -> Result<Option<UnionId>> {
    let u = src.union(uid);
    debug_assert_eq!(u.node(), path[0]);
    if path.len() == 1 {
        return Ok(f(u, dst)?.filter(|&nu| dst.union_len(nu) > 0));
    }
    let child_idx = tree
        .node(path[0])
        .children
        .iter()
        .position(|&c| c == path[1])
        .expect("path step is a child");
    let mut specs = Vec::with_capacity(u.len());
    let mut kid_ids: Vec<UnionId> = Vec::new();
    for e in u.entries() {
        // Rewrite the on-path child first: a pruned subtree skips the
        // sibling copies entirely.
        let Some(nu) = rewrite_rec(tree, src, e.child_id(child_idx), &path[1..], f, dst)? else {
            continue;
        };
        kid_ids.clear();
        for (j, c) in e.child_ids().enumerate() {
            kid_ids.push(if j == child_idx {
                nu
            } else {
                dst.copy_union_from(src, c)
            });
        }
        specs.push(dst.entry(u.node(), e.value().clone(), &kid_ids));
    }
    Ok((!specs.is_empty()).then(|| dst.push_union(u.node(), &specs)))
}

/// In-place analog of [`rewrite_at`]: rewrites every occurrence of
/// `target`'s union by **appending** to the same arena the
/// representation lives in, returning the new root ids.
///
/// Untouched sibling fragments and off-path roots are *shared* by id
/// rather than deep-copied (each share is recorded in the arena's
/// `copies_avoided` counter), so the cost of one operator is the size
/// of the rewritten root-path spine plus whatever `f` appends — not
/// the size of the arena. When nothing below an occurrence changes
/// (`f` returned the input id for every occurrence and no entry was
/// pruned) the containing union is shared wholesale too.
///
/// The closure receives `(&mut Arena, UnionId)` instead of a cursor:
/// in-place rewrites read records by index (they are `Copy`) because a
/// cursor would borrow the arena across the appends.
pub(crate) fn rewrite_at_inplace(
    tree: &FTree,
    arena: &mut Arena,
    roots: &[UnionId],
    target: NodeId,
    f: &mut dyn FnMut(&mut Arena, UnionId) -> Result<Option<UnionId>>,
) -> Result<Vec<UnionId>> {
    let path = tree.root_path(target);
    let root_idx = tree
        .roots()
        .iter()
        .position(|&r| r == path[0])
        .expect("target's root is a forest root");
    // Earlier in-place operators share fragments, so the walk runs over
    // a DAG: a union referenced from several parents must be rewritten
    // once and re-shared, not expanded per parent. Rewrites are
    // deterministic functions of the input union, so memoising by
    // source id is sound (`None` = pruned).
    let mut memo: std::collections::HashMap<u32, Option<UnionId>> =
        std::collections::HashMap::new();
    let mut out = Vec::with_capacity(roots.len());
    for (i, &r) in roots.iter().enumerate() {
        if i == root_idx {
            let nu = rewrite_rec_inplace(tree, arena, r, &path, f, &mut memo)?;
            out.push(nu.unwrap_or_else(|| arena.empty_union(path[0])));
        } else {
            arena.note_shared(1);
            out.push(r);
        }
    }
    Ok(out)
}

fn rewrite_rec_inplace(
    tree: &FTree,
    arena: &mut Arena,
    uid: UnionId,
    path: &[NodeId],
    f: &mut dyn FnMut(&mut Arena, UnionId) -> Result<Option<UnionId>>,
    memo: &mut std::collections::HashMap<u32, Option<UnionId>>,
) -> Result<Option<UnionId>> {
    debug_assert_eq!(arena.urec(uid).node, path[0]);
    if let Some(&m) = memo.get(&uid.0) {
        if m.is_some() {
            arena.note_shared(1);
        }
        return Ok(m);
    }
    if path.len() == 1 {
        let nu = f(arena, uid)?.filter(|&nu| arena.union_len(nu) > 0);
        memo.insert(uid.0, nu);
        return Ok(nu);
    }
    let child_idx = tree
        .node(path[0])
        .children
        .iter()
        .position(|&c| c == path[1])
        .expect("path step is a child");
    let rec = arena.urec(uid);
    let mut specs = Vec::with_capacity(rec.len as usize);
    let mut kid_ids: Vec<UnionId> = Vec::new();
    let mut unchanged = true;
    // Kid shares are tallied locally and committed only when the
    // rewritten spine level is actually emitted -- the
    // unchanged-wholesale path discards its specs and must not count
    // them.
    let mut shared_here: u64 = 0;
    for i in rec.start..rec.start + rec.len {
        let e = arena.erec(i);
        let old_kid = arena.kid_at(e.kids_start + child_idx as u32);
        let Some(nu) = rewrite_rec_inplace(tree, arena, old_kid, &path[1..], f, memo)? else {
            unchanged = false;
            continue;
        };
        unchanged &= nu == old_kid;
        kid_ids.clear();
        for k in 0..e.kids_len {
            if k as usize == child_idx {
                kid_ids.push(nu);
            } else {
                shared_here += 1;
                kid_ids.push(arena.kid_at(e.kids_start + k));
            }
        }
        specs.push(arena.entry_shared_val(e.val, &kid_ids));
    }
    if unchanged {
        // Nothing below this occurrence changed: share it wholesale
        // (the spec kid-ranges appended above become garbage for the
        // per-plan compaction pass to shed).
        arena.note_shared(1);
        memo.insert(uid.0, Some(uid));
        return Ok(Some(uid));
    }
    if specs.is_empty() {
        memo.insert(uid.0, None);
        return Ok(None);
    }
    arena.note_shared(shared_here);
    let nu = arena.push_union(path[0], &specs);
    memo.insert(uid.0, Some(nu));
    Ok(Some(nu))
}
