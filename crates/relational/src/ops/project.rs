//! Projection with set semantics.

use crate::attr::AttrId;
use crate::relation::Relation;

/// Projects `rel` onto `attrs` (in the given column order).
///
/// Relational algebra in the paper is over sets, so the result is
/// deduplicated; pass `distinct = false` only when the caller knows the
/// projection is injective (e.g. onto a key) and wants to skip the sort.
///
/// # Panics
/// Panics if an attribute is missing from `rel`'s schema.
pub fn project(rel: &Relation, attrs: &[AttrId], distinct: bool) -> Relation {
    let mut out = rel.project_cols(attrs);
    if distinct {
        out.canonicalize();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::schema::Schema;
    use crate::value::Value;

    #[test]
    fn distinct_projection_dedups() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (2, 9)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        let out = project(&rel, &[a], true);
        assert_eq!(out.len(), 2);
        let raw = project(&rel, &[a], false);
        assert_eq!(raw.len(), 3);
    }

    #[test]
    fn projection_onto_empty_schema_yields_nullary() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let rel = Relation::from_rows(
            Schema::new(vec![a]),
            [1, 2].into_iter().map(|x| vec![Value::Int(x)]),
        );
        let out = project(&rel, &[], true);
        assert_eq!(out.arity(), 0);
        // The nullary tuple is present exactly once.
        assert_eq!(out.len(), 1);
    }
}
