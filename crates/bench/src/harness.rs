//! Timing and output-format helpers shared by the figure binaries.

use std::time::Instant;

/// Wall-clock seconds of one invocation, plus its result.
pub fn time_secs<R>(f: impl FnOnce() -> R) -> (R, f64) {
    let t0 = Instant::now();
    let r = f();
    (r, t0.elapsed().as_secs_f64())
}

/// Median wall-clock seconds over `repeats` invocations (the figure
/// binaries default to 3, like the paper's "time the last repetition"
/// policy but robust to one-off noise). Returns the last result.
pub fn median_secs<R>(repeats: usize, mut f: impl FnMut() -> R) -> (R, f64) {
    assert!(repeats >= 1);
    let mut times = Vec::with_capacity(repeats);
    let mut last = None;
    for _ in 0..repeats {
        let (r, t) = time_secs(&mut f);
        times.push(t);
        last = Some(r);
    }
    times.sort_by(f64::total_cmp);
    (last.expect("at least one repeat"), times[times.len() / 2])
}

/// One output row, greppable and gnuplot-friendly.
pub fn print_row(figure: &str, scale: u32, query: &str, engine: &str, seconds: f64, note: &str) {
    let note = if note.is_empty() {
        String::new()
    } else {
        format!(" {note}")
    };
    println!(
        "figure={figure} scale={scale} query={query} engine=\"{engine}\" seconds={seconds:.6}{note}"
    );
}

/// Parses `--scale N`, `--max-scale N`, `--repeats N`, `--customers N`
/// from argv with defaults; unknown flags abort with usage.
pub struct Args {
    pub scale: u32,
    pub max_scale: u32,
    pub repeats: usize,
    pub customers: u32,
}

impl Args {
    pub fn parse(default_scale: u32, default_max: u32) -> Args {
        let mut args = Args {
            scale: default_scale,
            max_scale: default_max,
            repeats: 3,
            customers: 100,
        };
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let need_value = |i: usize| {
                argv.get(i + 1)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {}", argv[i]);
                        std::process::exit(2);
                    })
                    .parse::<u64>()
                    .unwrap_or_else(|_| {
                        eprintln!("bad value for {}", argv[i]);
                        std::process::exit(2);
                    })
            };
            match argv[i].as_str() {
                "--scale" => {
                    args.scale = need_value(i) as u32;
                    i += 2;
                }
                "--max-scale" => {
                    args.max_scale = need_value(i) as u32;
                    i += 2;
                }
                "--repeats" => {
                    args.repeats = need_value(i) as usize;
                    i += 2;
                }
                "--customers" => {
                    args.customers = need_value(i) as u32;
                    i += 2;
                }
                "--help" | "-h" => {
                    eprintln!("usage: [--scale N] [--max-scale N] [--repeats N] [--customers N]");
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown flag `{other}`; see --help");
                    std::process::exit(2);
                }
            }
        }
        args
    }

    /// The scale sweep 1, 2, 4, … up to `max_scale`.
    pub fn sweep(&self) -> Vec<u32> {
        let mut out = Vec::new();
        let mut s = 1;
        while s <= self.max_scale {
            out.push(s);
            s *= 2;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_repeats() {
        let mut n = 0;
        let (r, t) = median_secs(3, || {
            n += 1;
            n
        });
        assert_eq!(r, 3);
        assert!(t >= 0.0);
    }

    #[test]
    fn time_secs_returns_result() {
        let (v, t) = time_secs(|| 40 + 2);
        assert_eq!(v, 42);
        assert!(t >= 0.0);
    }
}
