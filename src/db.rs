//! The session API: a shared, registrable database ([`Db`]) handing out
//! cheap immutable snapshots ([`Session`]) that answer SQL with a full
//! result report ([`QueryOutcome`]).
//!
//! This is the facade the serving layer (`fdb-server`), the examples,
//! the benches and the integration tests route through. The design
//! follows the paper's build-once-query-many premise:
//!
//! * a [`Db`] owns one **template engine** whose registered inputs
//!   (factorised views and flat relations) live behind `Arc` — the flat
//!   arena of PR 3 makes an immutable snapshot four vector handles;
//! * [`Db::session`] clones the template under a short lock: the clone
//!   copies the catalog and the name tables but **shares** every arena
//!   and relation buffer. A session is therefore a consistent snapshot —
//!   registrations that happen later are invisible to it;
//! * many sessions on many threads read the same arenas concurrently;
//!   results are byte-identical to the single-threaded library run
//!   (pinned by `tests/shared_snapshot.rs` and the oracle sweep);
//! * [`Db`] tracks an **epoch** bumped on every registration, so a
//!   long-lived worker can cheaply detect staleness and re-snapshot.
//!
//! ```
//! use fdb::{Db, Value};
//! use fdb::relational::{Relation, Schema};
//!
//! let db = Db::open();
//! let (item, price) = {
//!     let mut cat = db.catalog();
//!     (cat.intern("item"), cat.intern("price"))
//! };
//! # let _ = item;
//! let rel = Relation::from_rows(
//!     Schema::new(vec![item, price]),
//!     [("base", 6), ("ham", 1)]
//!         .into_iter()
//!         .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
//! );
//! db.register_relation("Items", rel);
//! let mut session = db.session();
//! let out = session.query("SELECT SUM(price) AS total FROM Items").unwrap();
//! assert_eq!(out.rows.row(0)[0], Value::Int(7));
//! assert_eq!(out.columns, vec!["total"]);
//! assert!(out.explain.contains("f-plan"));
//! ```

use crate::core::engine::{FdbEngine, OrderStrategy, RunOptions};
use crate::core::{ExecStats, FRep, OrderRunStats, Result};
use crate::relational::{Catalog, Relation};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A shared database: the registration surface plus a template engine
/// from which immutable [`Session`] snapshots are cloned.
///
/// `Db` is `Clone` + `Send` + `Sync`; clones are handles to the same
/// underlying database (the serving layer passes one per worker).
#[derive(Clone, Debug)]
pub struct Db {
    inner: Arc<DbInner>,
}

#[derive(Debug)]
struct DbInner {
    /// The template engine. Mutated only by registrations; sessions
    /// clone it under the lock (cheap: inputs are `Arc`-shared).
    template: Mutex<FdbEngine>,
    /// Bumped on every registration; lets workers detect stale
    /// snapshots without taking the template lock.
    epoch: AtomicU64,
}

impl Db {
    /// An empty database with a fresh catalog.
    pub fn open() -> Db {
        Db::from_engine(FdbEngine::new(Catalog::new()))
    }

    /// Wraps an already-populated engine (the benches and tests build
    /// their datasets through `FdbEngine` setup helpers).
    pub fn from_engine(engine: FdbEngine) -> Db {
        Db {
            inner: Arc::new(DbInner {
                template: Mutex::new(engine),
                epoch: AtomicU64::new(1),
            }),
        }
    }

    /// Locked access to the template engine's catalog (interning
    /// attributes before building relations by hand).
    pub fn catalog(&self) -> CatalogGuard<'_> {
        CatalogGuard { guard: self.lock() }
    }

    fn lock(&self) -> MutexGuard<'_, FdbEngine> {
        self.inner
            .template
            .lock()
            .expect("fdb::Db template lock poisoned")
    }

    /// Registers a flat relation; visible to sessions opened afterwards.
    pub fn register_relation(&self, name: impl Into<String>, rel: Relation) {
        self.lock().register_relation(name, rel);
        self.bump();
    }

    /// Registers a factorised view; visible to sessions opened afterwards.
    pub fn register_view(&self, name: impl Into<String>, rep: FRep) {
        self.lock().register_view(name, rep);
        self.bump();
    }

    /// Loads a serialised view (the `fdbv1` format of `fdb_core::io`)
    /// and registers it under `name`.
    pub fn load_view(&self, name: impl Into<String>, r: impl std::io::BufRead) -> Result<()> {
        self.lock().load_view(name, r)?;
        self.bump();
        Ok(())
    }

    /// The current registration epoch (starts at 1, bumped on every
    /// registration). A [`Session`] records the epoch it was cut at;
    /// `session.epoch() != db.epoch()` means the snapshot is stale.
    pub fn epoch(&self) -> u64 {
        self.inner.epoch.load(Ordering::Acquire)
    }

    fn bump(&self) {
        self.inner.epoch.fetch_add(1, Ordering::AcqRel);
    }

    /// Cuts an immutable snapshot: a [`Session`] holding its own cheap
    /// clone of the template engine (shared arenas, private catalog).
    pub fn session(&self) -> Session {
        let engine = self.lock().clone();
        Session {
            engine,
            opts: RunOptions::default(),
            epoch: self.epoch(),
        }
    }

    /// Names of the registered relations and views `(relations, views)`,
    /// both sorted (the serving layer's `STATS` report).
    pub fn input_names(&self) -> (Vec<String>, Vec<String>) {
        let engine = self.lock();
        (engine.relation_names(), engine.view_names())
    }
}

impl Default for Db {
    fn default() -> Self {
        Db::open()
    }
}

/// RAII view of the template engine's catalog (see [`Db::catalog`]).
pub struct CatalogGuard<'a> {
    guard: MutexGuard<'a, FdbEngine>,
}

impl std::ops::Deref for CatalogGuard<'_> {
    type Target = Catalog;
    fn deref(&self) -> &Catalog {
        &self.guard.catalog
    }
}

impl std::ops::DerefMut for CatalogGuard<'_> {
    fn deref_mut(&mut self) -> &mut Catalog {
        &mut self.guard.catalog
    }
}

/// An immutable snapshot of a [`Db`] plus per-session run options.
///
/// Sessions are `Send`: the serving layer keeps one per worker thread
/// and refreshes it when the epoch moves. All methods take `&mut self`
/// only because each run interns fresh output attributes into the
/// session's private catalog copy — the shared data is never written.
#[derive(Clone, Debug)]
pub struct Session {
    engine: FdbEngine,
    opts: RunOptions,
    epoch: u64,
}

impl Session {
    /// The [`Db::epoch`] this snapshot was cut at.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The session's default run options (applied by [`Session::query`]).
    pub fn options(&self) -> RunOptions {
        self.opts
    }

    /// Replaces the session's default run options.
    pub fn set_options(&mut self, opts: RunOptions) {
        self.opts = opts;
    }

    /// Builder-style [`Session::set_options`].
    pub fn with_options(mut self, opts: RunOptions) -> Self {
        self.opts = opts;
        self
    }

    /// The session's catalog (attribute names of this snapshot).
    pub fn catalog(&self) -> &Catalog {
        &self.engine.catalog
    }

    /// The underlying engine (escape hatch for task-level callers; the
    /// differential suites run `JoinAggTask`s directly through it).
    pub fn engine_mut(&mut self) -> &mut FdbEngine {
        &mut self.engine
    }

    /// Parses and runs `sql` with the session options, returning the
    /// enumerated rows plus the full execution report.
    pub fn query(&mut self, sql: &str) -> Result<QueryOutcome> {
        self.query_with(sql, self.opts)
    }

    /// [`Session::query`] with explicit per-call options (the serving
    /// layer threads per-request deadlines through here).
    pub fn query_with(&mut self, sql: &str, opts: RunOptions) -> Result<QueryOutcome> {
        let result = self.engine.run_sql_with(sql, opts)?;
        let explain = result.explain(&self.engine.catalog);
        let strategy = result.order_strategy();
        let exec = result.exec_stats();
        let (rows, order) = result.to_relation_counted()?;
        let columns = rows
            .schema()
            .attrs()
            .iter()
            .map(|&a| self.engine.catalog.name(a).to_string())
            .collect();
        Ok(QueryOutcome {
            rows,
            columns,
            explain,
            strategy,
            exec,
            order,
        })
    }

    /// The EXPLAIN text of `sql` under the session options: plans and
    /// executes the f-plan but does **not** enumerate the result.
    pub fn explain(&mut self, sql: &str) -> Result<String> {
        let result = self.engine.run_sql_with(sql, self.opts)?;
        Ok(result.explain(&self.engine.catalog))
    }
}

/// Everything one query run produced: the flat rows, the column names
/// in declared order, the EXPLAIN rendering, and the execution reports
/// of the plan run and the enumeration pass.
#[derive(Clone, Debug)]
pub struct QueryOutcome {
    /// The enumerated result (ordered, filtered and truncated per the
    /// query).
    pub rows: Relation,
    /// Output column names in declared order.
    pub columns: Vec<String>,
    /// EXPLAIN-style rendering of the executed f-plan.
    pub explain: String,
    /// The physical `ORDER BY` strategy that executed.
    pub strategy: OrderStrategy,
    /// Stage/allocation report of the f-plan run.
    pub exec: ExecStats,
    /// Enumeration report: strategy, rows enumerated, ordering-side
    /// peak bytes.
    pub order: OrderRunStats,
}

impl QueryOutcome {
    /// True when the query enumerated no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of enumerated rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }
}
