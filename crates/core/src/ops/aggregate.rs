//! The aggregation operator `γ_F(U)` — §3 of the paper.
//!
//! Given a set `U` of sibling subtrees (children of one parent, or roots),
//! the operator replaces, in every context, the product of the `U`-unions
//! by a single aggregate singleton `⟨F(U):v⟩`, where `v` is computed by the
//! linear-time recursive algorithms of §3.2 ([`crate::agg`]). The f-tree
//! gets a fresh aggregate node in place of the `U` subtrees, and the
//! dependency sets are extended per Example 5.
//!
//! Evaluation reads the *source* arena (through cursors); the rewritten
//! parent entries — untouched siblings plus the new aggregate leaf — are
//! emitted into the output arena. The consumed target subtrees are simply
//! never copied.

use crate::error::{FdbError, Result};
use crate::frep::{Arena, FRep, UnionId, UnionRef};
use crate::ftree::{AggOp, FTree, NodeId};
use crate::ops::{rewrite_at, rewrite_at_inplace};
use fdb_relational::{AttrId, Value};

/// Where the operator applies: sibling subtrees under `parent`, or root
/// subtrees when `parent` is `None`.
#[derive(Clone, Debug)]
pub struct AggTarget {
    pub parent: Option<NodeId>,
    pub nodes: Vec<NodeId>,
}

impl AggTarget {
    /// Targets the subtree rooted at a single node.
    pub fn subtree(tree: &crate::ftree::FTree, node: NodeId) -> Self {
        AggTarget {
            parent: tree.node(node).parent,
            nodes: vec![node],
        }
    }
}

/// Applies `γ` with functions `funcs` (named `outputs`) over the target
/// subtrees. With `k > 1` functions the new node holds composite values
/// (§3.2.4); identical functions should be deduplicated by the caller
/// ([`crate::agg::partial_funcs`] does).
pub fn aggregate(
    rep: FRep,
    target: &AggTarget,
    funcs: Vec<AggOp>,
    outputs: Vec<AttrId>,
) -> Result<FRep> {
    aggregate_par(rep, target, funcs, outputs, 1)
}

/// [`aggregate`] on up to `threads` workers.
///
/// The operator's work is one independent evaluation per entry of the
/// parent union (per group), so the evaluations are fanned out to the
/// pool against the immutable source arena; the rewritten entries are
/// then emitted serially in order, making the result identical for
/// every thread count. A parent union with a single entry (and the
/// root-level reduction) parallelises *inside* the evaluation instead,
/// over the target unions' top entries ([`crate::agg`]).
pub fn aggregate_par(
    rep: FRep,
    target: &AggTarget,
    funcs: Vec<AggOp>,
    outputs: Vec<AttrId>,
    threads: usize,
) -> Result<FRep> {
    if funcs.is_empty() || funcs.len() != outputs.len() {
        return Err(FdbError::InvalidOperator(
            "aggregate needs parallel funcs/outputs".into(),
        ));
    }
    let (tree, arena, roots) = rep.into_arena_parts();
    let mut new_tree = tree.clone();
    let new_node = new_tree.aggregate(target.parent, &target.nodes, funcs.clone(), outputs)?;

    // Positions of the target subtrees in the (old) sibling list.
    let sibling_ids: Vec<NodeId> = match target.parent {
        Some(p) => tree.node(p).children.clone(),
        None => tree.roots().to_vec(),
    };
    let positions: Vec<usize> = target
        .nodes
        .iter()
        .map(|&t| {
            sibling_ids
                .iter()
                .position(|&c| c == t)
                .expect("validated by tree aggregate")
        })
        .collect();
    let insert_at = *positions.iter().min().expect("at least one target");

    let mut dst = Arena::default();
    let new_roots = match target.parent {
        Some(p) => rewrite_at(&tree, &arena, &roots, p, &mut dst, &mut |up, dst| {
            // Evaluate every group against the source arena (possibly in
            // parallel), then emit the rewritten entries in order. The
            // pool morselises the group indices (~4× threads chunks
            // drained work-stealing), so one giant group pins a single
            // worker while its siblings rebalance across the rest.
            let eval_group = |i: usize, eval_threads: usize| -> Result<Value> {
                let e = up.entry(i);
                let unions: Vec<UnionRef<'_>> = positions.iter().map(|&pos| e.child(pos)).collect();
                crate::agg::eval_funcs_par(&tree, &unions, &funcs, eval_threads)
            };
            let values: Vec<Value> = if threads > 1 && up.len() > 1 {
                let idx: Vec<usize> = (0..up.len()).collect();
                fdb_exec::try_parallel_map(threads, idx, |i| eval_group(i, 1))?
            } else {
                (0..up.len())
                    .map(|i| eval_group(i, threads))
                    .collect::<Result<_>>()?
            };
            let src = up.arena();
            let mut specs = Vec::with_capacity(up.len());
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for (e, value) in up.entries().zip(values) {
                kid_ids.clear();
                for (j, c) in e.child_ids().enumerate() {
                    if positions.contains(&j) {
                        if j == insert_at {
                            kid_ids.push(leaf_union(dst, new_node, value.clone()));
                        }
                        // Other target positions vanish.
                    } else {
                        kid_ids.push(dst.copy_union_from(src, c));
                    }
                }
                specs.push(dst.entry(up.node(), e.value().clone(), &kid_ids));
            }
            Ok(Some(dst.push_union(up.node(), &specs)))
        })?,
        None => {
            // Root-level aggregation reduces whole root unions to one leaf.
            if roots.iter().any(|&u| arena.union_len(u) == 0) {
                // Empty input: the aggregate of an empty relation is the
                // empty relation (no groups exist).
                return Ok(FRep::empty(new_tree));
            }
            let unions: Vec<UnionRef<'_>> = positions
                .iter()
                .map(|&pos| arena.union(roots[pos]))
                .collect();
            let value = crate::agg::eval_funcs_par(&tree, &unions, &funcs, threads)?;
            let mut out = Vec::with_capacity(roots.len() - positions.len() + 1);
            for (i, &r) in roots.iter().enumerate() {
                if positions.contains(&i) {
                    if i == insert_at {
                        out.push(leaf_union(&mut dst, new_node, value.clone()));
                    }
                } else {
                    out.push(dst.copy_union_from(&arena, r));
                }
            }
            out
        }
    };
    let out = FRep::from_arena(new_tree, dst, new_roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// A one-entry, zero-children aggregate leaf `⟨F(U):v⟩`.
fn leaf_union(dst: &mut Arena, node: NodeId, value: Value) -> UnionId {
    let spec = dst.entry(node, value, &[]);
    dst.push_union(node, &[spec])
}

/// In-place [`aggregate_par`]: evaluation reads the shared arena
/// through cursors exactly as the legacy form does (including the
/// per-group fan-out to the pool), but the rewritten parent entries —
/// untouched siblings shared by id plus the new aggregate leaf — are
/// appended to the *same* arena. The consumed target subtrees simply
/// become unreachable.
///
/// Each occurrence is processed in two phases: a read-only phase
/// evaluates every group against an immutable reborrow of the arena
/// (`try_parallel_map` needs `Sync` cursors), then an append phase
/// emits the rewritten entries serially in order — so results stay
/// identical for every thread count.
pub fn aggregate_par_inplace(
    rep: FRep,
    target: &AggTarget,
    funcs: Vec<AggOp>,
    outputs: Vec<AttrId>,
    threads: usize,
) -> Result<FRep> {
    if funcs.is_empty() || funcs.len() != outputs.len() {
        return Err(FdbError::InvalidOperator(
            "aggregate needs parallel funcs/outputs".into(),
        ));
    }
    let (tree, mut arena, roots) = rep.into_arena_parts();
    let mut new_tree = tree.clone();
    let new_node = new_tree.aggregate(target.parent, &target.nodes, funcs.clone(), outputs)?;

    let sibling_ids: Vec<NodeId> = match target.parent {
        Some(p) => tree.node(p).children.clone(),
        None => tree.roots().to_vec(),
    };
    let positions: Vec<usize> = target
        .nodes
        .iter()
        .map(|&t| {
            sibling_ids
                .iter()
                .position(|&c| c == t)
                .expect("validated by tree aggregate")
        })
        .collect();
    let insert_at = *positions.iter().min().expect("at least one target");

    let new_roots = match target.parent {
        Some(p) => rewrite_at_inplace(&tree, &mut arena, &roots, p, &mut |arena, uid| {
            let values = eval_groups(arena, uid, &tree, &positions, &funcs, threads)?;
            let rec = arena.urec(uid);
            let mut specs = Vec::with_capacity(rec.len as usize);
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for (i, value) in (rec.start..rec.start + rec.len).zip(values) {
                let e = arena.erec(i);
                kid_ids.clear();
                for j in 0..e.kids_len {
                    if positions.contains(&(j as usize)) {
                        if j as usize == insert_at {
                            kid_ids.push(leaf_union(arena, new_node, value.clone()));
                        }
                        // Other target positions vanish.
                    } else {
                        arena.note_shared(1);
                        kid_ids.push(arena.kid_at(e.kids_start + j));
                    }
                }
                specs.push(arena.entry_shared_val(e.val, &kid_ids));
            }
            Ok(Some(arena.push_union(rec.node, &specs)))
        })?,
        None => {
            if roots.iter().any(|&u| arena.union_len(u) == 0) {
                // Empty input: the aggregate of an empty relation is the
                // empty relation (no groups exist).
                return Ok(FRep::empty(new_tree));
            }
            let value = {
                let a: &Arena = &arena;
                let unions: Vec<UnionRef<'_>> =
                    positions.iter().map(|&pos| a.union(roots[pos])).collect();
                crate::agg::eval_funcs_par(&tree, &unions, &funcs, threads)?
            };
            let mut out = Vec::with_capacity(roots.len() - positions.len() + 1);
            for (i, &r) in roots.iter().enumerate() {
                if positions.contains(&i) {
                    if i == insert_at {
                        out.push(leaf_union(&mut arena, new_node, value.clone()));
                    }
                } else {
                    arena.note_shared(1);
                    out.push(r);
                }
            }
            out
        }
    };
    let out = FRep::from_arena(new_tree, arena, new_roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// The read-only phase of one in-place occurrence: evaluates every
/// group of the parent union `uid` against the shared arena.
fn eval_groups(
    arena: &Arena,
    uid: UnionId,
    tree: &FTree,
    positions: &[usize],
    funcs: &[AggOp],
    threads: usize,
) -> Result<Vec<Value>> {
    let up = arena.union(uid);
    let eval_group = |i: usize, eval_threads: usize| -> Result<Value> {
        let e = up.entry(i);
        let unions: Vec<UnionRef<'_>> = positions.iter().map(|&pos| e.child(pos)).collect();
        crate::agg::eval_funcs_par(tree, &unions, funcs, eval_threads)
    };
    if threads > 1 && up.len() > 1 {
        let idx: Vec<usize> = (0..up.len()).collect();
        fdb_exec::try_parallel_map(threads, idx, |i| eval_group(i, 1))
    } else {
        (0..up.len()).map(|i| eval_group(i, threads)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::{FTree, NodeLabel};
    use fdb_relational::{Catalog, Relation, Schema, Value};

    /// R = Orders ⋈ Pizzas ⋈ Items over T1, built directly from the flat
    /// join (which satisfies T1's join dependencies).
    fn fig1_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        // Dates as integers: Monday=1, Tuesday=2, Friday=5.
        let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
            ("Capricciosa", 1, "Mario", "base", 6),
            ("Capricciosa", 1, "Mario", "ham", 1),
            ("Capricciosa", 1, "Mario", "mushrooms", 1),
            ("Capricciosa", 5, "Mario", "base", 6),
            ("Capricciosa", 5, "Mario", "ham", 1),
            ("Capricciosa", 5, "Mario", "mushrooms", 1),
            ("Hawaii", 5, "Lucia", "base", 6),
            ("Hawaii", 5, "Lucia", "ham", 1),
            ("Hawaii", 5, "Lucia", "pineapple", 2),
            ("Hawaii", 5, "Pietro", "base", 6),
            ("Hawaii", 5, "Pietro", "ham", 1),
            ("Hawaii", 5, "Pietro", "pineapple", 2),
            ("Margherita", 2, "Mario", "base", 6),
        ];
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, customer, item, price]),
            rows.into_iter().map(|(p, d, cu, i, pr)| {
                vec![
                    Value::str(p),
                    Value::Int(d),
                    Value::str(cu),
                    Value::str(i),
                    Value::Int(pr),
                ]
            }),
        );
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        (c, rep)
    }

    #[test]
    fn fig1_factorisation_size() {
        let (_, rep) = fig1_rep();
        // Fig. 1's factorisation: 3 pizzas + 4 dates + 4 customers + 7
        // items + 7 prices... counted as singletons of the example: the
        // factorisation has 25 singletons.
        assert_eq!(rep.tuple_count(), 13);
        assert!(rep.singleton_count() < 13 * 5);
    }

    #[test]
    fn gamma_sum_price_gives_t2() {
        // Example 1, query S: replace each item-price subtree by
        // sum(price): Capricciosa 8, Hawaii 9, Margherita 6.
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let item_node = rep.ftree().node_of_attr(c.lookup("item").unwrap()).unwrap();
        let out_attr = c.intern("sumprice");
        let target = AggTarget::subtree(rep.ftree(), item_node);
        let out = aggregate(rep, &target, vec![AggOp::Sum(price)], vec![out_attr]).unwrap();
        // For each pizza, the aggregate leaf holds the pizza's price sum.
        let root = out.root(0);
        let sums: Vec<(String, Value)> = root
            .entries()
            .map(|e| {
                // children: [date-subtree, sum-leaf]
                (
                    e.value().as_str().unwrap().to_string(),
                    e.child(1).entry(0).value().clone(),
                )
            })
            .collect();
        assert_eq!(
            sums,
            vec![
                ("Capricciosa".to_string(), Value::Int(8)),
                ("Hawaii".to_string(), Value::Int(9)),
                ("Margherita".to_string(), Value::Int(6)),
            ]
        );
    }

    #[test]
    fn full_query_p_revenue_per_customer() {
        // Example 1, query P = ̟customer;sum(price)(R): partial sum per
        // pizza, swap customer up, count dates, final sum — the f-plan of
        // Example 11. Expected: Lucia 9, Mario 22, Pietro 9.
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let customer = c.lookup("customer").unwrap();
        let item_node = rep.ftree().node_of_attr(c.lookup("item").unwrap()).unwrap();
        let sum_out = c.intern("sumprice");

        // γ_sum(price) over the item subtree (T1 → T2).
        let target = AggTarget::subtree(rep.ftree(), item_node);
        let rep = aggregate(rep, &target, vec![AggOp::Sum(price)], vec![sum_out]).unwrap();

        // Swap customer above date, then above pizza (T2 → T3).
        let n_cust = rep.ftree().node_of_attr(customer).unwrap();
        let n_date = rep.ftree().node(n_cust).parent.unwrap();
        let rep = crate::ops::swap(rep, n_date, n_cust).unwrap();
        let n_pizza = rep.ftree().node(n_cust).parent.unwrap();
        let rep = crate::ops::swap(rep, n_pizza, n_cust).unwrap();
        rep.check_invariants().unwrap();

        // γ_count(date) (T3 → T4).
        let n_date = rep.ftree().node_of_attr(c.lookup("date").unwrap()).unwrap();
        let cnt_out = c.intern("countdate");
        let target = AggTarget::subtree(rep.ftree(), n_date);
        let rep = aggregate(rep, &target, vec![AggOp::Count], vec![cnt_out]).unwrap();

        // Final γ_sum over everything under customer.
        let n_cust = rep.ftree().node_of_attr(customer).unwrap();
        let below: Vec<NodeId> = rep.ftree().node(n_cust).children.clone();
        let rev_out = c.intern("revenue");
        let rep = aggregate(
            rep,
            &AggTarget {
                parent: Some(n_cust),
                nodes: below,
            },
            vec![AggOp::Sum(price)],
            vec![rev_out],
        )
        .unwrap();

        let flat = rep.flatten();
        let rows: Vec<(String, i64)> = flat
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9),
            ]
        );
    }

    #[test]
    fn root_level_aggregate_reduces_to_scalar() {
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let out_attr = c.intern("total");
        let roots = rep.ftree().roots().to_vec();
        let out = aggregate(
            rep,
            &AggTarget {
                parent: None,
                nodes: roots,
            },
            vec![AggOp::Sum(price)],
            vec![out_attr],
        )
        .unwrap();
        assert_eq!(out.tuple_count(), 1);
        // Full sum over the join: 8+8+9+9+6 = 40.
        assert_eq!(*out.root(0).entry(0).value(), Value::Int(40));
    }

    #[test]
    fn aggregate_empty_relation_is_empty() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let out_attr = c.intern("n");
        let rel = Relation::empty(Schema::new(vec![a]));
        let rep = FRep::from_relation(&rel, FTree::path(&[a])).unwrap();
        let roots = rep.ftree().roots().to_vec();
        let out = aggregate(
            rep,
            &AggTarget {
                parent: None,
                nodes: roots,
            },
            vec![AggOp::Count],
            vec![out_attr],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn composite_avg_as_sum_count() {
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let item_node = rep.ftree().node_of_attr(c.lookup("item").unwrap()).unwrap();
        let s_out = c.intern("s");
        let n_out = c.intern("n");
        let target = AggTarget::subtree(rep.ftree(), item_node);
        let out = aggregate(
            rep,
            &target,
            vec![AggOp::Sum(price), AggOp::Count],
            vec![s_out, n_out],
        )
        .unwrap();
        // Capricciosa: (8, 3).
        let leaf = out.root(0).entry(0).child(1).entry(0).value().clone();
        assert_eq!(leaf, Value::tup(vec![Value::Int(8), Value::Int(3)]));
    }

    #[test]
    fn mismatched_funcs_outputs_rejected() {
        let (c, rep) = fig1_rep();
        let item_node = rep.ftree().node_of_attr(c.lookup("item").unwrap()).unwrap();
        let target = AggTarget::subtree(rep.ftree(), item_node);
        let err = aggregate(rep.clone(), &target, vec![AggOp::Count], vec![]);
        assert!(matches!(err, Err(FdbError::InvalidOperator(_))));
        let err = aggregate_par_inplace(rep, &target, vec![AggOp::Count], vec![], 1);
        assert!(matches!(err, Err(FdbError::InvalidOperator(_))));
    }

    #[test]
    fn inplace_aggregate_matches_legacy() {
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let item_node = rep.ftree().node_of_attr(c.lookup("item").unwrap()).unwrap();
        let out_attr = c.intern("sumprice");
        let target = AggTarget::subtree(rep.ftree(), item_node);
        let legacy = aggregate(
            rep.clone(),
            &target,
            vec![AggOp::Sum(price), AggOp::Count],
            vec![out_attr, c.intern("n")],
        )
        .unwrap();
        for threads in [1, 2, 4] {
            let inplace = aggregate_par_inplace(
                rep.clone(),
                &target,
                vec![AggOp::Sum(price), AggOp::Count],
                vec![out_attr, c.lookup("n").unwrap()],
                threads,
            )
            .unwrap();
            inplace.check_invariants().unwrap();
            assert!(inplace.same_data(&legacy), "threads={threads}");
        }
    }

    #[test]
    fn inplace_root_aggregate_matches_legacy() {
        let (mut c, rep) = fig1_rep();
        let price = c.lookup("price").unwrap();
        let out_attr = c.intern("total");
        let roots = rep.ftree().roots().to_vec();
        let target = AggTarget {
            parent: None,
            nodes: roots,
        };
        let legacy = aggregate(
            rep.clone(),
            &target,
            vec![AggOp::Sum(price)],
            vec![out_attr],
        )
        .unwrap();
        let inplace =
            aggregate_par_inplace(rep, &target, vec![AggOp::Sum(price)], vec![out_attr], 2)
                .unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.same_data(&legacy));
        assert_eq!(*inplace.root(0).entry(0).value(), Value::Int(40));
    }

    #[test]
    fn inplace_aggregate_of_empty_relation_is_empty() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let out_attr = c.intern("n");
        let rel = Relation::empty(Schema::new(vec![a]));
        let rep = FRep::from_relation(&rel, FTree::path(&[a])).unwrap();
        let roots = rep.ftree().roots().to_vec();
        let out = aggregate_par_inplace(
            rep,
            &AggTarget {
                parent: None,
                nodes: roots,
            },
            vec![AggOp::Count],
            vec![out_attr],
            1,
        )
        .unwrap();
        assert!(out.is_empty());
    }
}
