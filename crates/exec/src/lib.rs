//! # fdb-exec — deterministic data parallelism for f-plan execution
//!
//! A dependency-free execution pool built on [`std::thread::scope`]. The
//! engines use it to partition work over the children of a top-level
//! union (the natural unit of work in a factorised database) and over
//! row ranges of flat relations.
//!
//! Design rules, chosen so that parallel runs are **differentially
//! testable** against serial runs:
//!
//! * `threads <= 1` (or fewer than two items) takes the exact serial
//!   code path — bit-identical to a build without this crate;
//! * results are collected **in input order**, never in completion
//!   order, so a parallel map is a pure `map` regardless of scheduling;
//! * fallible maps report the error of the **first failing item in
//!   input order**, not whichever worker lost the race;
//! * the thread count only decides which worker computes which slice —
//!   it never changes how partial results are combined. Callers that
//!   fold partials must pick a chunking independent of `threads` if
//!   their combine step is order-sensitive (see `fdb_core::agg`).
//!
//! Worker panics are propagated to the caller (the pool does not
//! swallow them), so `debug_assert!`s inside parallel sections still
//! fail tests.

use std::num::NonZeroUsize;

/// Hard ceiling on spawned workers per parallel call: far above any
/// useful oversubscription, far below OS thread limits, so an absurd
/// `--threads` value degrades instead of aborting the process.
pub const MAX_WORKERS: usize = 256;

/// Resolves a requested thread count: `0` means "use the machine"
/// ([`std::thread::available_parallelism`]), anything else is taken
/// literally up to [`MAX_WORKERS`]. Never returns 0.
pub fn effective_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n.min(MAX_WORKERS),
    }
}

/// Splits `items` into at most `parts` contiguous chunks of
/// near-equal length, preserving order. `parts` is clamped to at
/// least 1; fewer chunks are returned when there are fewer items.
pub fn split_chunks<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        out.push(c);
    }
    out
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results **in input order**.
///
/// With `threads <= 1` or fewer than two items this is exactly
/// `items.into_iter().map(f).collect()` on the calling thread.
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let chunks = split_chunks(items, threads.min(MAX_WORKERS));
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|chunk| s.spawn(move || chunk.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        let mut out = Vec::new();
        for h in handles {
            out.extend(h.join().expect("fdb-exec worker panicked"));
        }
        out
    })
}

/// Fallible [`parallel_map`]: every item is attempted, and on failure
/// the error of the first failing item **in input order** is returned
/// (deterministic regardless of scheduling).
pub fn try_parallel_map<T, R, E, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let results = parallel_map(threads, items, f);
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn split_chunks_covers_all_items_in_order() {
        for parts in 1..8 {
            for n in 0..20 {
                let items: Vec<usize> = (0..n).collect();
                let chunks = split_chunks(items.clone(), parts);
                assert!(chunks.len() <= parts);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, items, "parts={parts} n={n}");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        for threads in [1, 2, 3, 4, 7] {
            let out = parallel_map(threads, (0..100).collect::<Vec<i64>>(), |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn parallel_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map(4, (0..57).collect::<Vec<usize>>(), |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn try_parallel_map_reports_first_error_in_input_order() {
        for threads in [1, 2, 4] {
            let r: Result<Vec<i64>, String> =
                try_parallel_map(threads, (0..40).collect::<Vec<i64>>(), |x| {
                    if x == 7 || x == 31 {
                        Err(format!("bad {x}"))
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(r, Err("bad 7".to_string()), "threads={threads}");
        }
    }

    #[test]
    fn absurd_thread_counts_are_clamped() {
        assert_eq!(effective_threads(1_000_000), MAX_WORKERS);
        let out = parallel_map(1_000_000, (0..500).collect::<Vec<i64>>(), |x| x + 1);
        assert_eq!(out, (1..=500).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out: Vec<i32> = parallel_map(4, Vec::new(), |x: i32| x);
        assert!(out.is_empty());
        let out = parallel_map(4, vec![9], |x: i32| x + 1);
        assert_eq!(out, vec![10]);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(2, (0..10).collect::<Vec<i32>>(), |x| {
            assert!(x != 5, "boom");
            x
        });
    }
}
