//! `fdb-server` — a concurrent TCP query-serving layer over the
//! factorised-database engine.
//!
//! The paper's premise is build-once-query-many: a factorised
//! representation is compiled once and then supports many cheap
//! aggregation and ordering passes. This crate turns that premise into
//! a service: one [`fdb::Db`] holds the registered inputs (immutable
//! `FRep` arenas and relations behind `Arc`), a small accept loop feeds
//! a fixed worker pool, and every worker answers queries from its own
//! [`fdb::Session`] snapshot — reads share the arenas, no locks are
//! held during execution, and results are byte-identical to the
//! single-threaded library run.
//!
//! Architecture:
//!
//! * **Accept loop** (one thread): non-blocking `accept` polled against
//!   the shutdown flag; accepted connections go into a `Mutex<VecDeque>`
//!   + `Condvar` queue.
//! * **Worker pool** (`workers` threads, default [`DEFAULT_WORKERS`]):
//!   each pops a connection and serves its requests to completion. A
//!   worker keeps one [`fdb::Session`] and re-snapshots when the
//!   database [epoch](fdb::Db::epoch) moves (after a `LOAD` or a write:
//!   `INSERT`/`DELETE` swap in a copy-on-write snapshot and bump the
//!   epoch, so readers never block on writers and cached responses from
//!   earlier epochs are never served again).
//! * **Plan cache** ([`cache::PlanCache`]): rendered responses keyed by
//!   normalised query text + epoch, bounded, FIFO-evicted.
//! * **Deadlines**: every request runs with
//!   [`RunOptions::deadline`](fdb::core::RunOptions), so a pathological
//!   enumeration returns `ERR deadline exceeded: …` instead of wedging
//!   its worker; reads poll a socket timeout so idle connections cannot
//!   block shutdown.
//!
//! The wire protocol is documented in [`proto`]; DESIGN.md §8 covers
//! the sharing discipline and cache/timeout semantics.

pub mod cache;
pub mod proto;

use cache::PlanCache;
use fdb::core::RunOptions;
use fdb::Db;
use proto::{err_line, ok_header, Request};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default worker-pool size: the acceptance bar is 16 concurrent
/// connections, and a worker owns its connection until the client
/// quits, so the pool must not be smaller than the target concurrency.
pub const DEFAULT_WORKERS: usize = 16;

/// Default per-request run budget.
pub const DEFAULT_DEADLINE: Duration = Duration::from_secs(10);

/// Default plan-cache capacity (entries).
pub const DEFAULT_CACHE_CAPACITY: usize = 64;

/// How often blocked socket reads and idle workers re-check the
/// shutdown flag; bounds shutdown latency.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Server configuration. `#[non_exhaustive]` + builders, like
/// [`RunOptions`]: future knobs must not be breaking changes.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct ServerOptions {
    /// Worker threads (connections served concurrently).
    pub workers: usize,
    /// Per-request run budget; `None` disables deadlines.
    pub deadline: Option<Duration>,
    /// Plan-cache capacity in entries; `0` disables the cache.
    pub cache_capacity: usize,
    /// Base run options applied to every request (threads, executor,
    /// ordering mode…). The deadline field above is layered on top.
    pub run: RunOptions,
}

impl Default for ServerOptions {
    fn default() -> Self {
        ServerOptions {
            workers: DEFAULT_WORKERS,
            deadline: Some(DEFAULT_DEADLINE),
            cache_capacity: DEFAULT_CACHE_CAPACITY,
            run: RunOptions::default(),
        }
    }
}

impl ServerOptions {
    /// Alias for [`ServerOptions::default`], reads better in chains.
    pub fn new() -> Self {
        ServerOptions::default()
    }

    /// Sets the worker-pool size. `0` means auto ([`auto_workers`]):
    /// twice the machine's parallelism, capped at [`DEFAULT_WORKERS`] —
    /// workers mostly block on sockets, so modest oversubscription is
    /// the right trade, but the floor tracks the hardware instead of
    /// pinning 16 threads onto a 2-core runner.
    pub fn workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets (or with `None` disables) the per-request deadline.
    pub fn deadline(mut self, deadline: Option<Duration>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Sets the plan-cache capacity; `0` disables caching.
    pub fn cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the base run options applied to every request.
    pub fn run(mut self, run: RunOptions) -> Self {
        self.run = run;
        self
    }

    /// The effective per-request options: base run options plus the
    /// server deadline.
    fn request_options(&self) -> RunOptions {
        self.run.deadline(self.deadline)
    }
}

/// Live server counters, surfaced by the `STATS` verb.
#[derive(Debug, Default)]
struct Counters {
    connections: AtomicU64,
    queries: AtomicU64,
    errors: AtomicU64,
    /// Applied `INSERT`/`DELETE` statements (each bumps the epoch when
    /// rows actually changed).
    writes: AtomicU64,
    /// `ROW` point lookups (counted on top of the per-strategy counter
    /// of whatever physical strategy answered the seek).
    row_lookups: AtomicU64,
    /// Executed queries by physical ordering strategy (cache hits are
    /// not re-counted — the cached response never re-executes).
    strategy_unordered: AtomicU64,
    strategy_stream: AtomicU64,
    strategy_direct: AtomicU64,
    strategy_heap: AtomicU64,
    strategy_sort: AtomicU64,
}

impl Counters {
    fn count_strategy(&self, strategy: fdb::core::engine::OrderStrategy) {
        use fdb::core::engine::OrderStrategy;
        let counter = match strategy {
            OrderStrategy::Unordered => &self.strategy_unordered,
            OrderStrategy::StreamInTree => &self.strategy_stream,
            OrderStrategy::DirectAccess => &self.strategy_direct,
            OrderStrategy::HeapTopK { .. } => &self.strategy_heap,
            OrderStrategy::CollectSortCut => &self.strategy_sort,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }
}

/// State shared by the accept loop and every worker.
#[derive(Debug)]
struct Shared {
    db: Db,
    opts: ServerOptions,
    cache: PlanCache,
    counters: Counters,
    queue: Mutex<VecDeque<TcpStream>>,
    available: Condvar,
    shutdown: AtomicBool,
}

/// A running server: its bound address plus the thread handles needed
/// for a clean [`shutdown`](ServerHandle::shutdown).
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The address the server is listening on (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Number of worker threads actually spawned (after `0` = auto
    /// resolution via [`auto_workers`]). Drops to 0 once
    /// [`shutdown`](ServerHandle::shutdown) has joined the pool.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Signals shutdown and joins every thread. In-flight requests
    /// finish; idle connections are dropped within one poll interval
    /// (~100 ms). Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.available.notify_all();
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Resolved worker count for `workers == 0` (auto): twice the
/// machine's parallelism — workers mostly block on sockets, so modest
/// oversubscription keeps the cores busy — capped at
/// [`DEFAULT_WORKERS`] and never below the core count itself on bigger
/// machines. Unlike the old `effective_threads(0).max(16)` rule, a
/// 2-core CI runner gets 4 workers, not a 16-thread pool.
pub fn auto_workers() -> usize {
    let cores = fdb_exec::effective_threads(0);
    cores.max((2 * cores).min(DEFAULT_WORKERS))
}

/// Binds `addr` and spawns the accept loop plus the worker pool,
/// serving queries against `db`. Returns once listening; use
/// [`ServerHandle::addr`] to learn the bound port when `addr` ends in
/// `:0`.
pub fn spawn(
    db: Db,
    addr: impl ToSocketAddrs,
    opts: ServerOptions,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;

    let mut opts = opts;
    if opts.workers == 0 {
        opts.workers = auto_workers();
    }

    let shared = Arc::new(Shared {
        cache: PlanCache::new(opts.cache_capacity),
        db,
        opts: opts.clone(),
        counters: Counters::default(),
        queue: Mutex::new(VecDeque::new()),
        available: Condvar::new(),
        shutdown: AtomicBool::new(false),
    });

    let accept = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("fdb-accept".into())
            .spawn(move || accept_loop(listener, &shared))?
    };

    let workers = (0..shared.opts.workers)
        .map(|i| {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("fdb-worker-{i}"))
                .spawn(move || worker_loop(&shared))
        })
        .collect::<std::io::Result<Vec<_>>>()?;

    Ok(ServerHandle {
        addr,
        shared,
        accept: Some(accept),
        workers,
    })
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                shared.counters.connections.fetch_add(1, Ordering::Relaxed);
                let mut queue = shared.queue.lock().expect("queue lock poisoned");
                queue.push_back(stream);
                drop(queue);
                shared.available.notify_one();
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                // Transient accept error (e.g. aborted handshake);
                // keep serving unless shutting down.
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
            }
        }
    }
}

fn worker_loop(shared: &Shared) {
    // The worker's snapshot, cut lazily and refreshed on epoch change.
    let mut session: Option<fdb::Session> = None;
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("queue lock poisoned");
            loop {
                if let Some(s) = queue.pop_front() {
                    break Some(s);
                }
                if shared.shutdown.load(Ordering::Acquire) {
                    break None;
                }
                let (q, _) = shared
                    .available
                    .wait_timeout(queue, POLL_INTERVAL)
                    .expect("queue lock poisoned");
                queue = q;
            }
        };
        let Some(stream) = stream else { return };
        serve_connection(stream, shared, &mut session);
    }
}

/// Serves one connection until EOF, `QUIT`, an I/O error, or shutdown.
fn serve_connection(stream: TcpStream, shared: &Shared, session: &mut Option<fdb::Session>) {
    // A bounded read timeout keeps idle connections from pinning the
    // worker across shutdown.
    let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
    let _ = stream.set_nodelay(true);
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = BufWriter::new(write_half);
    let mut line = String::new();
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {}
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::Acquire) {
                    return;
                }
                continue;
            }
            Err(_) => return,
        }
        let quit = matches!(proto::parse_request(&line), Ok(Request::Quit));
        let response = handle_line(&line, shared, session);
        if write_response(&mut writer, &response).is_err() {
            return;
        }
        if quit || shared.shutdown.load(Ordering::Acquire) {
            return;
        }
    }
}

/// One fully-rendered response: status line plus payload lines.
type Response = Vec<String>;

fn write_response(w: &mut impl Write, response: &Response) -> std::io::Result<()> {
    for line in response {
        w.write_all(line.as_bytes())?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

fn ok_response(payload: Vec<String>) -> Response {
    let mut out = Vec::with_capacity(1 + payload.len());
    out.push(ok_header(payload.len()));
    out.extend(payload);
    out
}

fn handle_line(line: &str, shared: &Shared, session: &mut Option<fdb::Session>) -> Response {
    let request = match proto::parse_request(line) {
        Ok(r) => r,
        Err(e) => {
            shared.counters.errors.fetch_add(1, Ordering::Relaxed);
            return vec![err_line(&e)];
        }
    };
    let response = handle_request(&request, shared, session);
    if response.first().is_some_and(|l| l.starts_with("ERR")) {
        shared.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    response
}

/// Cuts or refreshes the worker's snapshot so it reflects the current
/// database epoch.
fn fresh_session<'a>(
    shared: &Shared,
    session: &'a mut Option<fdb::Session>,
) -> &'a mut fdb::Session {
    let current = shared.db.epoch();
    if session.as_ref().map(fdb::Session::epoch) != Some(current) {
        *session = Some(
            shared
                .db
                .session()
                .with_options(shared.opts.request_options()),
        );
    }
    session.as_mut().expect("session just cut")
}

/// The shared `QUERY`/`ROW` execution path: serve from the epoch-keyed
/// cache when possible, else run on a fresh snapshot and cache the
/// rendered response under the snapshot's epoch.
fn run_cached_query(key: String, shared: &Shared, session: &mut Option<fdb::Session>) -> Response {
    let epoch = shared.db.epoch();
    if let Some(lines) = shared.cache.get(epoch, &key) {
        return ok_response(lines.as_ref().clone());
    }
    let s = fresh_session(shared, session);
    match s.query(&key) {
        Ok(outcome) => {
            shared.counters.count_strategy(outcome.strategy);
            let lines = proto::render_outcome(&outcome);
            shared.cache.put(s.epoch(), key, Arc::new(lines.clone()));
            ok_response(lines)
        }
        Err(e) => vec![err_line(&e.to_string())],
    }
}

fn handle_request(
    request: &Request,
    shared: &Shared,
    session: &mut Option<fdb::Session>,
) -> Response {
    match request {
        Request::Ping | Request::Quit => ok_response(Vec::new()),
        Request::Query(sql) => {
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            run_cached_query(proto::normalise_sql(sql), shared, session)
        }
        Request::Row { index, sql } => {
            // The point lookup is QUERY with `LIMIT 1 OFFSET i` layered
            // on: the planner's direct-access costing then realises the
            // order and seeks straight to the row via the count
            // annotations — O(depth·log fanout), no prefix scan. The
            // target query must not carry LIMIT/OFFSET of its own (the
            // appended clause would clash and the parser rejects the
            // duplicate, so the restriction is enforced for free).
            shared.counters.queries.fetch_add(1, Ordering::Relaxed);
            shared.counters.row_lookups.fetch_add(1, Ordering::Relaxed);
            let key = format!("{} LIMIT 1 OFFSET {index}", proto::normalise_sql(sql));
            run_cached_query(key, shared, session)
        }
        Request::Insert(sql) | Request::Delete(sql) => {
            shared.counters.writes.fetch_add(1, Ordering::Relaxed);
            match shared.db.execute(sql) {
                Ok(report) => ok_response(vec![
                    proto::join_fields(["inserted", report.inserted.to_string().as_str()]),
                    proto::join_fields(["deleted", report.deleted.to_string().as_str()]),
                ]),
                Err(e) => vec![err_line(&e.to_string())],
            }
        }
        Request::Explain(sql) => {
            let s = fresh_session(shared, session);
            match s.explain(&proto::normalise_sql(sql)) {
                Ok(text) => ok_response(proto::render_text(&text)),
                Err(e) => vec![err_line(&e.to_string())],
            }
        }
        Request::Load { name, path } => {
            let file = match std::fs::File::open(path) {
                Ok(f) => f,
                Err(e) => return vec![err_line(&format!("cannot open `{path}`: {e}"))],
            };
            match shared.db.load_view(name.clone(), BufReader::new(file)) {
                Ok(()) => ok_response(Vec::new()),
                Err(e) => vec![err_line(&e.to_string())],
            }
        }
        Request::Stats => ok_response(stats_payload(shared)),
    }
}

fn stats_payload(shared: &Shared) -> Vec<String> {
    let (hits, misses, entries) = shared.cache.stats();
    let (relations, views) = shared.db.input_names();
    let pairs: Vec<(&str, String)> = vec![
        ("epoch", shared.db.epoch().to_string()),
        ("workers", shared.opts.workers.to_string()),
        (
            "connections",
            shared
                .counters
                .connections
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        (
            "queries",
            shared.counters.queries.load(Ordering::Relaxed).to_string(),
        ),
        (
            "errors",
            shared.counters.errors.load(Ordering::Relaxed).to_string(),
        ),
        (
            "writes",
            shared.counters.writes.load(Ordering::Relaxed).to_string(),
        ),
        (
            "row_lookups",
            shared
                .counters
                .row_lookups
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        ("cache_hits", hits.to_string()),
        ("cache_misses", misses.to_string()),
        ("cache_entries", entries.to_string()),
        (
            "strategy_unordered",
            shared
                .counters
                .strategy_unordered
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        (
            "strategy_stream",
            shared
                .counters
                .strategy_stream
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        (
            "strategy_direct",
            shared
                .counters
                .strategy_direct
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        (
            "strategy_heap",
            shared
                .counters
                .strategy_heap
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        (
            "strategy_sort",
            shared
                .counters
                .strategy_sort
                .load(Ordering::Relaxed)
                .to_string(),
        ),
        ("relations", relations.join(",")),
        ("views", views.join(",")),
    ];
    pairs
        .into_iter()
        .map(|(k, v)| proto::join_fields([proto::escape_field(k), proto::escape_field(&v)]))
        .collect()
}

/// A minimal blocking client for tests and the load-driving bench:
/// one connection, lock-step request/response.
#[derive(Debug)]
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connects to a running server.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let write_half = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer: BufWriter::new(write_half),
        })
    }

    /// Sends one request line and reads the full framed response.
    /// `Ok(payload)` for `OK <n>` responses, `Err(message)` for `ERR`;
    /// transport failures surface as `std::io::Error`.
    pub fn request(&mut self, line: &str) -> std::io::Result<Result<Vec<String>, String>> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.writer.flush()?;
        let mut status = String::new();
        if self.reader.read_line(&mut status)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed connection before responding",
            ));
        }
        let status = status.trim_end();
        if let Some(msg) = status.strip_prefix("ERR ") {
            let msg = proto::unescape_field(msg).unwrap_or_else(|_| msg.to_string());
            return Ok(Err(msg));
        }
        let Some(n) = status
            .strip_prefix("OK ")
            .or(if status == "OK" { Some("0") } else { None })
            .and_then(|n| n.trim().parse::<usize>().ok())
        else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed status line `{status}`"),
            ));
        };
        let mut payload = Vec::with_capacity(n);
        for _ in 0..n {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "server closed connection mid-payload",
                ));
            }
            while line.ends_with('\n') || line.ends_with('\r') {
                line.pop();
            }
            payload.push(line);
        }
        Ok(Ok(payload))
    }

    /// `QUERY <sql>`, returning the raw payload lines (header + rows).
    pub fn query(&mut self, sql: &str) -> std::io::Result<Result<Vec<String>, String>> {
        self.request(&format!("QUERY {sql}"))
    }

    /// `QUIT`, then drops the connection.
    pub fn quit(mut self) -> std::io::Result<()> {
        let _ = self.request("QUIT")?;
        Ok(())
    }
}
