//! Operator micro-benchmarks: the primitives whose linear-time behaviour
//! the paper's complexity claims rest on.
//!
//! * recursive aggregation (`count`/`sum`) over a factorised view — §3.2
//!   says linear in the factorisation size;
//! * the swap operator — partial restructuring cost;
//! * constant-delay enumeration — per-tuple cost independent of data size;
//! * constant selection with pruning.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use fdb_core::enumerate::{EnumSpec, TupleIter};
use fdb_core::ftree::AggOp;
use fdb_core::ops;
use fdb_relational::Catalog;
use fdb_relational::{CmpOp, Value};
use fdb_workload::orders::{generate, OrdersConfig};

fn micro(c: &mut Criterion) {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 50,
            seed: 0xFDB,
        },
    );
    let a = ds.attrs;
    let rep = ds.factorised_view();
    let singletons = rep.singleton_count();

    let mut group = c.benchmark_group("micro");
    group.sample_size(20);

    group.bench_function(format!("count_over_{singletons}_singletons"), |b| {
        b.iter(|| {
            let unions: Vec<fdb_core::UnionRef<'_>> = rep.root_unions().collect();
            fdb_core::agg::eval_op(rep.ftree(), &unions, &AggOp::Count).unwrap()
        })
    });

    group.bench_function(format!("sum_over_{singletons}_singletons"), |b| {
        b.iter(|| {
            let unions: Vec<fdb_core::UnionRef<'_>> = rep.root_unions().collect();
            fdb_core::agg::eval_op(rep.ftree(), &unions, &AggOp::Sum(a.price)).unwrap()
        })
    });

    // Parallel counterparts of the recursive evaluators: the entries of
    // the top union are fanned out to the fdb-exec pool.
    for threads in [2usize, 4] {
        group.bench_function(
            format!("count_over_{singletons}_singletons_t{threads}"),
            |b| {
                b.iter(|| {
                    let unions: Vec<fdb_core::UnionRef<'_>> = rep.root_unions().collect();
                    fdb_core::agg::eval_op_par(rep.ftree(), &unions, &AggOp::Count, threads)
                        .unwrap()
                })
            },
        );
        group.bench_function(
            format!("sum_over_{singletons}_singletons_t{threads}"),
            |b| {
                b.iter(|| {
                    let unions: Vec<fdb_core::UnionRef<'_>> = rep.root_unions().collect();
                    fdb_core::agg::eval_op_par(rep.ftree(), &unions, &AggOp::Sum(a.price), threads)
                        .unwrap()
                })
            },
        );
    }

    group.bench_function("swap_package_date", |b| {
        let root = rep.ftree().roots()[0];
        let date_node = rep.ftree().node(root).children[0];
        b.iter_batched(
            || rep.clone(),
            |r| ops::swap(r, root, date_node).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("enumerate_all_tuples", |b| {
        b.iter(|| {
            let spec = EnumSpec::all_preorder(rep.ftree());
            let mut it = TupleIter::new(&rep, &spec).unwrap();
            let mut n = 0usize;
            while it.next_row().is_some() {
                n += 1;
            }
            n
        })
    });

    group.bench_function("enumerate_first_100", |b| {
        b.iter(|| {
            let spec = EnumSpec::all_preorder(rep.ftree());
            let mut it = TupleIter::new(&rep, &spec).unwrap();
            let mut n = 0usize;
            while n < 100 && it.next_row().is_some() {
                n += 1;
            }
            n
        })
    });

    group.bench_function("select_price_le_10", |b| {
        b.iter_batched(
            || rep.clone(),
            |r| ops::select_const(r, a.price, CmpOp::Le, &Value::Int(10)).unwrap(),
            BatchSize::LargeInput,
        )
    });

    group.bench_function("aggregate_items_subtree", |b| {
        let item_node = rep.ftree().node_of_attr(a.item).unwrap();
        let mut freshen = catalog.clone();
        let out = freshen.fresh("bench_sum");
        b.iter_batched(
            || rep.clone(),
            |r| {
                let target = ops::AggTarget::subtree(r.ftree(), item_node);
                ops::aggregate(r, &target, vec![AggOp::Sum(a.price)], vec![out]).unwrap()
            },
            BatchSize::LargeInput,
        )
    });

    // The aggregation operator with one pool task per group (per parent
    // union entry).
    for threads in [2usize, 4] {
        group.bench_function(format!("aggregate_items_subtree_t{threads}"), |b| {
            let item_node = rep.ftree().node_of_attr(a.item).unwrap();
            let mut freshen = catalog.clone();
            let out = freshen.fresh("bench_sum_par");
            b.iter_batched(
                || rep.clone(),
                |r| {
                    let target = ops::AggTarget::subtree(r.ftree(), item_node);
                    ops::aggregate_par(r, &target, vec![AggOp::Sum(a.price)], vec![out], threads)
                        .unwrap()
                },
                BatchSize::LargeInput,
            )
        });
    }

    group.finish();
}

criterion_group!(micro_benches, micro);
criterion_main!(micro_benches);
