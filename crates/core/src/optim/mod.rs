//! Query optimisation for f-plans (§5).
//!
//! * [`cost`] — the paper's cost metric: tight factorisation size bounds
//!   from fractional edge covers of root paths;
//! * [`lp`] — the small simplex solver behind the bounds;
//! * [`mod@greedy`] — the polynomial-time heuristic of §5.2;
//! * [`mod@exhaustive`] — Dijkstra over the space of f-trees with permissible
//!   operators as edges (Prop. 3), exact but exponential;
//! * [`ordering`] — the cost-based choice among the physical `ORDER BY`
//!   strategies (restructure+stream vs collect-sort-cut vs heap top-k).

pub mod cost;
pub mod exhaustive;
pub mod greedy;
pub mod lp;
pub mod ordering;

pub use cost::{tree_cost, Stats};
pub use exhaustive::{exhaustive, ExhaustiveConfig};
pub use greedy::{greedy, QuerySpec};
pub use ordering::{choose_order_strategy, OrderChoice, OrderCostInputs};
