//! Offline stand-in for the crates.io `proptest` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal property-testing harness exposing the subset of the `proptest`
//! 1.x API its tests use: the [`proptest!`] macro (with
//! `#![proptest_config(..)]`), [`prop_assert!`]/[`prop_assert_eq!`],
//! integer-range / tuple / string-pattern strategies,
//! `prop::collection::vec`, `prop::sample::select`, `prop::option::of`,
//! and `any::<T>()`.
//!
//! Differences from upstream, by design:
//! * **no shrinking** — a failing case reports its values and the seed
//!   that reproduces it, but is not minimised;
//! * **deterministic seeding** — cases derive from a hash of the test
//!   name, so CI failures always reproduce locally;
//! * string "regex" strategies support only the `.{lo,hi}` shape the
//!   workspace uses (any other pattern yields short printable junk, which
//!   still satisfies "arbitrary input" robustness tests).

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// `use proptest::prelude::*;` — everything the test files expect.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRunner};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, …).
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

/// Defines property tests. Supports an optional leading
/// `#![proptest_config(expr)]` followed by `#[test] fn name(pat in
/// strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:pat in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                let mut runner =
                    $crate::test_runner::TestRunner::new(config, stringify!($name));
                runner.run_cases(|__rng| {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&($strat), __rng);
                    )+
                    let mut __case = move ||
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError>
                    {
                        $body
                        ::core::result::Result::Ok(())
                    };
                    __case()
                });
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the case
/// (rather than panicking) so the runner can report the seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `(left == right)`\n  left: `{:?}`\n right: `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)+);
    }};
}

/// Inequality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `(left != right)`\n  both: `{:?}`",
            left
        );
    }};
}
