//! Logical join-aggregate tasks and the two baseline planners.
//!
//! [`naive_plan`] mirrors what SQLite and PostgreSQL did in the paper's
//! Experiment 2: join everything, then group and aggregate ("lazy"
//! aggregation). [`eager_plan`] automates the handcrafted "man" plans of
//! Figure 6 using Yan–Larson eager aggregation \[31\]: every base relation is
//! pre-aggregated down to its join and group-by attributes (partial sums
//! plus counts), the shrunken relations are joined, and the final aggregate
//! recombines the partials as `Σ partial_sum · Π counts` per group.

use crate::agg::{AggFunc, AggSpec};
use crate::attr::{AttrId, Catalog};
use crate::error::RelError;
use crate::expr::Predicate;
use crate::ops::aggregate::{PhysAgg, PhysAggSpec};
use crate::plan::{DeriveExpr, JoinAlgo, RelPlan};
use crate::relation::SortKey;
use crate::schema::Schema;
use std::collections::HashMap;

/// A logical query: natural join of named inputs, optional selections,
/// grouping/aggregation (or plain projection), having, ordering and limit.
///
/// This is the common denominator the baseline engines execute; the SQL
/// front-end in `fdb-query` lowers to it, and the factorised engine runs
/// the same tasks through f-plans.
#[derive(Clone, Debug, Default)]
pub struct JoinAggTask {
    /// Relations to natural-join, in join order.
    pub inputs: Vec<String>,
    /// Extra selection conjuncts (`Ai = Aj`, `Ai θ c`).
    pub predicates: Vec<Predicate>,
    /// Projection for aggregate-free queries; ignored when aggregates exist.
    pub projection: Option<Vec<AttrId>>,
    /// Group-by attributes `G`.
    pub group_by: Vec<AttrId>,
    /// Aggregates `αi ← Fi`.
    pub aggregates: Vec<AggSpec>,
    /// HAVING conjuncts (over group-by attributes and aggregate outputs).
    pub having: Vec<Predicate>,
    /// ORDER BY keys.
    pub order_by: Vec<SortKey>,
    /// LIMIT k.
    pub limit: Option<usize>,
    /// OFFSET m: rows skipped (in the `order_by` order) before the first
    /// returned row. `0` means no offset; meaningful with or without a
    /// LIMIT (PostgreSQL semantics).
    pub offset: usize,
    /// `GROUP BY GROUPING SETS` expansion: each set is a subset of
    /// `group_by`. Empty means plain grouping. When non-empty, the
    /// engines run one aggregation per set over the same data and pad
    /// the missing group columns with NULL (ROLLUP/CUBE desugar here).
    pub grouping_sets: Vec<Vec<AttrId>>,
}

impl JoinAggTask {
    /// True if the task has a grouping/aggregation stage.
    pub fn is_aggregate(&self) -> bool {
        !self.aggregates.is_empty()
    }

    /// The expected output schema column order.
    pub fn output_attrs(&self) -> Vec<AttrId> {
        if self.is_aggregate() {
            self.group_by
                .iter()
                .copied()
                .chain(self.aggregates.iter().map(|a| a.output))
                .collect()
        } else {
            self.projection.clone().unwrap_or_default()
        }
    }
}

/// Splits predicates into per-input pushable constant comparisons and the
/// rest (cross-input equalities and predicates over join outputs).
fn split_predicates<'a>(
    preds: &'a [Predicate],
    schemas: &[(String, &Schema)],
) -> (Vec<Vec<&'a Predicate>>, Vec<&'a Predicate>) {
    let mut per_input: Vec<Vec<&Predicate>> = vec![Vec::new(); schemas.len()];
    let mut residual: Vec<&Predicate> = Vec::new();
    for p in preds {
        match p {
            Predicate::AttrCmp(a, _, _) => {
                let mut pushed = false;
                for (i, (_, s)) in schemas.iter().enumerate() {
                    if s.contains(*a) {
                        per_input[i].push(p);
                        pushed = true;
                    }
                }
                if !pushed {
                    residual.push(p);
                }
            }
            Predicate::AttrEq(_, _) => residual.push(p),
        }
    }
    (per_input, residual)
}

/// Left-deep natural-join tree over the (possibly filtered) inputs.
fn join_tree(leaves: Vec<RelPlan>) -> RelPlan {
    let mut it = leaves.into_iter();
    let first = it.next().expect("at least one input");
    it.fold(first, |acc, next| acc.join(next, JoinAlgo::Hash))
}

fn resolve_schemas<'a>(
    inputs: &[String],
    schemas: &'a HashMap<String, Schema>,
) -> Result<Vec<(String, &'a Schema)>, RelError> {
    inputs
        .iter()
        .map(|n| {
            schemas
                .get(n)
                .map(|s| (n.clone(), s))
                .ok_or_else(|| RelError::UnknownRelation(n.clone()))
        })
        .collect()
}

/// Lazy-aggregation plan: filter-pushdown, left-deep joins, one final
/// group-aggregate, having, sort, limit — the plan shape the off-the-shelf
/// engines chose in the paper.
pub fn naive_plan(
    task: &JoinAggTask,
    catalog: &mut Catalog,
    schemas: &HashMap<String, Schema>,
) -> Result<RelPlan, RelError> {
    if !task.grouping_sets.is_empty() {
        return Err(RelError::Unsupported(
            "grouping sets are expanded by the engine, not planned directly".into(),
        ));
    }
    let ins = resolve_schemas(&task.inputs, schemas)?;
    if ins.is_empty() {
        return Err(RelError::Unsupported("query with no inputs".into()));
    }
    let (per_input, residual) = split_predicates(&task.predicates, &ins);
    let leaves: Vec<RelPlan> = ins
        .iter()
        .zip(per_input)
        .map(|((name, _), preds)| {
            let scan = RelPlan::Scan(name.clone());
            if preds.is_empty() {
                scan
            } else {
                scan.select(preds.into_iter().cloned().collect())
            }
        })
        .collect();
    let mut plan = join_tree(leaves);
    if !residual.is_empty() {
        plan = plan.select(residual.into_iter().cloned().collect());
    }
    if task.is_aggregate() {
        plan = finalize_aggregate(plan, task, catalog, |_agg| None)?;
    } else if let Some(proj) = &task.projection {
        plan = plan.project(proj.clone(), true);
    }
    if !task.having.is_empty() {
        plan = plan.select(task.having.clone());
    }
    if !task.order_by.is_empty() {
        plan = plan.sort(task.order_by.clone());
    }
    if task.limit.is_some() || task.offset > 0 {
        plan = plan.page(task.offset, task.limit);
    }
    Ok(plan)
}

/// Eager-aggregation plan (Yan–Larson): pre-aggregate each input down to
/// its join ∪ group-by attributes, join the shrunken inputs, recombine.
///
/// Returns [`RelError::Unsupported`] when the rewrite does not apply
/// (aggregate-free queries, or cross-input `Ai = Aj` selections beyond the
/// natural join); callers fall back to [`naive_plan`].
pub fn eager_plan(
    task: &JoinAggTask,
    catalog: &mut Catalog,
    schemas: &HashMap<String, Schema>,
) -> Result<RelPlan, RelError> {
    if !task.is_aggregate() {
        return Err(RelError::Unsupported(
            "eager aggregation needs an aggregate query".into(),
        ));
    }
    if !task.grouping_sets.is_empty() {
        return Err(RelError::Unsupported(
            "grouping sets are expanded by the engine, not planned directly".into(),
        ));
    }
    // The PR-7 aggregates do not decompose into Yan–Larson partials:
    // count(distinct)/top_k are distinct-sensitive, product/exists/forall
    // would need pow-weighted recombination the baselines don't model.
    // Callers fall back to the naive plan, whose plain accumulators
    // handle every AggFunc.
    if task.aggregates.iter().any(|a| {
        matches!(
            a.func,
            AggFunc::CountDistinct(_)
                | AggFunc::Product(_)
                | AggFunc::Exists(..)
                | AggFunc::Forall(..)
                | AggFunc::TopK(..)
        )
    }) {
        return Err(RelError::Unsupported(
            "eager aggregation for distinct/product/boolean/top-k aggregates".into(),
        ));
    }
    if task
        .predicates
        .iter()
        .any(|p| matches!(p, Predicate::AttrEq(_, _)))
    {
        return Err(RelError::Unsupported(
            "eager aggregation with explicit attribute equalities".into(),
        ));
    }
    let ins = resolve_schemas(&task.inputs, schemas)?;
    if ins.is_empty() {
        return Err(RelError::Unsupported("query with no inputs".into()));
    }
    let (per_input, residual) = split_predicates(&task.predicates, &ins);
    debug_assert!(residual.is_empty(), "const preds always push down");

    // Attributes that survive the pre-aggregation of input i: attributes
    // shared with any other input (join keys) plus group-by attributes.
    let keys: Vec<Vec<AttrId>> = ins
        .iter()
        .enumerate()
        .map(|(i, (_, s))| {
            s.attrs()
                .iter()
                .copied()
                .filter(|a| {
                    task.group_by.contains(a)
                        || ins
                            .iter()
                            .enumerate()
                            .any(|(j, (_, t))| j != i && t.contains(*a))
                })
                .collect()
        })
        .collect();

    // Does any aggregate need tuple multiplicities?
    let needs_counts = task
        .aggregates
        .iter()
        .any(|a| matches!(a.func, AggFunc::Count | AggFunc::Sum(_) | AggFunc::Avg(_)));

    // Partial aggregates per input, plus bookkeeping for the recombination.
    let mut partial_specs: Vec<Vec<PhysAggSpec>> = vec![Vec::new(); ins.len()];
    // For each (query-aggregate, input): the partial sum/min/max column.
    let mut partial_col: HashMap<(usize, usize), AttrId> = HashMap::new();
    for (qi, agg) in task.aggregates.iter().enumerate() {
        let attr = match agg.func {
            AggFunc::Count => continue,
            AggFunc::Sum(a) | AggFunc::Avg(a) | AggFunc::Min(a) | AggFunc::Max(a) => a,
            AggFunc::CountDistinct(_)
            | AggFunc::Product(_)
            | AggFunc::Exists(..)
            | AggFunc::Forall(..)
            | AggFunc::TopK(..) => unreachable!("rejected above"),
        };
        let homes: Vec<usize> = ins
            .iter()
            .enumerate()
            .filter(|(_, (_, s))| s.contains(attr))
            .map(|(i, _)| i)
            .collect();
        if homes.is_empty() {
            return Err(RelError::MissingAttribute {
                attr: catalog.name(attr).to_string(),
                context: "eager pre-aggregation".into(),
            });
        }
        let home = homes[0];
        if keys[home].contains(&attr) {
            // The attribute survives to the join; no partial needed.
            continue;
        }
        let base = agg.func.derived_name(catalog);
        let col = catalog.fresh(&format!("{base}@{}", ins[home].0));
        let func = match agg.func {
            AggFunc::Sum(a) | AggFunc::Avg(a) => AggFunc::Sum(a),
            AggFunc::Min(a) => AggFunc::Min(a),
            AggFunc::Max(a) => AggFunc::Max(a),
            _ => unreachable!("other aggregates rejected or skipped above"),
        };
        partial_specs[home].push(AggSpec::new(func, col).into());
        partial_col.insert((qi, home), col);
    }

    // Build per-input pre-aggregation plans and track count columns.
    let mut count_cols: Vec<Option<AttrId>> = vec![None; ins.len()];
    let mut leaves: Vec<RelPlan> = Vec::with_capacity(ins.len());
    for (i, ((name, schema), preds)) in ins.iter().zip(per_input).enumerate() {
        let mut leaf = RelPlan::Scan(name.clone());
        if !preds.is_empty() {
            leaf = leaf.select(preds.into_iter().cloned().collect());
        }
        let covers_all = keys[i].len() == schema.arity();
        if covers_all && partial_specs[i].is_empty() {
            // Nothing to shrink: every attribute is a key, so every group
            // has exactly one tuple (set semantics) and its count is 1.
            leaves.push(leaf);
            continue;
        }
        let mut aggs = std::mem::take(&mut partial_specs[i]);
        if needs_counts {
            let c = catalog.fresh(&format!("count@{name}"));
            aggs.push(AggSpec::new(AggFunc::Count, c).into());
            count_cols[i] = Some(c);
        }
        leaves.push(leaf.group_aggregate(keys[i].clone(), aggs));
    }
    let plan = join_tree(leaves);

    // Final recombination per query aggregate.
    let all_counts: Vec<AttrId> = count_cols.iter().flatten().copied().collect();
    let mut final_plan = finalize_aggregate(plan, task, catalog, |ctx| {
        Some(recombine(
            ctx,
            &ins,
            &keys,
            &partial_col,
            &count_cols,
            &all_counts,
        ))
    })?;
    if !task.having.is_empty() {
        final_plan = final_plan.select(task.having.clone());
    }
    if !task.order_by.is_empty() {
        final_plan = final_plan.sort(task.order_by.clone());
    }
    if task.limit.is_some() || task.offset > 0 {
        final_plan = final_plan.page(task.offset, task.limit);
    }
    Ok(final_plan)
}

/// Context handed to the physical-aggregate chooser: which query aggregate
/// (by index) with which logical function is being lowered.
struct AggCtx {
    index: usize,
    func: AggFunc,
}

/// Picks the physical recombination aggregate for one query aggregate in
/// the eager plan.
fn recombine(
    ctx: &AggCtx,
    ins: &[(String, &Schema)],
    keys: &[Vec<AttrId>],
    partial_col: &HashMap<(usize, usize), AttrId>,
    count_cols: &[Option<AttrId>],
    all_counts: &[AttrId],
) -> PhysAgg {
    match ctx.func {
        AggFunc::Count => {
            if all_counts.is_empty() {
                PhysAgg::Plain(AggFunc::Count)
            } else {
                PhysAgg::SumProd(all_counts.to_vec())
            }
        }
        AggFunc::Sum(a) | AggFunc::Avg(a) => {
            // Either the attribute survived the pre-aggregation (it is a
            // key somewhere) or exactly one home input carries its partial
            // sum; the weight is the product of the *other* inputs' counts.
            let home = ins
                .iter()
                .enumerate()
                .find(|(i, (_, s))| s.contains(a) && !keys[*i].contains(&a))
                .map(|(i, _)| i);
            match home {
                None => {
                    let mut cols = vec![a];
                    cols.extend_from_slice(all_counts);
                    PhysAgg::SumProd(cols)
                }
                Some(i) => {
                    let s = partial_col[&(ctx.index, i)];
                    let mut cols = vec![s];
                    cols.extend(
                        count_cols
                            .iter()
                            .enumerate()
                            .filter(|(j, _)| *j != i)
                            .filter_map(|(_, c)| *c),
                    );
                    PhysAgg::SumProd(cols)
                }
            }
        }
        AggFunc::Min(a) => {
            let col = ins
                .iter()
                .enumerate()
                .find_map(|(i, _)| partial_col.get(&(ctx.index, i)).copied())
                .unwrap_or(a);
            PhysAgg::Plain(AggFunc::Min(col))
        }
        AggFunc::Max(a) => {
            let col = ins
                .iter()
                .enumerate()
                .find_map(|(i, _)| partial_col.get(&(ctx.index, i)).copied())
                .unwrap_or(a);
            PhysAgg::Plain(AggFunc::Max(col))
        }
        AggFunc::CountDistinct(_)
        | AggFunc::Product(_)
        | AggFunc::Exists(..)
        | AggFunc::Forall(..)
        | AggFunc::TopK(..) => unreachable!("eager_plan rejects these aggregates"),
    }
}

/// Lowers the final grouping stage, expanding `avg` into sum/count plus a
/// derive, and projecting to the task's declared column order.
///
/// `choose` lets the eager planner substitute recombination aggregates; the
/// naive planner passes a function returning `None` (plain lowering).
fn finalize_aggregate(
    input: RelPlan,
    task: &JoinAggTask,
    catalog: &mut Catalog,
    choose: impl Fn(&AggCtx) -> Option<PhysAgg>,
) -> Result<RelPlan, RelError> {
    let mut phys: Vec<PhysAggSpec> = Vec::new();
    let mut derives: Vec<(DeriveExpr, AttrId)> = Vec::new();
    for (index, agg) in task.aggregates.iter().enumerate() {
        match agg.func {
            AggFunc::Avg(a) => {
                // avg = (sum, count) finalised by a division (§3.2.4).
                let sum_ctx = AggCtx {
                    index,
                    func: AggFunc::Sum(a),
                };
                let cnt_ctx = AggCtx {
                    index,
                    func: AggFunc::Count,
                };
                let s = catalog.fresh(&format!("avg_sum({})", catalog.name(a)));
                let n = catalog.fresh(&format!("avg_count({})", catalog.name(a)));
                phys.push(PhysAggSpec {
                    agg: choose(&sum_ctx).unwrap_or(PhysAgg::Plain(AggFunc::Sum(a))),
                    output: s,
                });
                phys.push(PhysAggSpec {
                    agg: choose(&cnt_ctx).unwrap_or(PhysAgg::Plain(AggFunc::Count)),
                    output: n,
                });
                derives.push((DeriveExpr::Div(s, n), agg.output));
            }
            func => {
                let ctx = AggCtx { index, func };
                phys.push(PhysAggSpec {
                    agg: choose(&ctx).unwrap_or(PhysAgg::Plain(func)),
                    output: agg.output,
                });
            }
        }
    }
    let mut plan = input.group_aggregate(task.group_by.clone(), phys);
    if !derives.is_empty() {
        plan = plan.derive(derives);
        // Restore the declared column order (derive appends at the end).
        plan = plan.project(task.output_attrs(), false);
    }
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::GroupStrategy;
    use crate::plan::execute;
    use crate::relation::Relation;
    use crate::value::Value;

    /// Three-relation mini-instance of the paper's benchmark schema.
    fn db() -> (Catalog, HashMap<String, Relation>, HashMap<String, Schema>) {
        let mut c = Catalog::new();
        let customer = c.intern("customer");
        let date = c.intern("date");
        let package = c.intern("package");
        let item = c.intern("item");
        let price = c.intern("price");
        let orders = Relation::from_rows(
            Schema::new(vec![customer, date, package]),
            [
                ("Mario", 1, "Capricciosa"),
                ("Mario", 2, "Margherita"),
                ("Pietro", 5, "Hawaii"),
                ("Lucia", 5, "Hawaii"),
                ("Mario", 5, "Capricciosa"),
            ]
            .into_iter()
            .map(|(cu, d, p)| vec![Value::str(cu), Value::Int(d), Value::str(p)]),
        );
        let packages = Relation::from_rows(
            Schema::new(vec![package, item]),
            [
                ("Margherita", "base"),
                ("Capricciosa", "base"),
                ("Capricciosa", "ham"),
                ("Capricciosa", "mushrooms"),
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Hawaii", "pineapple"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, pr)| vec![Value::str(i), Value::Int(pr)]),
        );
        let mut rels = HashMap::new();
        rels.insert("Orders".to_string(), orders);
        rels.insert("Packages".to_string(), packages);
        rels.insert("Items".to_string(), items);
        let schemas = rels
            .iter()
            .map(|(k, v)| (k.clone(), v.schema().clone()))
            .collect();
        (c, rels, schemas)
    }

    fn revenue_task(c: &mut Catalog) -> JoinAggTask {
        let customer = c.lookup("customer").unwrap();
        let price = c.lookup("price").unwrap();
        let revenue = c.intern("revenue");
        JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::Sum(price), revenue)],
            ..Default::default()
        }
    }

    #[test]
    fn naive_matches_paper_example() {
        let (mut c, rels, schemas) = db();
        let task = revenue_task(&mut c);
        let plan = naive_plan(&task, &mut c, &schemas).unwrap();
        let out = execute(&plan, &rels, GroupStrategy::Sort).unwrap();
        // Example 1: Lucia 9, Mario 22, Pietro 9.
        let rows: Vec<(String, i64)> = out
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9)
            ]
        );
    }

    #[test]
    fn eager_matches_naive() {
        let (mut c, rels, schemas) = db();
        let task = revenue_task(&mut c);
        let naive = naive_plan(&task, &mut c, &schemas).unwrap();
        let eager = eager_plan(&task, &mut c, &schemas).unwrap();
        let a = execute(&naive, &rels, GroupStrategy::Sort)
            .unwrap()
            .canonical();
        let b = execute(&eager, &rels, GroupStrategy::Hash)
            .unwrap()
            .canonical();
        assert_eq!(a, b);
    }

    #[test]
    fn eager_pre_aggregates_items() {
        let (mut c, _, schemas) = db();
        let task = revenue_task(&mut c);
        let plan = eager_plan(&task, &mut c, &schemas).unwrap();
        let text = plan.explain(&c);
        // The Items side must be aggregated below the join.
        let agg_pos = text.find("GroupAggregate").unwrap();
        let join_pos = text.find("Join").unwrap();
        assert!(text.matches("GroupAggregate").count() >= 2);
        assert!(agg_pos < text.len() && join_pos < text.len());
    }

    #[test]
    fn eager_count_query() {
        let (mut c, rels, schemas) = db();
        let package = c.lookup("package").unwrap();
        let n = c.intern("n");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![package],
            aggregates: vec![AggSpec::new(AggFunc::Count, n)],
            ..Default::default()
        };
        let naive = naive_plan(&task, &mut c, &schemas).unwrap();
        let eager = eager_plan(&task, &mut c, &schemas).unwrap();
        assert_eq!(
            execute(&naive, &rels, GroupStrategy::Sort)
                .unwrap()
                .canonical(),
            execute(&eager, &rels, GroupStrategy::Sort)
                .unwrap()
                .canonical()
        );
    }

    #[test]
    fn eager_min_avg() {
        let (mut c, rels, schemas) = db();
        let customer = c.lookup("customer").unwrap();
        let price = c.lookup("price").unwrap();
        let cheapest = c.intern("cheapest");
        let mean = c.intern("mean_price");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into(), "Items".into()],
            group_by: vec![customer],
            aggregates: vec![
                AggSpec::new(AggFunc::Min(price), cheapest),
                AggSpec::new(AggFunc::Avg(price), mean),
            ],
            ..Default::default()
        };
        let naive = naive_plan(&task, &mut c, &schemas).unwrap();
        let eager = eager_plan(&task, &mut c, &schemas).unwrap();
        assert_eq!(
            execute(&naive, &rels, GroupStrategy::Sort)
                .unwrap()
                .canonical(),
            execute(&eager, &rels, GroupStrategy::Hash)
                .unwrap()
                .canonical()
        );
    }

    #[test]
    fn eager_rejects_spj() {
        let (mut c, _, schemas) = db();
        let customer = c.lookup("customer").unwrap();
        let task = JoinAggTask {
            inputs: vec!["Orders".into()],
            projection: Some(vec![customer]),
            ..Default::default()
        };
        assert!(matches!(
            eager_plan(&task, &mut c, &schemas),
            Err(RelError::Unsupported(_))
        ));
    }

    #[test]
    fn naive_spj_with_order_limit() {
        let (mut c, rels, schemas) = db();
        let customer = c.lookup("customer").unwrap();
        let task = JoinAggTask {
            inputs: vec!["Orders".into()],
            projection: Some(vec![customer]),
            order_by: vec![SortKey::desc(customer)],
            limit: Some(2),
            ..Default::default()
        };
        let plan = naive_plan(&task, &mut c, &schemas).unwrap();
        let out = execute(&plan, &rels, GroupStrategy::Sort).unwrap();
        let names: Vec<&str> = out.rows().map(|r| r[0].as_str().unwrap()).collect();
        assert_eq!(names, vec!["Pietro", "Mario"]);
    }

    #[test]
    fn sum_over_join_key_survives() {
        // Sum over an attribute that is itself a join key: the eager plan
        // must weight the surviving column by the counts.
        let (mut c, rels, schemas) = db();
        let date = c.lookup("date").unwrap();
        let package = c.lookup("package").unwrap();
        let total = c.intern("total_dates");
        let task = JoinAggTask {
            inputs: vec!["Orders".into(), "Packages".into()],
            group_by: vec![package],
            aggregates: vec![AggSpec::new(AggFunc::Sum(date), total)],
            ..Default::default()
        };
        let naive = naive_plan(&task, &mut c, &schemas).unwrap();
        let eager = eager_plan(&task, &mut c, &schemas).unwrap();
        assert_eq!(
            execute(&naive, &rels, GroupStrategy::Sort)
                .unwrap()
                .canonical(),
            execute(&eager, &rels, GroupStrategy::Sort)
                .unwrap()
                .canonical()
        );
    }
}
