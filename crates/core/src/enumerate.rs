//! Constant-delay enumeration of factorised data — §4 of the paper.
//!
//! Tuples are enumerated with an *odometer* over an explicit node visit
//! sequence (each node after its parent). The union a node iterates over is
//! determined by its parent's current entry, so advancing the odometer
//! touches at most one union per f-tree node — delay between consecutive
//! tuples is constant in the data size (linear in the schema, as in the
//! paper).
//!
//! * [`EnumSpec::ordered`] realises Theorem 2: enumeration in a given
//!   lexicographic order `O` (asc/desc per attribute) is possible iff every
//!   attribute of `O` is a root or a child of an earlier `O`-attribute —
//!   then the visit sequence starts with the `O`-nodes in `O`-order.
//! * [`EnumSpec::grouped`] realises Theorem 1: grouped enumeration needs
//!   every group-by node to be a root or the child of another group node.
//! * [`GroupCursor`] walks group combinations and exposes the *dangling*
//!   subtree unions below each group, on which the caller evaluates
//!   aggregates on the fly (scenario 3 of the introduction).

use crate::error::{FdbError, Result};
use crate::frep::{CountIndex, EntryRef, FRep, UnionId, UnionRef};
use crate::ftree::{FTree, NodeId, NodeLabel};
use fdb_relational::{AttrId, SortDir, SortKey, Value};

/// A node visit sequence with per-node directions.
#[derive(Clone, Debug)]
pub struct EnumSpec {
    pub visit: Vec<NodeId>,
    pub dirs: Vec<SortDir>,
}

impl EnumSpec {
    /// Pre-order visit of every node (the "no particular order" case).
    pub fn all_preorder(tree: &FTree) -> Self {
        let visit = tree.live_nodes();
        let dirs = vec![SortDir::Asc; visit.len()];
        EnumSpec { visit, dirs }
    }

    /// Visit sequence for lexicographic enumeration by `keys` (Theorem 2).
    ///
    /// Fails with [`FdbError::OrderUnsupported`] when the f-tree does not
    /// support the order; restructure first (see [`crate::orderby`]).
    pub fn ordered(tree: &FTree, keys: &[SortKey]) -> Result<Self> {
        let mut visit: Vec<NodeId> = Vec::new();
        let mut dirs: Vec<SortDir> = Vec::new();
        for key in keys {
            let node = tree.node_of_attr(key.attr).ok_or_else(|| {
                FdbError::Unresolved(format!("order attribute {} not in f-tree", key.attr))
            })?;
            if visit.contains(&node) {
                // Duplicate key, or the same equivalence class as an
                // earlier key: the FIRST occurrence (and its direction)
                // decides, exactly as in `Relation::sort_by_keys` —
                // tuple-wise the values are identical, so the later key
                // could never break a tie the earlier one left (§4; see
                // `fdb_relational::dedup_sort_keys`).
                continue;
            }
            let ok = match tree.node(node).parent {
                None => true,
                Some(p) => visit.contains(&p),
            };
            if !ok {
                return Err(FdbError::OrderUnsupported(format!(
                    "attribute {} is neither a root nor a child of an \
                     earlier order attribute (Theorem 2)",
                    key.attr
                )));
            }
            visit.push(node);
            dirs.push(key.dir);
        }
        complete_preorder(tree, &mut visit, &mut dirs);
        Ok(EnumSpec { visit, dirs })
    }

    /// Visit sequence enumerating tuples clustered by `group` (Theorem 1):
    /// group nodes first (any topological order), then the rest.
    pub fn grouped(tree: &FTree, group: &[AttrId]) -> Result<Self> {
        let mut spec = Self::group_prefix(tree, group)?;
        complete_preorder(tree, &mut spec.visit, &mut spec.dirs);
        Ok(spec)
    }

    /// Group-node prefix visiting the order keys first: grouped
    /// enumeration that is additionally sorted by `keys` (which must
    /// reference group attributes). Used by the engine for ordered
    /// group-by output without consolidation.
    pub fn group_prefix_ordered(tree: &FTree, group: &[AttrId], keys: &[SortKey]) -> Result<Self> {
        let base = Self::group_prefix(tree, group)?;
        let mut visit: Vec<NodeId> = Vec::new();
        let mut dirs: Vec<SortDir> = Vec::new();
        for key in keys {
            let node = tree.node_of_attr(key.attr).ok_or_else(|| {
                FdbError::Unresolved(format!("order attribute {} not in f-tree", key.attr))
            })?;
            if visit.contains(&node) {
                // First occurrence decides (see `EnumSpec::ordered`).
                continue;
            }
            if !base.visit.contains(&node) {
                return Err(FdbError::OrderUnsupported(format!(
                    "order attribute {} is not a group attribute",
                    key.attr
                )));
            }
            let ok = match tree.node(node).parent {
                None => true,
                Some(p) => visit.contains(&p),
            };
            if !ok {
                return Err(FdbError::OrderUnsupported(format!(
                    "attribute {} violates Theorem 2 within the group prefix",
                    key.attr
                )));
            }
            visit.push(node);
            dirs.push(key.dir);
        }
        for &n in &base.visit {
            if !visit.contains(&n) {
                visit.push(n);
                dirs.push(SortDir::Asc);
            }
        }
        Ok(EnumSpec { visit, dirs })
    }

    /// Only the group nodes (the prefix used by [`GroupCursor`]).
    pub fn group_prefix(tree: &FTree, group: &[AttrId]) -> Result<Self> {
        let mut nodes: Vec<NodeId> = Vec::new();
        for &g in group {
            let node = tree.node_of_attr(g).ok_or_else(|| {
                FdbError::Unresolved(format!("group attribute {g} not in f-tree"))
            })?;
            if !nodes.contains(&node) {
                nodes.push(node);
            }
        }
        for &n in &nodes {
            let ok = match tree.node(n).parent {
                None => true,
                Some(p) => nodes.contains(&p),
            };
            if !ok {
                return Err(FdbError::OrderUnsupported(format!(
                    "group node {n:?} is neither a root nor a child of \
                     another group node (Theorem 1)"
                )));
            }
        }
        // Topological order: parents before children.
        nodes.sort_by_key(|&n| tree.depth(n));
        let dirs = vec![SortDir::Asc; nodes.len()];
        Ok(EnumSpec { visit: nodes, dirs })
    }
}

/// Appends the unvisited nodes in pre-order (parents first).
fn complete_preorder(tree: &FTree, visit: &mut Vec<NodeId>, dirs: &mut Vec<SortDir>) {
    for n in tree.live_nodes() {
        if !visit.contains(&n) {
            visit.push(n);
            dirs.push(SortDir::Asc);
        }
    }
}

/// True iff the f-tree supports constant-delay enumeration in `keys` order
/// without restructuring (Theorem 2).
pub fn supports_order(tree: &FTree, keys: &[SortKey]) -> bool {
    EnumSpec::ordered(tree, keys).is_ok()
}

/// True iff the f-tree supports constant-delay grouped enumeration by
/// `group` without restructuring (Theorem 1).
pub fn supports_group(tree: &FTree, group: &[AttrId]) -> bool {
    EnumSpec::group_prefix(tree, group).is_ok()
}

/// Where a visited node finds its union.
#[derive(Clone, Copy, Debug)]
enum Slot {
    /// `roots[i]`.
    Root(usize),
    /// Child `child_pos` of the entry currently selected at visit index
    /// `parent_visit`.
    Inner {
        parent_visit: usize,
        child_pos: usize,
    },
}

/// The shared odometer over a visit sequence: an iterative cursor walk
/// over the arena's index tables, holding one [`UnionId`] and one entry
/// index per visited node — no recursion, no per-step allocation.
struct Odometer<'a> {
    rep: &'a FRep,
    visit: Vec<NodeId>,
    dirs: Vec<SortDir>,
    slots: Vec<Slot>,
    unions: Vec<Option<UnionId>>,
    /// Logical index per node (0 = first in direction order).
    idxs: Vec<usize>,
    started: bool,
    done: bool,
}

impl<'a> Odometer<'a> {
    fn new(rep: &'a FRep, spec: &EnumSpec) -> Result<Self> {
        let tree = rep.ftree();
        let mut slots = Vec::with_capacity(spec.visit.len());
        for (i, &n) in spec.visit.iter().enumerate() {
            let slot = match tree.node(n).parent {
                None => Slot::Root(
                    tree.roots()
                        .iter()
                        .position(|&r| r == n)
                        .expect("root registered"),
                ),
                Some(p) => {
                    let parent_visit =
                        spec.visit[..i]
                            .iter()
                            .position(|&v| v == p)
                            .ok_or_else(|| {
                                FdbError::OrderUnsupported(format!(
                                    "visit sequence places {n:?} before its parent"
                                ))
                            })?;
                    let child_pos = tree
                        .node(p)
                        .children
                        .iter()
                        .position(|&c| c == n)
                        .expect("child registered");
                    Slot::Inner {
                        parent_visit,
                        child_pos,
                    }
                }
            };
            slots.push(slot);
        }
        Ok(Odometer {
            rep,
            visit: spec.visit.clone(),
            dirs: spec.dirs.clone(),
            slots,
            unions: vec![None; spec.visit.len()],
            idxs: vec![0; spec.visit.len()],
            started: false,
            done: false,
        })
    }

    /// Cursor over the union currently open at visit position `i`.
    fn union(&self, i: usize) -> UnionRef<'a> {
        self.rep.union(self.unions[i].expect("opened"))
    }

    /// Physical entry index for a logical position.
    fn phys(&self, i: usize) -> usize {
        let len = self.union(i).len();
        match self.dirs[i] {
            SortDir::Asc => self.idxs[i],
            SortDir::Desc => len - 1 - self.idxs[i],
        }
    }

    /// Currently selected entry at visit position `i`.
    fn entry(&self, i: usize) -> EntryRef<'a> {
        self.union(i).entry(self.phys(i))
    }

    /// (Re)opens position `i` at its first entry. Returns `false` when the
    /// union is empty (possible only at the roots of an empty relation).
    fn open(&mut self, i: usize) -> bool {
        let u: UnionId = match self.slots[i] {
            Slot::Root(r) => self.rep.root_ids()[r],
            Slot::Inner {
                parent_visit,
                child_pos,
            } => self.entry(parent_visit).child_id(child_pos),
        };
        self.unions[i] = Some(u);
        self.idxs[i] = 0;
        !self.rep.union(u).is_empty()
    }

    /// Moves to the first/next combination; returns `false` at the end.
    fn step(&mut self) -> bool {
        if self.done {
            return false;
        }
        if !self.started {
            self.started = true;
            // Emptiness is only representable at the roots; an empty
            // relation yields no tuples and no groups (even with an empty
            // visit sequence, where the single nullary group must not
            // appear).
            if self.rep.is_empty() {
                self.done = true;
                return false;
            }
            for i in 0..self.visit.len() {
                if !self.open(i) {
                    self.done = true;
                    return false;
                }
            }
            return true;
        }
        // Advance the deepest position with entries left; everything after
        // it reopens. At most |visit| unions are touched: constant delay.
        let mut i = self.visit.len();
        loop {
            if i == 0 {
                self.done = true;
                return false;
            }
            i -= 1;
            let len = self.union(i).len();
            if self.idxs[i] + 1 < len {
                self.idxs[i] += 1;
                for j in i + 1..self.visit.len() {
                    let ok = self.open(j);
                    debug_assert!(ok, "inner unions are never empty");
                }
                return true;
            }
        }
    }

    /// Positions the odometer *directly on* the `skip`-th combination
    /// (0-based) of the enumeration order, without stepping through the
    /// skipped prefix. Returns `false` when `skip` is past the end.
    ///
    /// The walk follows the visit sequence once. After the first `i`
    /// positions are chosen, the tuples sharing those choices factorise
    /// as the product of the subtree tuple counts of the *dangling*
    /// unions — unions whose parent entry is already chosen but which
    /// have not been entered (the visit sequence is parent-first, so the
    /// unvisited positions partition into exactly those subtrees, even
    /// when sort-key nodes interleave subtrees). At each position the
    /// entry containing the target index is found by binary-searching
    /// the union's count prefix sums scaled by the product of the other
    /// dangling totals: O(depth · log fanout) union-entry probes total.
    fn seek_to(&mut self, skip: u64, counts: &CountIndex) -> bool {
        debug_assert!(!self.started);
        self.started = true;
        if self.rep.is_empty() {
            self.done = true;
            return false;
        }
        let total: u128 = self
            .rep
            .root_ids()
            .iter()
            .map(|&r| counts.total(r) as u128)
            .fold(1u128, u128::saturating_mul);
        if skip as u128 >= total {
            self.done = true;
            return false;
        }
        let mut remaining = skip as u128;
        // Dangling unions, in no particular order (the product below is
        // order-free). Bounded by the f-tree width: O(depth) long.
        let mut dangling: Vec<UnionId> = self.rep.root_ids().to_vec();
        let arena = self.rep.arena_ref();
        for i in 0..self.visit.len() {
            let u: UnionId = match self.slots[i] {
                Slot::Root(r) => self.rep.root_ids()[r],
                Slot::Inner {
                    parent_visit,
                    child_pos,
                } => self.entry(parent_visit).child_id(child_pos),
            };
            self.unions[i] = Some(u);
            let pos = dangling
                .iter()
                .position(|&d| d == u)
                .expect("visited union dangles off a chosen entry");
            dangling.swap_remove(pos);
            // Tuples per single entry choice here, besides the entry's
            // own subtree: the product of the other dangling totals.
            let rest: u128 = dangling
                .iter()
                .map(|&d| counts.total(d) as u128)
                .fold(1u128, u128::saturating_mul);
            let rec = arena.urec(u);
            let dir = self.dirs[i];
            let len = rec.len as usize;
            debug_assert!(len > 0, "inner unions are never empty");
            // Largest logical l with cum_before(l)·rest ≤ remaining.
            // Saturated products exceed any remaining < 2^64, so they
            // compare on the correct side.
            let (mut lo, mut hi) = (0usize, len - 1);
            while lo < hi {
                let mid = (lo + hi).div_ceil(2);
                let before = (counts.cum_before(rec, mid, dir) as u128).saturating_mul(rest);
                if before <= remaining {
                    lo = mid;
                } else {
                    hi = mid - 1;
                }
            }
            self.idxs[i] = lo;
            remaining -= (counts.cum_before(rec, lo, dir) as u128).saturating_mul(rest);
            debug_assert!(
                remaining < (counts.entry_count_at(rec, self.phys(i)) as u128).saturating_mul(rest)
            );
            let e = self.entry(i);
            for k in 0..e.child_count() {
                dangling.push(e.child_id(k));
            }
        }
        debug_assert_eq!(remaining, 0, "seek must land exactly on the target");
        debug_assert!(dangling.is_empty(), "full visit enters every union");
        true
    }
}

/// Constant-delay tuple enumeration following an [`EnumSpec`].
///
/// `next_row` is a lending-iterator: the returned slice is valid until the
/// next call. Column layout follows the visit sequence ([`TupleIter::schema`]);
/// use [`TupleIter::projected`] for a caller-chosen column order.
pub struct TupleIter<'a> {
    odo: Odometer<'a>,
    offsets: Vec<usize>,
    row: Vec<Value>,
}

impl<'a> TupleIter<'a> {
    pub fn new(rep: &'a FRep, spec: &EnumSpec) -> Result<Self> {
        let odo = Odometer::new(rep, spec)?;
        let mut offsets = Vec::with_capacity(spec.visit.len());
        let mut width = 0;
        for &n in &spec.visit {
            offsets.push(width);
            width += rep.ftree().node(n).label.exposed_attrs().len();
        }
        Ok(TupleIter {
            odo,
            offsets,
            row: vec![Value::Int(0); width],
        })
    }

    /// Output attributes in visit order.
    pub fn schema(&self) -> Vec<AttrId> {
        self.odo
            .visit
            .iter()
            .flat_map(|&n| self.odo.rep.ftree().node(n).label.exposed_attrs())
            .collect()
    }

    /// Next tuple, or `None` when exhausted.
    pub fn next_row(&mut self) -> Option<&[Value]> {
        if !self.odo.step() {
            return None;
        }
        write_current_row(&self.odo, &self.offsets, &mut self.row);
        Some(&self.row)
    }

    /// Column positions of `attrs` within [`TupleIter::schema`].
    pub fn positions(&self, attrs: &[AttrId]) -> Result<Vec<usize>> {
        let schema = self.schema();
        attrs
            .iter()
            .map(|a| {
                schema
                    .iter()
                    .position(|x| x == a)
                    .ok_or_else(|| FdbError::Unresolved(format!("attribute {a} not enumerated")))
            })
            .collect()
    }

    /// Materialises up to `limit` tuples projected onto `attrs`.
    pub fn projected(
        mut self,
        attrs: &[AttrId],
        limit: Option<usize>,
    ) -> Result<fdb_relational::Relation> {
        let positions = self.positions(attrs)?;
        let schema = fdb_relational::Schema::new(attrs.to_vec());
        let mut out = fdb_relational::Relation::empty(schema);
        let mut buf: Vec<Value> = Vec::with_capacity(attrs.len());
        let mut n = 0usize;
        while let Some(row) = self.next_row() {
            if let Some(k) = limit {
                if n >= k {
                    break;
                }
            }
            buf.clear();
            buf.extend(positions.iter().map(|&p| row[p].clone()));
            out.push_row(&buf);
            n += 1;
        }
        Ok(out)
    }
}

/// Writes the odometer's current combination into `row` (layout per the
/// visit-order offsets).
fn write_current_row(odo: &Odometer<'_>, offsets: &[usize], row: &mut [Value]) {
    for i in 0..odo.visit.len() {
        let e = odo.entry(i);
        let label = &odo.rep.ftree().node(odo.visit[i]).label;
        write_entry_values(label, e.value(), &mut row[offsets[i]..]);
    }
}

/// Direct ordered access: a cursor that *seeks* to the `skip`-th tuple
/// of the enumeration order realised by an [`EnumSpec`] — binary
/// searches over the [`FRep`]'s memoised subtree-count annotations, no
/// enumeration of the skipped prefix — then streams forward with the
/// constant-delay odometer.
///
/// This is the engine's `OFFSET m` fast path: where every sequential
/// strategy pays Ω(m + k) enumeration (or a full sort), the seek costs
/// O(depth · log fanout) and the stream then emits exactly the k
/// requested rows. The first `next_row` yields the seeked-to tuple
/// itself; subsequent calls continue in order.
pub struct DirectCursor<'a> {
    odo: Odometer<'a>,
    offsets: Vec<usize>,
    row: Vec<Value>,
    /// The seeked-to combination is pending emission (the odometer is
    /// parked *on* it, not before it).
    primed: bool,
}

impl<'a> DirectCursor<'a> {
    /// Seeks `rep` to the `skip`-th tuple of `spec`'s order. Builds (or
    /// reuses) the representation's count annotations. A `skip` at or
    /// past the end yields an exhausted cursor, not an error.
    pub fn new(rep: &'a FRep, spec: &EnumSpec, skip: u64) -> Result<Self> {
        let mut odo = Odometer::new(rep, spec)?;
        let counts = rep.count_index().clone();
        let primed = odo.seek_to(skip, &counts);
        let mut offsets = Vec::with_capacity(spec.visit.len());
        let mut width = 0;
        for &n in &spec.visit {
            offsets.push(width);
            width += rep.ftree().node(n).label.exposed_attrs().len();
        }
        Ok(DirectCursor {
            odo,
            offsets,
            row: vec![Value::Int(0); width],
            primed,
        })
    }

    /// Output attributes in visit order (same layout as [`TupleIter`]).
    pub fn schema(&self) -> Vec<AttrId> {
        self.odo
            .visit
            .iter()
            .flat_map(|&n| self.odo.rep.ftree().node(n).label.exposed_attrs())
            .collect()
    }

    /// Column positions of `attrs` within [`DirectCursor::schema`].
    pub fn positions(&self, attrs: &[AttrId]) -> Result<Vec<usize>> {
        let schema = self.schema();
        attrs
            .iter()
            .map(|a| {
                schema
                    .iter()
                    .position(|x| x == a)
                    .ok_or_else(|| FdbError::Unresolved(format!("attribute {a} not enumerated")))
            })
            .collect()
    }

    /// Next tuple, or `None` when exhausted. The first call returns the
    /// seeked-to tuple.
    pub fn next_row(&mut self) -> Option<&[Value]> {
        if self.primed {
            self.primed = false;
        } else if !self.odo.step() {
            return None;
        }
        write_current_row(&self.odo, &self.offsets, &mut self.row);
        Some(&self.row)
    }
}

/// Writes an entry's value into output slots (class members repeat the
/// value; composite aggregates expand their components).
fn write_entry_values(label: &NodeLabel, value: &Value, slots: &mut [Value]) {
    match label {
        NodeLabel::Atomic(attrs) => {
            for slot in slots.iter_mut().take(attrs.len()) {
                *slot = value.clone();
            }
        }
        NodeLabel::Agg(l) => {
            if l.arity() == 1 {
                slots[0] = value.clone();
            } else {
                let comps = value.as_tup().expect("composite aggregate holds a Tup");
                for (i, comp) in comps.iter().enumerate() {
                    slots[i] = comp.clone();
                }
            }
        }
    }
}

/// Iterates over group combinations, exposing the group values and the
/// dangling subtree unions below them (for on-the-fly aggregation).
pub struct GroupCursor<'a> {
    odo: Odometer<'a>,
    /// Root positions not covered by the visit sequence.
    free_roots: Vec<usize>,
    /// Per visit position: child positions not covered by the visit.
    dangling_children: Vec<Vec<usize>>,
    offsets: Vec<usize>,
    row: Vec<Value>,
}

impl<'a> GroupCursor<'a> {
    /// `spec` must cover an up-closed node set (e.g. from
    /// [`EnumSpec::group_prefix`]).
    pub fn new(rep: &'a FRep, spec: &EnumSpec) -> Result<Self> {
        let tree = rep.ftree();
        let odo = Odometer::new(rep, spec)?;
        let free_roots = tree
            .roots()
            .iter()
            .enumerate()
            .filter(|(_, r)| !spec.visit.contains(r))
            .map(|(i, _)| i)
            .collect();
        let dangling_children = spec
            .visit
            .iter()
            .map(|&n| {
                tree.node(n)
                    .children
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| !spec.visit.contains(c))
                    .map(|(i, _)| i)
                    .collect()
            })
            .collect();
        let mut offsets = Vec::with_capacity(spec.visit.len());
        let mut width = 0;
        for &n in &spec.visit {
            offsets.push(width);
            width += tree.node(n).label.exposed_attrs().len();
        }
        Ok(GroupCursor {
            odo,
            free_roots,
            dangling_children,
            offsets,
            row: vec![Value::Int(0); width],
        })
    }

    /// Group-value attributes in visit order.
    pub fn schema(&self) -> Vec<AttrId> {
        self.odo
            .visit
            .iter()
            .flat_map(|&n| self.odo.rep.ftree().node(n).label.exposed_attrs())
            .collect()
    }

    /// Advances to the next group; returns the group values and the
    /// dangling unions, or `None` when exhausted.
    pub fn next_group(&mut self) -> Option<(&[Value], Vec<UnionRef<'a>>)> {
        if !self.odo.step() {
            return None;
        }
        let mut dangling: Vec<UnionRef<'a>> = Vec::new();
        for &r in &self.free_roots {
            dangling.push(self.odo.rep.root(r));
        }
        for i in 0..self.odo.visit.len() {
            let e = self.odo.entry(i);
            let label = &self.odo.rep.ftree().node(self.odo.visit[i]).label;
            write_entry_values(label, e.value(), &mut self.row[self.offsets[i]..]);
            for &cp in &self.dangling_children[i] {
                dangling.push(e.child(cp));
            }
        }
        Some((&self.row, dangling))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::AggOp;
    use fdb_relational::{Catalog, Relation, Schema};

    /// T1-shaped rep: pizza → {date → customer, item → price}.
    fn t1_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
            ("Capricciosa", 1, "Mario", "base", 6),
            ("Capricciosa", 1, "Mario", "ham", 1),
            ("Capricciosa", 5, "Mario", "base", 6),
            ("Capricciosa", 5, "Mario", "ham", 1),
            ("Hawaii", 5, "Lucia", "base", 6),
            ("Hawaii", 5, "Pietro", "base", 6),
        ];
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, customer, item, price]),
            rows.into_iter().map(|(p, d, cu, i, pr)| {
                vec![
                    Value::str(p),
                    Value::Int(d),
                    Value::str(cu),
                    Value::str(i),
                    Value::Int(pr),
                ]
            }),
        );
        let mut t = crate::ftree::FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        (c, rep)
    }

    #[test]
    fn plain_enumeration_matches_flatten() {
        let (_, rep) = t1_rep();
        let spec = EnumSpec::all_preorder(rep.ftree());
        let mut it = TupleIter::new(&rep, &spec).unwrap();
        let mut n = 0;
        while it.next_row().is_some() {
            n += 1;
        }
        assert_eq!(n, rep.tuple_count());
    }

    #[test]
    fn theorem2_supported_orders() {
        // Example 9: T1 supports (pizza), (pizza,date), (pizza,date,
        // customer), (pizza,item), (pizza,item,price), (pizza,date,item);
        // but not (pizza,customer,date) or (customer,pizza).
        let (c, rep) = t1_rep();
        let t = rep.ftree();
        let a = |n: &str| c.lookup(n).unwrap();
        let k = |n: &str| SortKey::asc(a(n));
        assert!(supports_order(t, &[k("pizza")]));
        assert!(supports_order(t, &[k("pizza"), k("date")]));
        assert!(supports_order(t, &[k("pizza"), k("date"), k("customer")]));
        assert!(supports_order(t, &[k("pizza"), k("item")]));
        assert!(supports_order(t, &[k("pizza"), k("item"), k("price")]));
        assert!(supports_order(t, &[k("pizza"), k("date"), k("item")]));
        assert!(!supports_order(t, &[k("pizza"), k("customer"), k("date")]));
        assert!(!supports_order(t, &[k("customer"), k("pizza")]));
    }

    #[test]
    fn theorem1_grouping_allows_permutations() {
        // Example 10: grouping tolerates any permutation of a supported
        // order's attributes.
        let (c, rep) = t1_rep();
        let t = rep.ftree();
        let a = |n: &str| c.lookup(n).unwrap();
        assert!(supports_group(t, &[a("date"), a("pizza")]));
        assert!(supports_group(t, &[a("item"), a("pizza"), a("date")]));
        assert!(!supports_group(t, &[a("customer"), a("pizza")]));
        assert!(!supports_group(t, &[a("date")]));
    }

    #[test]
    fn ordered_enumeration_is_sorted() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![
            SortKey::asc(a("pizza")),
            SortKey::asc(a("date")),
            SortKey::asc(a("item")),
        ];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = TupleIter::new(&rep, &spec).unwrap();
        let rel = it
            .projected(&[a("pizza"), a("date"), a("item")], None)
            .unwrap();
        assert_eq!(rel.len(), rep.tuple_count());
        assert!(rel.is_sorted_by(&keys));
    }

    #[test]
    fn descending_enumeration() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![SortKey::desc(a("pizza")), SortKey::desc(a("date"))];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = TupleIter::new(&rep, &spec).unwrap();
        let rel = it.projected(&[a("pizza"), a("date")], None).unwrap();
        assert!(rel.is_sorted_by(&keys));
        assert_eq!(rel.row(0)[0], Value::str("Hawaii"));
    }

    #[test]
    fn limit_stops_early() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![SortKey::asc(a("pizza"))];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = TupleIter::new(&rep, &spec).unwrap();
        let rel = it.projected(&[a("pizza"), a("customer")], Some(3)).unwrap();
        assert_eq!(rel.len(), 3);
    }

    #[test]
    fn duplicate_key_with_conflicting_direction_honours_first() {
        // ORDER BY pizza DESC, pizza ASC, date ASC: the ASC duplicate is
        // redundant and must not override the first occurrence — the
        // enumeration agrees with the flat stable sort on the raw list.
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![
            SortKey::desc(a("pizza")),
            SortKey::asc(a("pizza")),
            SortKey::asc(a("date")),
        ];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = TupleIter::new(&rep, &spec).unwrap();
        let streamed = it.projected(&[a("pizza"), a("date")], None).unwrap();
        let mut flat = rep.flatten().project_cols(&[a("pizza"), a("date")]);
        flat.sort_by_keys(&keys);
        assert_eq!(streamed, flat);
        assert!(streamed.is_sorted_by(&fdb_relational::dedup_sort_keys(&keys)));
        assert_eq!(streamed.row(0)[0], Value::str("Hawaii"));
        // The same discipline for the grouped variant.
        let gkeys = [SortKey::desc(a("pizza")), SortKey::asc(a("pizza"))];
        let gspec = EnumSpec::group_prefix_ordered(rep.ftree(), &[a("pizza")], &gkeys).unwrap();
        let mut cur = GroupCursor::new(&rep, &gspec).unwrap();
        let mut pizzas = Vec::new();
        while let Some((vals, _)) = cur.next_group() {
            pizzas.push(vals[0].as_str().unwrap().to_string());
        }
        let mut expect = pizzas.clone();
        expect.sort_by(|x, y| y.cmp(x)); // DESC: the first occurrence
        assert_eq!(pizzas, expect);
    }

    #[test]
    fn unsupported_order_is_rejected() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let err = EnumSpec::ordered(rep.ftree(), &[SortKey::asc(a("customer"))]);
        assert!(matches!(err, Err(FdbError::OrderUnsupported(_))));
    }

    #[test]
    fn group_cursor_on_the_fly_aggregation() {
        // Scenario 3: revenue per pizza without materialising the
        // aggregate — walk pizza groups, evaluate sum(price) on the
        // dangling subtrees.
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let spec = EnumSpec::group_prefix(rep.ftree(), &[a("pizza")]).unwrap();
        let mut cur = GroupCursor::new(&rep, &spec).unwrap();
        let mut got: Vec<(String, Value)> = Vec::new();
        while let Some((vals, dangling)) = cur.next_group() {
            let v =
                crate::agg::eval_funcs(rep.ftree(), &dangling, &[AggOp::Sum(a("price"))]).unwrap();
            got.push((vals[0].as_str().unwrap().to_string(), v));
        }
        // Capricciosa: prices (6+1) × 2 dates = 14; Hawaii: 6 × 2
        // customers = 12.
        assert_eq!(
            got,
            vec![
                ("Capricciosa".to_string(), Value::Int(14)),
                ("Hawaii".to_string(), Value::Int(12)),
            ]
        );
    }

    #[test]
    fn group_cursor_empty_group_list_single_group() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let spec = EnumSpec::group_prefix(rep.ftree(), &[]).unwrap();
        let mut cur = GroupCursor::new(&rep, &spec).unwrap();
        let mut groups = 0;
        while let Some((vals, dangling)) = cur.next_group() {
            assert!(vals.is_empty());
            let v = crate::agg::eval_funcs(rep.ftree(), &dangling, &[AggOp::Count]).unwrap();
            assert_eq!(v, Value::Int(6));
            groups += 1;
        }
        assert_eq!(groups, 1);
        let _ = a("pizza");
    }

    #[test]
    fn empty_rep_yields_nothing() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let rel = Relation::empty(Schema::new(vec![x]));
        let rep = FRep::from_relation(&rel, crate::ftree::FTree::path(&[x])).unwrap();
        let spec = EnumSpec::all_preorder(rep.ftree());
        let mut it = TupleIter::new(&rep, &spec).unwrap();
        assert!(it.next_row().is_none());
        let gspec = EnumSpec::group_prefix(rep.ftree(), &[]).unwrap();
        let mut cur = GroupCursor::new(&rep, &gspec).unwrap();
        assert!(cur.next_group().is_none());
    }

    #[test]
    fn group_prefix_ordered_respects_keys() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        // Group by {pizza, date} ordered by (pizza DESC, date ASC).
        let keys = [SortKey::desc(a("pizza")), SortKey::asc(a("date"))];
        let spec =
            EnumSpec::group_prefix_ordered(rep.ftree(), &[a("date"), a("pizza")], &keys).unwrap();
        let mut cur = GroupCursor::new(&rep, &spec).unwrap();
        let mut groups: Vec<(String, i64)> = Vec::new();
        while let Some((vals, _)) = cur.next_group() {
            groups.push((
                vals[0].as_str().unwrap().to_string(),
                vals[1].as_int().unwrap(),
            ));
        }
        let mut expected = groups.clone();
        expected.sort_by(|x, y| y.0.cmp(&x.0).then(x.1.cmp(&y.1)));
        assert_eq!(groups, expected);
        assert!(groups.len() >= 2);
        // A key outside the group set is rejected.
        let err = EnumSpec::group_prefix_ordered(
            rep.ftree(),
            &[a("pizza")],
            &[SortKey::asc(a("customer"))],
        );
        assert!(matches!(err, Err(FdbError::OrderUnsupported(_))));
    }

    #[test]
    fn group_cursor_exposes_free_roots_as_dangling() {
        // A forest with one grouped root and one free root: the free
        // root's union must appear in every group's dangling list.
        let mut c = Catalog::new();
        let g = c.intern("g");
        let w = c.intern("w");
        let rel_g = Relation::from_rows(
            Schema::new(vec![g]),
            [1, 2].into_iter().map(|v| vec![Value::Int(v)]),
        );
        let rel_w = Relation::from_rows(
            Schema::new(vec![w]),
            [10, 20, 30].into_iter().map(|v| vec![Value::Int(v)]),
        );
        let rep_g =
            crate::frep::FRep::from_relation(&rel_g, crate::ftree::FTree::path(&[g])).unwrap();
        let rep_w =
            crate::frep::FRep::from_relation(&rel_w, crate::ftree::FTree::path(&[w])).unwrap();
        let rep = crate::ops::product(rep_g, rep_w);
        let spec = EnumSpec::group_prefix(rep.ftree(), &[g]).unwrap();
        let mut cur = GroupCursor::new(&rep, &spec).unwrap();
        let mut n_groups = 0;
        while let Some((vals, dangling)) = cur.next_group() {
            assert_eq!(vals.len(), 1);
            assert_eq!(dangling.len(), 1);
            let count =
                crate::agg::eval_funcs(rep.ftree(), &dangling, &[crate::ftree::AggOp::Count])
                    .unwrap();
            assert_eq!(count, Value::Int(3));
            n_groups += 1;
        }
        assert_eq!(n_groups, 2);
    }

    /// Reference: enumerate with the plain odometer and skip `m` rows.
    fn skip_enumerate(rep: &FRep, spec: &EnumSpec, skip: usize) -> Vec<Vec<Value>> {
        let mut it = TupleIter::new(rep, spec).unwrap();
        let mut rows = Vec::new();
        let mut i = 0;
        while let Some(r) = it.next_row() {
            if i >= skip {
                rows.push(r.to_vec());
            }
            i += 1;
        }
        rows
    }

    fn direct_enumerate(rep: &FRep, spec: &EnumSpec, skip: u64) -> Vec<Vec<Value>> {
        let mut cur = DirectCursor::new(rep, spec, skip).unwrap();
        let mut rows = Vec::new();
        while let Some(r) = cur.next_row() {
            rows.push(r.to_vec());
        }
        rows
    }

    #[test]
    fn direct_cursor_matches_skip_enumeration_at_every_offset() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let key_sets: Vec<Vec<SortKey>> = vec![
            vec![SortKey::asc(a("pizza"))],
            vec![SortKey::asc(a("pizza")), SortKey::asc(a("date"))],
            vec![SortKey::desc(a("pizza")), SortKey::desc(a("date"))],
            vec![
                SortKey::asc(a("pizza")),
                SortKey::desc(a("item")),
                SortKey::asc(a("date")),
            ],
        ];
        for keys in key_sets {
            let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
            let total = rep.tuple_count();
            for skip in 0..=total + 2 {
                let want = skip_enumerate(&rep, &spec, skip);
                let got = direct_enumerate(&rep, &spec, skip as u64);
                assert_eq!(got, want, "keys {keys:?} skip {skip}");
            }
        }
    }

    #[test]
    fn direct_cursor_schema_matches_tuple_iter() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![SortKey::asc(a("pizza"))];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = TupleIter::new(&rep, &spec).unwrap();
        let cur = DirectCursor::new(&rep, &spec, 0).unwrap();
        assert_eq!(it.schema(), cur.schema());
        assert_eq!(
            it.positions(&[a("price"), a("pizza")]).unwrap(),
            cur.positions(&[a("price"), a("pizza")]).unwrap()
        );
    }

    #[test]
    fn direct_cursor_on_empty_rep_is_exhausted() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let rel = Relation::empty(Schema::new(vec![x]));
        let rep = FRep::from_relation(&rel, crate::ftree::FTree::path(&[x])).unwrap();
        let spec = EnumSpec::ordered(rep.ftree(), &[SortKey::asc(x)]).unwrap();
        let mut cur = DirectCursor::new(&rep, &spec, 0).unwrap();
        assert!(cur.next_row().is_none());
    }

    #[test]
    fn direct_cursor_over_product_forest() {
        // Two free roots (a cartesian product): seeks must distribute the
        // offset across both root unions.
        let mut c = Catalog::new();
        let g = c.intern("g");
        let w = c.intern("w");
        let rel_g = Relation::from_rows(
            Schema::new(vec![g]),
            [1, 2, 3].into_iter().map(|v| vec![Value::Int(v)]),
        );
        let rel_w = Relation::from_rows(
            Schema::new(vec![w]),
            [10, 20].into_iter().map(|v| vec![Value::Int(v)]),
        );
        let rep_g =
            crate::frep::FRep::from_relation(&rel_g, crate::ftree::FTree::path(&[g])).unwrap();
        let rep_w =
            crate::frep::FRep::from_relation(&rel_w, crate::ftree::FTree::path(&[w])).unwrap();
        let rep = crate::ops::product(rep_g, rep_w);
        let keys = vec![SortKey::asc(g), SortKey::desc(w)];
        let spec = EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        for skip in 0..=7 {
            let want = skip_enumerate(&rep, &spec, skip);
            let got = direct_enumerate(&rep, &spec, skip as u64);
            assert_eq!(got, want, "skip {skip}");
        }
    }
}
