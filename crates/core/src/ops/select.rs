//! Constant selections `A θ c` on factorisations.
//!
//! A constant selection filters the entries of the attribute's unions in
//! one traversal of the relevant fragment (§5.1); entries whose subtrees
//! become empty are pruned on the way back up. The surviving entries'
//! subtrees are copied verbatim into the output arena.

use crate::error::{FdbError, Result};
use crate::frep::{value_for_attr, Arena, FRep, UnionId};
use crate::ftree::{FTree, NodeId, NodeLabel};
use crate::ops::rewrite_at;
use fdb_relational::{AttrId, CmpOp, Value};
use std::collections::{BTreeMap, BTreeSet};

/// Filters the factorised relation to tuples with `attr θ value`.
///
/// Works on atomic attributes and on aggregate outputs alike — the latter
/// is how `HAVING` clauses execute after aggregation (§2).
pub fn select_const(rep: FRep, attr: AttrId, op: CmpOp, value: &Value) -> Result<FRep> {
    let node = rep
        .ftree()
        .node_of_attr(attr)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {attr} not in f-tree")))?;
    let (tree, arena, roots) = rep.into_arena_parts();
    let label = tree.node(node).label.clone();
    let mut dst = Arena::default();
    let roots = rewrite_at(&tree, &arena, &roots, node, &mut dst, &mut |u, dst| {
        let mut specs = Vec::with_capacity(u.len());
        let mut kid_ids: Vec<UnionId> = Vec::new();
        for e in u.entries() {
            let v = value_for_attr(&label, e.value(), attr)
                .expect("node exposes the selected attribute");
            if !op.eval(v.cmp(value)) {
                continue;
            }
            kid_ids.clear();
            for c in e.child_ids() {
                kid_ids.push(dst.copy_union_from(&arena, c));
            }
            specs.push(dst.entry(u.node(), e.value().clone(), &kid_ids));
        }
        Ok(Some(dst.push_union(u.node(), &specs)))
    })?;
    let out = FRep::from_arena(tree, dst, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// One resolved constant selection: the node it filters and the
/// entry-level predicate.
struct NodeFilter {
    label: NodeLabel,
    attr: AttrId,
    op: CmpOp,
    value: Value,
}

impl NodeFilter {
    fn passes(&self, arena: &Arena, node: NodeId, val: u32) -> bool {
        let v = value_for_attr(&self.label, arena.value_at(node, val), self.attr)
            .expect("node exposes the selected attribute");
        self.op.eval(v.cmp(&self.value))
    }
}

/// In-place [`select_const`]: filters the attribute's unions by
/// appending the surviving fragment to the same arena; untouched
/// subtrees and all-pass unions are shared by id
/// (`rewrite_at_inplace`).
pub fn select_const_inplace(rep: FRep, attr: AttrId, op: CmpOp, value: &Value) -> Result<FRep> {
    apply_filters_inplace(rep, &[(attr, op, value.clone())])
}

/// A run of consecutive `SelectConst` operators **fused into one
/// arena walk**: the staged pipeline executor compiles each stage's
/// selections into per-node entry filters and applies them all in a
/// single in-place pass from the roots. Filters are resolved in plan
/// order (first unresolved attribute wins the error, exactly as in
/// sequential execution); because constant selections only remove
/// entries and never create them, simultaneous application reaches the
/// same pruning fixpoint as applying them one at a time.
pub(crate) fn apply_filters_inplace(rep: FRep, filters: &[(AttrId, CmpOp, Value)]) -> Result<FRep> {
    let (tree, mut arena, roots) = rep.into_arena_parts();
    let mut per_node: BTreeMap<NodeId, Vec<NodeFilter>> = BTreeMap::new();
    for (attr, op, value) in filters {
        let node = tree
            .node_of_attr(*attr)
            .ok_or_else(|| FdbError::Unresolved(format!("attribute {attr} not in f-tree")))?;
        per_node.entry(node).or_default().push(NodeFilter {
            label: tree.node(node).label.clone(),
            attr: *attr,
            op: *op,
            value: value.clone(),
        });
    }
    // A union must be entered iff its subtree contains a filtered node:
    // precisely the nodes on some filtered node's root path.
    let mut active: BTreeSet<NodeId> = BTreeSet::new();
    for &n in per_node.keys() {
        active.extend(tree.root_path(n));
    }
    // Memoised over source union ids: fragments shared by earlier
    // in-place operators are filtered once and re-shared (`None` =
    // pruned), keeping the DAG a DAG.
    let mut memo: BTreeMap<u32, Option<UnionId>> = BTreeMap::new();
    let mut new_roots = Vec::with_capacity(roots.len());
    for (&r, &rn) in roots.iter().zip(tree.roots()) {
        if active.contains(&rn) {
            let nu = filter_walk(&tree, &mut arena, r, rn, &per_node, &active, &mut memo)?;
            new_roots.push(nu.unwrap_or_else(|| arena.empty_union(rn)));
        } else {
            arena.note_shared(1);
            new_roots.push(r);
        }
    }
    let out = FRep::from_arena(tree, arena, new_roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Rewrites one union under the fused filter set; `None` prunes it.
fn filter_walk(
    tree: &FTree,
    arena: &mut Arena,
    uid: UnionId,
    node: NodeId,
    per_node: &BTreeMap<NodeId, Vec<NodeFilter>>,
    active: &BTreeSet<NodeId>,
    memo: &mut BTreeMap<u32, Option<UnionId>>,
) -> Result<Option<UnionId>> {
    if let Some(&m) = memo.get(&uid.0) {
        if m.is_some() {
            arena.note_shared(1);
        }
        return Ok(m);
    }
    let rec = arena.urec(uid);
    debug_assert_eq!(rec.node, node);
    let filters = per_node.get(&node);
    let children = &tree.node(node).children;
    let mut specs = Vec::with_capacity(rec.len as usize);
    let mut kid_ids: Vec<UnionId> = Vec::new();
    let mut unchanged = true;
    // Kid shares are tallied locally and committed only when the
    // rewritten union is actually emitted — the unchanged-wholesale
    // path discards its specs and must not count them.
    let mut shared_here: u64 = 0;
    'entry: for i in rec.start..rec.start + rec.len {
        let e = arena.erec(i);
        if let Some(fs) = filters {
            if !fs.iter().all(|f| f.passes(arena, node, e.val)) {
                unchanged = false;
                continue;
            }
        }
        kid_ids.clear();
        for (k, &cn) in children.iter().enumerate() {
            let old = arena.kid_at(e.kids_start + k as u32);
            if active.contains(&cn) {
                match filter_walk(tree, arena, old, cn, per_node, active, memo)? {
                    None => {
                        unchanged = false;
                        continue 'entry;
                    }
                    Some(nu) => {
                        unchanged &= nu == old;
                        kid_ids.push(nu);
                    }
                }
            } else {
                shared_here += 1;
                kid_ids.push(old);
            }
        }
        specs.push(arena.entry_shared_val(e.val, &kid_ids));
    }
    if unchanged {
        arena.note_shared(1);
        memo.insert(uid.0, Some(uid));
        return Ok(Some(uid));
    }
    if specs.is_empty() {
        memo.insert(uid.0, None);
        return Ok(None);
    }
    arena.note_shared(shared_here);
    let nu = arena.push_union(node, &specs);
    memo.insert(uid.0, Some(nu));
    Ok(Some(nu))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::FTree;
    use fdb_relational::{Catalog, Relation, Schema};

    fn items() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let item = c.intern("item");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[item, price])).unwrap();
        (c, rep)
    }

    #[test]
    fn select_on_root_attribute() {
        let (c, rep) = items();
        let item = c.lookup("item").unwrap();
        let out = select_const(rep, item, CmpOp::Eq, &Value::str("ham")).unwrap();
        assert_eq!(out.tuple_count(), 1);
        let flat = out.flatten();
        assert_eq!(flat.row(0)[1], Value::Int(1));
    }

    #[test]
    fn select_on_leaf_prunes_upwards() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        // price > 10 matches nothing: all item entries must be pruned.
        let out = select_const(rep, price, CmpOp::Gt, &Value::Int(10)).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.singleton_count(), 0);
    }

    #[test]
    fn select_keeps_matching_branches_only() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        let out = select_const(rep, price, CmpOp::Le, &Value::Int(2)).unwrap();
        out.check_invariants().unwrap();
        assert_eq!(out.tuple_count(), 3);
        // "base" (price 6) disappeared from the item union.
        let names: Vec<String> = out
            .root(0)
            .entries()
            .map(|e| e.value().as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["ham", "mushrooms", "pineapple"]);
    }

    #[test]
    fn select_ne_and_ranges_compose() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        let step1 = select_const(rep, price, CmpOp::Ne, &Value::Int(1)).unwrap();
        let step2 = select_const(step1, price, CmpOp::Lt, &Value::Int(6)).unwrap();
        assert_eq!(step2.tuple_count(), 1);
        assert_eq!(*step2.root(0).entry(0).value(), Value::str("pineapple"));
    }

    #[test]
    fn unknown_attribute_errors() {
        let (_, rep) = items();
        let err = select_const(rep, AttrId(99), CmpOp::Eq, &Value::Int(0));
        assert!(matches!(err, Err(FdbError::Unresolved(_))));
        let (_, rep) = items();
        let err = select_const_inplace(rep, AttrId(99), CmpOp::Eq, &Value::Int(0));
        assert!(matches!(err, Err(FdbError::Unresolved(_))));
    }

    #[test]
    fn inplace_select_matches_legacy() {
        for (attr_name, op, v) in [
            ("price", CmpOp::Le, Value::Int(2)),
            ("price", CmpOp::Gt, Value::Int(10)), // prunes everything
            ("item", CmpOp::Eq, Value::str("ham")),
            ("price", CmpOp::Ge, Value::Int(0)), // all-pass: shared wholesale
        ] {
            let (c, rep) = items();
            let attr = c.lookup(attr_name).unwrap();
            let legacy = select_const(rep.clone(), attr, op, &v).unwrap();
            let inplace = select_const_inplace(rep, attr, op, &v).unwrap();
            inplace.check_invariants().unwrap();
            assert!(inplace.same_data(&legacy), "{attr_name} {op:?} {v}");
            assert_eq!(inplace.singleton_count(), legacy.singleton_count());
        }
    }

    #[test]
    fn all_pass_select_shares_and_counts() {
        let (c, rep) = items();
        let price = c.lookup("price").unwrap();
        let before = rep.stats();
        let out = select_const_inplace(rep, price, CmpOp::Ge, &Value::Int(0)).unwrap();
        let after = out.stats();
        // Nothing filtered: the whole representation is shared, no new
        // union appended, and the share is recorded.
        assert_eq!(after.unions, before.unions);
        assert!(after.copies_avoided > before.copies_avoided);
    }

    #[test]
    fn fused_filter_batch_matches_sequential_selects() {
        let (c, rep) = items();
        let item = c.lookup("item").unwrap();
        let price = c.lookup("price").unwrap();
        let filters = vec![
            (price, CmpOp::Le, Value::Int(6)),
            (item, CmpOp::Ne, Value::str("base")),
            (price, CmpOp::Ge, Value::Int(2)),
        ];
        let mut legacy = rep.clone();
        for (a, o, v) in &filters {
            legacy = select_const(legacy, *a, *o, v).unwrap();
        }
        let fused = apply_filters_inplace(rep, &filters).unwrap();
        fused.check_invariants().unwrap();
        assert!(fused.same_data(&legacy));
        assert_eq!(fused.tuple_count(), 1); // pineapple only
    }
}
