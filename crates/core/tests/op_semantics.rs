//! Operator semantics against the relational definitions, on random data:
//! each f-plan operator must transform the *represented relation* exactly
//! as its relational counterpart transforms the flat relation.

use fdb_core::frep::FRep;
use fdb_core::ftree::{AggOp, FTree, NodeLabel};
use fdb_core::ops;
use fdb_relational::ops as rel_ops;
use fdb_relational::{
    AggFunc, AggSpec, Catalog, CmpOp, GroupStrategy, Predicate, Relation, Schema, Value,
};
use proptest::prelude::*;

fn catalog3() -> (Catalog, [fdb_relational::AttrId; 3]) {
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    (c, [x, y, z])
}

fn rel3(attrs: &[fdb_relational::AttrId; 3], rows: &[(i64, i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::new(attrs.to_vec()),
        rows.iter()
            .map(|&(a, b, d)| vec![Value::Int(a), Value::Int(b), Value::Int(d)]),
    )
    .canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 40, ..ProptestConfig::default() })]

    #[test]
    fn select_const_matches_relational_selection(
        rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 0..25),
        threshold in 0i64..6,
        op_pick in 0usize..6,
    ) {
        let (_, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        let op = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge][op_pick];
        // Select on the middle attribute: exercises pruning both ways.
        let selected = ops::select_const(rep, attrs[1], op, &Value::Int(threshold)).unwrap();
        prop_assert!(selected.check_invariants().is_ok());
        let expected = rel_ops::select(
            &rel,
            &[Predicate::AttrCmp(attrs[1], op, Value::Int(threshold))],
        );
        prop_assert_eq!(selected.flatten().canonical(), expected.canonical());
    }

    #[test]
    fn merge_implements_natural_join(
        l in prop::collection::vec((0i64..5, 0i64..5), 0..20),
        r in prop::collection::vec((0i64..5, 0i64..5), 0..20),
    ) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let b2 = c.intern("b2");
        let d = c.intern("d");
        let left = Relation::from_rows(
            Schema::new(vec![a, b]),
            l.iter().map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
        ).canonical();
        let right = Relation::from_rows(
            Schema::new(vec![b2, d]),
            r.iter().map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
        ).canonical();
        // FDB join: trie with join attr at the root on the left (swap b
        // up), product, merge roots.
        let lrep = FRep::from_relation(&left, FTree::path(&[b, a])).unwrap();
        let rrep = FRep::from_relation(&right, FTree::path(&[b2, d])).unwrap();
        let nb = lrep.ftree().roots()[0];
        let joined = ops::product(lrep, rrep);
        let nb2 = joined.ftree().roots()[1];
        let merged = ops::merge(joined, nb, nb2).unwrap();
        prop_assert!(merged.check_invariants().is_ok());
        // Compare against the relational natural join (b = b2), dropping
        // the duplicate column: the merged class exposes both b and b2
        // with equal values.
        let renamed_right = right.project_cols(&[b2, d]);
        let mut expected_rows: Vec<Vec<Value>> = Vec::new();
        for lr in left.rows() {
            for rr in renamed_right.rows() {
                if lr[1] == rr[0] {
                    expected_rows.push(vec![
                        lr[1].clone(), // b
                        rr[0].clone(), // b2 (equal)
                        lr[0].clone(), // a
                        rr[1].clone(), // d
                    ]);
                }
            }
        }
        let expected = Relation::from_rows(
            Schema::new(vec![b, b2, a, d]),
            expected_rows,
        ).canonical();
        let got = merged.flatten().project_cols(&[b, b2, a, d]).canonical();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn absorb_implements_equality_selection(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..4), 0..25),
    ) {
        let (_, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        let nx = rep.ftree().node_of_attr(attrs[0]).unwrap();
        let nz = rep.ftree().node_of_attr(attrs[2]).unwrap();
        let absorbed = ops::absorb(rep, nx, nz).unwrap();
        prop_assert!(absorbed.check_invariants().is_ok());
        let expected = rel_ops::select(&rel, &[Predicate::AttrEq(attrs[0], attrs[2])]);
        let got = absorbed.flatten().project_cols(&attrs).canonical();
        prop_assert_eq!(got, expected.canonical());
    }

    #[test]
    fn project_away_implements_projection(
        rows in prop::collection::vec((0i64..5, 0i64..5, 0i64..5), 0..25),
        victim in 0usize..3,
    ) {
        let (_, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        let projected = ops::project_away(rep, attrs[victim]).unwrap();
        prop_assert!(projected.check_invariants().is_ok());
        let keep: Vec<_> = attrs
            .iter()
            .copied()
            .filter(|&a| a != attrs[victim])
            .collect();
        let expected = rel_ops::project(&rel, &keep, true);
        let got = projected.flatten().project_cols(&keep).canonical();
        prop_assert_eq!(got, expected.canonical());
    }

    #[test]
    fn aggregate_matches_relational_group_aggregate(
        rows in prop::collection::vec((0i64..5, 0i64..5, -5i64..5), 0..25),
        func_pick in 0usize..4,
    ) {
        let (mut c, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        if rel.is_empty() {
            return Ok(());
        }
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        // γ over the subtree rooted at y: groups by x.
        let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
        let out = c.intern("out");
        let (fop, ffunc) = match func_pick {
            0 => (AggOp::Count, AggFunc::Count),
            1 => (AggOp::Sum(attrs[2]), AggFunc::Sum(attrs[2])),
            2 => (AggOp::Min(attrs[2]), AggFunc::Min(attrs[2])),
            _ => (AggOp::Max(attrs[2]), AggFunc::Max(attrs[2])),
        };
        let target = ops::AggTarget::subtree(rep.ftree(), ny);
        let agged = ops::aggregate(rep, &target, vec![fop], vec![out]).unwrap();
        prop_assert!(agged.check_invariants().is_ok());
        let expected = rel_ops::group_aggregate(
            &rel,
            &[attrs[0]],
            &[AggSpec::new(ffunc, out).into()],
            GroupStrategy::Sort,
        );
        let got = agged.flatten().project_cols(&[attrs[0], out]).canonical();
        prop_assert_eq!(got, expected.canonical());
    }

    #[test]
    fn parallel_aggregate_matches_relational_group_aggregate(
        rows in prop::collection::vec((0i64..5, 0i64..5, -5i64..5), 0..30),
        func_pick in 0usize..4,
        threads in 2usize..6,
    ) {
        // The parallel aggregation operator against relational ground
        // truth, on random data and random worker counts.
        let (mut c, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        if rel.is_empty() {
            return Ok(());
        }
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
        let out = c.intern("out");
        let (fop, ffunc) = match func_pick {
            0 => (AggOp::Count, AggFunc::Count),
            1 => (AggOp::Sum(attrs[2]), AggFunc::Sum(attrs[2])),
            2 => (AggOp::Min(attrs[2]), AggFunc::Min(attrs[2])),
            _ => (AggOp::Max(attrs[2]), AggFunc::Max(attrs[2])),
        };
        let target = ops::AggTarget::subtree(rep.ftree(), ny);
        let serial = ops::aggregate(rep.clone(), &target, vec![fop], vec![out]).unwrap();
        let par = ops::aggregate_par(rep, &target, vec![fop], vec![out], threads).unwrap();
        prop_assert!(par.check_invariants().is_ok());
        // Parallel ≡ serial structurally, not just as a set.
        prop_assert!(par.same_data(&serial));
        let expected = rel_ops::group_aggregate(
            &rel,
            &[attrs[0]],
            &[AggSpec::new(ffunc, out).into()],
            GroupStrategy::Sort,
        );
        let got = par.flatten().project_cols(&[attrs[0], out]).canonical();
        prop_assert_eq!(got, expected.canonical());
    }

    #[test]
    fn parallel_root_aggregate_matches_relational_global(
        rows in prop::collection::vec((0i64..5, 0i64..5, -5i64..5), 1..30),
        threads in 2usize..6,
    ) {
        // Root-level (single-group) reduction: the parallelism moves
        // inside the recursive evaluators.
        let (mut c, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        let out = c.intern("total");
        let roots = rep.ftree().roots().to_vec();
        let par = ops::aggregate_par(
            rep,
            &ops::AggTarget { parent: None, nodes: roots },
            vec![AggOp::Sum(attrs[2])],
            vec![out],
            threads,
        )
        .unwrap();
        let expected = rel_ops::group_aggregate(
            &rel,
            &[],
            &[AggSpec::new(AggFunc::Sum(attrs[2]), out).into()],
            GroupStrategy::Sort,
        );
        prop_assert_eq!(par.flatten().canonical(), expected.canonical());
    }

    #[test]
    fn swap_chains_preserve_semantics_and_invariants(
        rows in prop::collection::vec((0i64..4, 0i64..4, 0i64..4), 1..20),
        swaps in prop::collection::vec(any::<bool>(), 1..6),
    ) {
        let (_, attrs) = catalog3();
        let rel = rel3(&attrs, &rows);
        let mut rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        // Random walk over applicable swaps: every intermediate state must
        // be a valid representation of the same relation.
        for pick_first in swaps {
            let candidates: Vec<(fdb_core::NodeId, fdb_core::NodeId)> = rep
                .ftree()
                .live_nodes()
                .into_iter()
                .filter_map(|n| rep.ftree().node(n).parent.map(|p| (p, n)))
                .collect();
            if candidates.is_empty() {
                break;
            }
            let (p, n) = if pick_first {
                candidates[0]
            } else {
                candidates[candidates.len() - 1]
            };
            rep = ops::swap(rep, p, n).unwrap();
            prop_assert!(rep.check_invariants().is_ok());
            prop_assert!(rep.ftree().check_path_constraint().is_ok());
            prop_assert_eq!(
                rep.flatten().project_cols(&attrs).canonical(),
                rel.clone()
            );
        }
    }
}

#[test]
fn parallel_aggregate_empty_union_edge_case() {
    // Aggregating an empty relation must stay the empty relation on
    // every thread count (the only place empty unions are representable
    // is at the roots).
    let (mut c, attrs) = catalog3();
    let rel = Relation::empty(Schema::new(attrs.to_vec()));
    let out = c.intern("n");
    for threads in [1usize, 2, 4] {
        let rep = FRep::from_relation_with(&rel, FTree::path(&attrs), threads).unwrap();
        let roots = rep.ftree().roots().to_vec();
        let agged = ops::aggregate_par(
            rep,
            &ops::AggTarget {
                parent: None,
                nodes: roots,
            },
            vec![AggOp::Count],
            vec![out],
            threads,
        )
        .unwrap();
        assert!(agged.is_empty(), "threads={threads}");
        let expected = rel_ops::group_aggregate(
            &rel,
            &[],
            &[AggSpec::new(AggFunc::Count, out).into()],
            GroupStrategy::Sort,
        );
        assert!(expected.is_empty());
    }
}

#[test]
fn parallel_aggregate_single_child_union_edge_case() {
    // A parent union with exactly one entry: the entry-level fan-out is
    // degenerate, so parallelism must shift inside the evaluation and
    // still match relational ground truth.
    let (mut c, attrs) = catalog3();
    let rows: Vec<(i64, i64, i64)> = (0..24).map(|i| (7, i % 6, i % 4)).collect();
    let rel = rel3(&attrs, &rows);
    let out = c.intern("s");
    let expected = rel_ops::group_aggregate(
        &rel,
        &[attrs[0]],
        &[AggSpec::new(AggFunc::Sum(attrs[2]), out).into()],
        GroupStrategy::Sort,
    )
    .canonical();
    for threads in [1usize, 2, 4, 5] {
        let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
        assert_eq!(rep.root(0).len(), 1, "single x value");
        let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
        let target = ops::AggTarget::subtree(rep.ftree(), ny);
        let agged =
            ops::aggregate_par(rep, &target, vec![AggOp::Sum(attrs[2])], vec![out], threads)
                .unwrap();
        assert_eq!(
            agged.flatten().project_cols(&[attrs[0], out]).canonical(),
            expected,
            "threads={threads}"
        );
    }
}

#[test]
fn parallel_aggregate_skewed_child_sizes_edge_case() {
    // One group holds almost all the data, the rest are singletons: the
    // per-group fan-out is maximally unbalanced and must still agree
    // with relational ground truth and the serial operator.
    let (mut c, attrs) = catalog3();
    let mut rows: Vec<(i64, i64, i64)> = (0..90).map(|i| (0, i % 9, i % 7)).collect();
    rows.extend((1..12).map(|g| (g, 0, g)));
    let rel = rel3(&attrs, &rows);
    let out = c.intern("agg");
    for (fop, ffunc) in [
        (AggOp::Count, AggFunc::Count),
        (AggOp::Sum(attrs[2]), AggFunc::Sum(attrs[2])),
        (AggOp::Min(attrs[2]), AggFunc::Min(attrs[2])),
        (AggOp::Max(attrs[2]), AggFunc::Max(attrs[2])),
    ] {
        let expected = rel_ops::group_aggregate(
            &rel,
            &[attrs[0]],
            &[AggSpec::new(ffunc, out).into()],
            GroupStrategy::Sort,
        )
        .canonical();
        let serial = {
            let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
            let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
            let target = ops::AggTarget::subtree(rep.ftree(), ny);
            ops::aggregate(rep, &target, vec![fop], vec![out]).unwrap()
        };
        for threads in [2usize, 3, 4, 8] {
            let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
            let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
            let target = ops::AggTarget::subtree(rep.ftree(), ny);
            let par = ops::aggregate_par(rep, &target, vec![fop], vec![out], threads).unwrap();
            assert!(par.same_data(&serial), "threads={threads}");
            assert_eq!(
                par.flatten().project_cols(&[attrs[0], out]).canonical(),
                expected,
                "{fop:?} threads={threads}"
            );
        }
    }
}

#[test]
fn having_on_composite_aggregate_node() {
    // Selections on aggregate outputs must read the right component of a
    // composite (sum, count) value.
    let (mut c, attrs) = catalog3();
    let rel = rel3(
        &attrs,
        &[(1, 1, 4), (1, 2, 6), (2, 1, 1), (2, 2, 1), (2, 3, 1)],
    );
    let rep = FRep::from_relation(&rel, FTree::path(&attrs)).unwrap();
    let ny = rep.ftree().node_of_attr(attrs[1]).unwrap();
    let s = c.intern("s");
    let n = c.intern("n");
    let target = ops::AggTarget::subtree(rep.ftree(), ny);
    let agged = ops::aggregate(
        rep,
        &target,
        vec![AggOp::Sum(attrs[2]), AggOp::Count],
        vec![s, n],
    )
    .unwrap();
    // HAVING s > 5: keeps only x=1 (sum 10 vs sum 3).
    let filtered = ops::select_const(agged.clone(), s, CmpOp::Gt, &Value::Int(5)).unwrap();
    assert_eq!(filtered.tuple_count(), 1);
    // HAVING n >= 3: keeps only x=2 (count 3).
    let filtered = ops::select_const(agged, n, CmpOp::Ge, &Value::Int(3)).unwrap();
    assert_eq!(filtered.tuple_count(), 1);
    let flat = filtered.flatten();
    assert_eq!(flat.row(0)[0], Value::Int(2));
}

#[test]
fn aggregate_multiple_sibling_targets_at_once() {
    // γ over two sibling subtrees jointly: counts multiply (product
    // semantics) — build a branching tree x → {y, z}.
    let mut c = Catalog::new();
    let x = c.intern("x");
    let y = c.intern("y");
    let z = c.intern("z");
    let rows: Vec<Vec<Value>> = (0..2)
        .flat_map(|a| {
            (0..3).flat_map(move |b| {
                (0..2).map(move |d| vec![Value::Int(a), Value::Int(b), Value::Int(d)])
            })
        })
        .collect();
    let rel = Relation::from_rows(Schema::new(vec![x, y, z]), rows);
    let mut t = FTree::new();
    let nx = t.add_node(NodeLabel::Atomic(vec![x]), None);
    let ny = t.add_node(NodeLabel::Atomic(vec![y]), Some(nx));
    let nz = t.add_node(NodeLabel::Atomic(vec![z]), Some(nx));
    t.add_dep([x, y]);
    t.add_dep([x, z]);
    let rep = FRep::from_relation(&rel, t).unwrap();
    let out = c.intern("n");
    let agged = ops::aggregate(
        rep,
        &ops::AggTarget {
            parent: Some(nx),
            nodes: vec![ny, nz],
        },
        vec![AggOp::Count],
        vec![out],
    )
    .unwrap();
    // Each x group holds 3 × 2 = 6 tuples.
    let flat = agged.flatten();
    assert_eq!(flat.len(), 2);
    assert_eq!(flat.row(0)[1], Value::Int(6));
    assert_eq!(flat.row(1)[1], Value::Int(6));
}
