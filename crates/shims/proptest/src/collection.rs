//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for generated collections.
#[derive(Clone, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Generates a `Vec` whose elements come from `element` and whose length
/// falls in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`fn@vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = rng.gen_range(self.size.min..=self.size.max_inclusive);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
