//! Restructuring factorisations for group-by and order-by clauses (§4.2)
//! and the single-attribute consolidation of §5.2 step 7.
//!
//! Restructuring is planned at the f-tree level as a sequence of swaps and
//! applied to the representation by [`crate::ops::swap`]:
//!
//! * for grouping, every group attribute is pushed above all non-group
//!   attributes (greedy step 4);
//! * for ordering, additionally the order of the list must not contradict
//!   the root-to-leaf order (greedy step 5);
//! * step 7 arranges the remaining non-group subtrees under one parent so
//!   that a final aggregation operator can reduce them to a *single*
//!   aggregate attribute — required for HAVING and for ordering by the
//!   aggregation result (Q7 of the experiments).

use crate::error::{FdbError, Result};
use crate::frep::FRep;
use crate::ftree::{FTree, NodeId};
use crate::ops;
use fdb_relational::{AttrId, SortKey};

/// Plans the swaps that make Theorem 1 hold for `group`.
///
/// Returns `(parent, child)` pairs in application order; each swap lifts a
/// group node above a non-group parent. Every swap strictly decreases the
/// total depth of group nodes, so the loop terminates.
pub fn plan_group_swaps(tree: &FTree, group: &[AttrId]) -> Result<Vec<(NodeId, NodeId)>> {
    let mut scratch = tree.clone();
    let mut swaps = Vec::new();
    loop {
        let group_nodes = nodes_of(&scratch, group)?;
        let candidate = group_nodes.iter().find_map(|&n| {
            scratch
                .node(n)
                .parent
                .filter(|p| !group_nodes.contains(p))
                .map(|p| (p, n))
        });
        match candidate {
            None => break,
            Some((p, n)) => {
                scratch.swap(p, n)?;
                swaps.push((p, n));
            }
        }
    }
    Ok(swaps)
}

/// Plans the swaps that make Theorem 2 hold for the order list `keys`:
/// every order node becomes a root or a child of an earlier order node.
pub fn plan_order_swaps(tree: &FTree, keys: &[SortKey]) -> Result<Vec<(NodeId, NodeId)>> {
    let mut scratch = tree.clone();
    let mut swaps = Vec::new();
    loop {
        let order_nodes = nodes_of(&scratch, &keys.iter().map(|k| k.attr).collect::<Vec<_>>())?;
        // Find the first order node violating Theorem 2: its parent is not
        // an earlier order node (greedy step 5).
        let mut todo = None;
        for (i, &n) in order_nodes.iter().enumerate() {
            if let Some(p) = scratch.node(n).parent {
                if !order_nodes[..i].contains(&p) {
                    todo = Some((p, n));
                    break;
                }
            }
        }
        match todo {
            None => break,
            Some((p, n)) => {
                scratch.swap(p, n)?;
                swaps.push((p, n));
            }
        }
    }
    Ok(swaps)
}

/// Applies a planned swap sequence to a representation.
pub fn apply_swaps(mut rep: FRep, swaps: &[(NodeId, NodeId)]) -> Result<FRep> {
    for &(p, n) in swaps {
        rep = ops::swap(rep, p, n)?;
    }
    Ok(rep)
}

/// Restructures so that grouped enumeration by `group` is constant-delay.
pub fn restructure_for_group(rep: FRep, group: &[AttrId]) -> Result<FRep> {
    let swaps = plan_group_swaps(rep.ftree(), group)?;
    apply_swaps(rep, &swaps)
}

/// Restructures so that ordered enumeration by `keys` is constant-delay.
pub fn restructure_for_order(rep: FRep, keys: &[SortKey]) -> Result<FRep> {
    let swaps = plan_order_swaps(rep.ftree(), keys)?;
    apply_swaps(rep, &swaps)
}

/// What [`plan_consolidation`] computes: the swap sequence, then the
/// target parent and sibling subtrees for the consolidating `γ`.
pub type ConsolidationPlan = (Vec<(NodeId, NodeId)>, Option<NodeId>, Vec<NodeId>);

/// Plans §5.2 step 7: swaps that gather every node *not* exposing a
/// `group` attribute under a single parent, returning the swaps plus the
/// final target (parent, sibling subtrees) for the consolidating `γ`.
///
/// Fails when the non-group nodes live in different trees of the forest
/// with group roots in between — callers fall back to materialising.
pub fn plan_consolidation(tree: &FTree, group: &[AttrId]) -> Result<ConsolidationPlan> {
    let mut scratch = tree.clone();
    let mut swaps: Vec<(NodeId, NodeId)> = Vec::new();
    let group_nodes = nodes_of(&scratch, group)?;
    let value_nodes: Vec<NodeId> = scratch
        .live_nodes()
        .into_iter()
        .filter(|n| !group_nodes.contains(n))
        .collect();
    // `PlanningFailed`, not `InvalidOperator`: callers fall back to the
    // grouped (scenario-3) evaluation, which is exact here — with every
    // node a group node there are no partial aggregates left to gather
    // (e.g. `GROUP BY` over all attributes with only `COUNT(*)`).
    if value_nodes.is_empty() {
        return Err(FdbError::PlanningFailed(
            "nothing to consolidate: every node is a group node".into(),
        ));
    }
    // Iterate: find the LCA of all value nodes; while it is a group node
    // with group children on the paths to value nodes, lift those group
    // children above it.
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > 10_000 {
            return Err(FdbError::PlanningFailed(
                "consolidation did not converge".into(),
            ));
        }
        let value_nodes: Vec<NodeId> = scratch
            .live_nodes()
            .into_iter()
            .filter(|n| !group_nodes.contains(n))
            .collect();
        // Roots of the value forest: value nodes whose parent is a group
        // node or absent.
        let value_roots: Vec<NodeId> = value_nodes
            .iter()
            .copied()
            .filter(|&n| match scratch.node(n).parent {
                None => true,
                Some(p) => group_nodes.contains(&p),
            })
            .collect();
        let parents: Vec<Option<NodeId>> = value_roots
            .iter()
            .map(|&n| scratch.node(n).parent)
            .collect();
        if parents.iter().all(|p| p.is_none()) {
            return Ok((swaps, None, value_roots));
        }
        if parents.windows(2).all(|w| w[0] == w[1]) {
            // All value subtrees already hang under one parent.
            if let Some(Some(p)) = parents.first().copied() {
                // The parent must not have *group* children below which
                // more value nodes hide — value_roots covers all of them
                // by construction, so we are done.
                return Ok((swaps, Some(p), value_roots));
            }
        }
        // Mixed parents: lift a group node that sits on the path between
        // the deepest common region and a value root — concretely, lift
        // the deepest group parent of a value root above its own parent,
        // funnelling value subtrees towards a common ancestor.
        let deepest = value_roots
            .iter()
            .filter_map(|&n| scratch.node(n).parent.map(|p| (p, scratch.depth(p))))
            .max_by_key(|&(_, d)| d);
        match deepest {
            None => {
                return Err(FdbError::PlanningFailed(
                    "value subtrees split across forest roots".into(),
                ))
            }
            Some((gp, _)) => {
                match scratch.node(gp).parent {
                    None => {
                        return Err(FdbError::PlanningFailed(
                            "value subtrees split across forest roots".into(),
                        ))
                    }
                    Some(gpp) => {
                        // χ_{gpp, gp}: lift the group parent; its value
                        // children that depend on gpp sink to gpp,
                        // merging value regions.
                        scratch.swap(gpp, gp)?;
                        swaps.push((gpp, gp));
                    }
                }
            }
        }
    }
}

fn nodes_of(tree: &FTree, attrs: &[AttrId]) -> Result<Vec<NodeId>> {
    let mut nodes = Vec::new();
    for &a in attrs {
        let n = tree
            .node_of_attr(a)
            .ok_or_else(|| FdbError::Unresolved(format!("attribute {a} not in f-tree")))?;
        if !nodes.contains(&n) {
            nodes.push(n);
        }
    }
    Ok(nodes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enumerate::{supports_group, supports_order};
    use crate::ftree::NodeLabel;
    use fdb_relational::{Catalog, Relation, Schema, SortDir, Value};

    fn t1_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let customer = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
            ("Capricciosa", 1, "Mario", "base", 6),
            ("Capricciosa", 1, "Mario", "ham", 1),
            ("Capricciosa", 5, "Mario", "base", 6),
            ("Capricciosa", 5, "Mario", "ham", 1),
            ("Hawaii", 5, "Lucia", "base", 6),
            ("Hawaii", 5, "Pietro", "base", 6),
            ("Margherita", 2, "Mario", "base", 6),
        ];
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, customer, item, price]),
            rows.into_iter().map(|(p, d, cu, i, pr)| {
                vec![
                    Value::str(p),
                    Value::Int(d),
                    Value::str(cu),
                    Value::str(i),
                    Value::Int(pr),
                ]
            }),
        );
        let mut t = FTree::new();
        let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
        let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
        t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
        t.add_dep([customer, date, pizza]);
        t.add_dep([pizza, item]);
        t.add_dep([item, price]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        (c, rep)
    }

    #[test]
    fn example2_customer_order_restructuring() {
        // Example 2: the order (customer, pizza, item, price) is obtained
        // by pushing customer up past date and pizza; the item/price
        // branch is untouched.
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![
            SortKey::asc(a("customer")),
            SortKey::asc(a("pizza")),
            SortKey::asc(a("item")),
            SortKey::asc(a("price")),
        ];
        assert!(!supports_order(rep.ftree(), &keys));
        let swaps = plan_order_swaps(rep.ftree(), &keys).unwrap();
        assert_eq!(swaps.len(), 2); // customer past date, then past pizza
        let before: usize = rep.tuple_count();
        let out = apply_swaps(rep, &swaps).unwrap();
        out.check_invariants().unwrap();
        assert!(supports_order(out.ftree(), &keys));
        assert_eq!(out.tuple_count(), before);
        // And the enumeration really is sorted.
        let spec = crate::enumerate::EnumSpec::ordered(out.ftree(), &keys).unwrap();
        let rel = crate::enumerate::TupleIter::new(&out, &spec)
            .unwrap()
            .projected(&[a("customer"), a("pizza"), a("item"), a("price")], None)
            .unwrap();
        assert!(rel.is_sorted_by(&keys));
    }

    #[test]
    fn group_restructuring_lifts_group_nodes() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let group = vec![a("customer"), a("pizza")];
        assert!(!supports_group(rep.ftree(), &group));
        let out = restructure_for_group(rep, &group).unwrap();
        assert!(supports_group(out.ftree(), &group));
        out.check_invariants().unwrap();
    }

    #[test]
    fn already_supported_order_needs_no_swaps() {
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let keys = vec![
            SortKey {
                attr: a("pizza"),
                dir: SortDir::Asc,
            },
            SortKey {
                attr: a("date"),
                dir: SortDir::Desc,
            },
        ];
        let swaps = plan_order_swaps(rep.ftree(), &keys).unwrap();
        assert!(swaps.is_empty());
    }

    #[test]
    fn consolidation_under_single_group_node() {
        // Group by pizza: date-customer and item-price subtrees both hang
        // under pizza already; consolidation targets them directly.
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let (swaps, parent, targets) = plan_consolidation(rep.ftree(), &[a("pizza")]).unwrap();
        assert!(swaps.is_empty());
        assert_eq!(parent, rep.ftree().node_of_attr(a("pizza")));
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn consolidation_with_scattered_value_nodes() {
        // Group by customer after restructuring: the date node sits between
        // customer and the leaves; consolidation must lift group nodes so
        // that the value subtrees share a parent.
        let (c, rep) = t1_rep();
        let a = |n: &str| c.lookup(n).unwrap();
        let rep = restructure_for_group(rep, &[a("customer")]).unwrap();
        let (swaps, parent, targets) = plan_consolidation(rep.ftree(), &[a("customer")]).unwrap();
        let rep2 = apply_swaps(rep, &swaps).unwrap();
        rep2.check_invariants().unwrap();
        // All value subtrees now under the customer node.
        let cust_node = rep2.ftree().node_of_attr(a("customer")).unwrap();
        assert_eq!(parent, Some(cust_node));
        for &t in &targets {
            assert_eq!(rep2.ftree().node(t).parent, Some(cust_node));
        }
    }

    #[test]
    fn full_aggregation_consolidates_at_root() {
        let (_, rep) = t1_rep();
        let (swaps, parent, targets) = plan_consolidation(rep.ftree(), &[]).unwrap();
        assert!(swaps.is_empty());
        assert_eq!(parent, None);
        assert_eq!(targets, rep.ftree().roots().to_vec());
    }
}

#[cfg(test)]
mod consolidation_failure_tests {
    use super::*;
    use crate::ftree::{AggLabel, AggOp, NodeLabel};
    use fdb_relational::{AttrId, Catalog};

    /// Value subtrees in different *trees of the forest* cannot be
    /// consolidated by upward swaps: the planner must report failure so
    /// the engine can fall back to grouped evaluation.
    #[test]
    fn forest_split_value_nodes_fail_gracefully() {
        let mut c = Catalog::new();
        let g1 = c.intern("g1");
        let g2 = c.intern("g2");
        let v1 = c.intern("v1");
        let v2 = c.intern("v2");
        let mut t = FTree::new();
        let n1 = t.add_node(NodeLabel::Atomic(vec![g1]), None);
        let n2 = t.add_node(NodeLabel::Atomic(vec![g2]), None);
        let mk_leaf = |t: &mut FTree, parent, out: AttrId, over: AttrId| {
            t.add_node(
                NodeLabel::Agg(AggLabel {
                    funcs: vec![AggOp::Count],
                    over: [over].into_iter().collect(),
                    outputs: vec![out],
                }),
                Some(parent),
            )
        };
        let x1 = c.intern("x1");
        let x2 = c.intern("x2");
        mk_leaf(&mut t, n1, v1, x1);
        mk_leaf(&mut t, n2, v2, x2);
        t.add_dep([g1, v1]);
        t.add_dep([g2, v2]);
        let err = plan_consolidation(&t, &[g1, g2]);
        assert!(matches!(err, Err(FdbError::PlanningFailed(_))));
    }

    /// Partial aggregates pinned under different group nodes on one path
    /// (the R⋈S⋈T `GROUP BY b, c` shape) also fail — the swap loop must
    /// hit its guard, not spin forever.
    #[test]
    fn path_split_value_nodes_fail_gracefully() {
        let mut c = Catalog::new();
        let b = c.intern("b");
        let d = c.intern("d");
        let cnt_a = c.intern("count_a");
        let sum_d = c.intern("sum_d");
        let a_attr = c.intern("a");
        let d_over = c.intern("d_over");
        let mut t = FTree::new();
        let nb = t.add_node(NodeLabel::Atomic(vec![b]), None);
        let nc = t.add_node(NodeLabel::Atomic(vec![d]), Some(nb));
        t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Count],
                over: [a_attr].into_iter().collect(),
                outputs: vec![cnt_a],
            }),
            Some(nb),
        );
        t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Sum(d_over)],
                over: [d_over].into_iter().collect(),
                outputs: vec![sum_d],
            }),
            Some(nc),
        );
        t.add_dep([b, cnt_a]);
        t.add_dep([d, sum_d]);
        t.add_dep([b, d]);
        let result = plan_consolidation(&t, &[b, d]);
        assert!(matches!(result, Err(FdbError::PlanningFailed(_))));
    }
}
