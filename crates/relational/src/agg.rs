//! Aggregation function specifications, shared by the relational baselines
//! and (re-exported) by the factorised engine.
//!
//! The paper considers `sum`, `count`, `min` and `max`; `avg` is recovered as
//! the pair `(sum, count)` (§2, §3.2.4). [`AggFunc`] is the logical function
//! as written in a query; [`AggSpec`] pairs it with its output attribute,
//! matching the `̟G; α←F` notation.

use crate::attr::{AttrId, Catalog};
use crate::value::{Number, Value};
use std::fmt;

/// A logical aggregation function over one attribute (or none, for `count`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// Number of tuples in the group.
    Count,
    /// Sum of the attribute's values.
    Sum(AttrId),
    /// Minimum of the attribute's values.
    Min(AttrId),
    /// Maximum of the attribute's values.
    Max(AttrId),
    /// Average of the attribute's values; evaluated as `(sum, count)`.
    Avg(AttrId),
}

impl AggFunc {
    /// The aggregated attribute, if any (`count` has none).
    pub fn attr(&self) -> Option<AttrId> {
        match self {
            AggFunc::Count => None,
            AggFunc::Sum(a) | AggFunc::Min(a) | AggFunc::Max(a) | AggFunc::Avg(a) => Some(*a),
        }
    }

    /// Renders the function with attribute names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> AggFuncDisplay<'a> {
        AggFuncDisplay {
            func: self,
            catalog,
        }
    }

    /// Derived name used when a query does not alias the aggregate.
    pub fn derived_name(&self, catalog: &Catalog) -> String {
        match self {
            AggFunc::Count => "count(*)".to_string(),
            AggFunc::Sum(a) => format!("sum({})", catalog.name(*a)),
            AggFunc::Min(a) => format!("min({})", catalog.name(*a)),
            AggFunc::Max(a) => format!("max({})", catalog.name(*a)),
            AggFunc::Avg(a) => format!("avg({})", catalog.name(*a)),
        }
    }
}

/// Helper for [`AggFunc::display`].
pub struct AggFuncDisplay<'a> {
    func: &'a AggFunc,
    catalog: &'a Catalog,
}

impl fmt::Display for AggFuncDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.func.derived_name(self.catalog))
    }
}

/// One aggregate of a query: `α ← F`, i.e. function plus output attribute.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AggSpec {
    pub func: AggFunc,
    pub output: AttrId,
}

impl AggSpec {
    pub fn new(func: AggFunc, output: AttrId) -> Self {
        AggSpec { func, output }
    }
}

/// Running accumulator for one aggregation function.
///
/// Used by the relational baselines' scan-based aggregation; the factorised
/// engine evaluates aggregates recursively on factorisations instead
/// (`fdb-core::agg`).
#[derive(Clone, Debug)]
pub enum Accumulator {
    Count(u64),
    Sum(Number),
    Min(Option<Value>),
    Max(Option<Value>),
    Avg { sum: Number, count: u64 },
}

impl Accumulator {
    /// Fresh accumulator for `func`.
    pub fn new(func: AggFunc) -> Self {
        match func {
            AggFunc::Count => Accumulator::Count(0),
            AggFunc::Sum(_) => Accumulator::Sum(Number::ZERO),
            AggFunc::Min(_) => Accumulator::Min(None),
            AggFunc::Max(_) => Accumulator::Max(None),
            AggFunc::Avg(_) => Accumulator::Avg {
                sum: Number::ZERO,
                count: 0,
            },
        }
    }

    /// Folds one input value into the accumulator.
    ///
    /// For `count` the value is ignored (every tuple counts once); for the
    /// others it must be numeric or ordered as required.
    pub fn update(&mut self, value: Option<&Value>) {
        match self {
            Accumulator::Count(n) => *n += 1,
            Accumulator::Sum(acc) => {
                let v = value.expect("sum needs a value");
                let n = v.as_number().expect("sum over non-numeric value");
                *acc = acc.add(n);
            }
            Accumulator::Min(m) => {
                let v = value.expect("min needs a value");
                if m.as_ref().is_none_or(|cur| v < cur) {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Max(m) => {
                let v = value.expect("max needs a value");
                if m.as_ref().is_none_or(|cur| v > cur) {
                    *m = Some(v.clone());
                }
            }
            Accumulator::Avg { sum, count } => {
                let v = value.expect("avg needs a value");
                let n = v.as_number().expect("avg over non-numeric value");
                *sum = sum.add(n);
                *count += 1;
            }
        }
    }

    /// Finalises the accumulator into an output value.
    ///
    /// Groups are formed from existing tuples, so `min`/`max`/`avg` are never
    /// finalised empty; this is asserted.
    pub fn finish(self) -> Value {
        match self {
            Accumulator::Count(n) => Value::Int(n as i64),
            Accumulator::Sum(acc) => acc.into_value(),
            Accumulator::Min(m) => m.expect("min over empty group"),
            Accumulator::Max(m) => m.expect("max over empty group"),
            Accumulator::Avg { sum, count } => {
                assert!(count > 0, "avg over empty group");
                Value::Float(sum.to_f64() / count as f64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn count_accumulates_tuples() {
        let mut acc = Accumulator::new(AggFunc::Count);
        acc.update(None);
        acc.update(None);
        acc.update(None);
        assert_eq!(acc.finish(), Value::Int(3));
    }

    #[test]
    fn sum_widens_to_float() {
        let mut acc = Accumulator::new(AggFunc::Sum(AttrId(0)));
        acc.update(Some(&Value::Int(2)));
        acc.update(Some(&Value::Float(0.5)));
        assert_eq!(acc.finish(), Value::Float(2.5));
    }

    #[test]
    fn min_max_track_extremes() {
        let a = AttrId(0);
        let mut mn = Accumulator::new(AggFunc::Min(a));
        let mut mx = Accumulator::new(AggFunc::Max(a));
        for v in [5, 1, 9, 3] {
            mn.update(Some(&Value::Int(v)));
            mx.update(Some(&Value::Int(v)));
        }
        assert_eq!(mn.finish(), Value::Int(1));
        assert_eq!(mx.finish(), Value::Int(9));
    }

    #[test]
    fn avg_is_sum_over_count() {
        let mut acc = Accumulator::new(AggFunc::Avg(AttrId(0)));
        for v in [1, 2, 3, 4] {
            acc.update(Some(&Value::Int(v)));
        }
        assert_eq!(acc.finish(), Value::Float(2.5));
    }

    #[test]
    fn derived_names() {
        let mut c = Catalog::new();
        let p = c.intern("price");
        assert_eq!(AggFunc::Sum(p).derived_name(&c), "sum(price)");
        assert_eq!(AggFunc::Count.derived_name(&c), "count(*)");
        assert_eq!(AggFunc::Avg(p).display(&c).to_string(), "avg(price)");
    }
}
