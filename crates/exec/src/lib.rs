//! # fdb-exec — deterministic data parallelism for f-plan execution
//!
//! A dependency-free execution pool built on [`std::thread::scope`]. The
//! engines use it to partition work over the children of a top-level
//! union (the natural unit of work in a factorised database) and over
//! row ranges of flat relations.
//!
//! Work is scheduled **morsel-driven**: the input is carved into
//! ~[`MORSELS_PER_WORKER`]`× threads` small contiguous morsels (floor
//! one), each worker drains its own queue front-to-back and steals from
//! the back of other workers' queues once it runs dry. A skewed stage —
//! one giant union entry or group among many cheap ones — therefore
//! occupies one worker for one morsel while the rest of the input is
//! stolen and finished by the others, instead of serialising the whole
//! chunk that contains it.
//!
//! Design rules, chosen so that parallel runs are **differentially
//! testable** against serial runs:
//!
//! * `threads <= 1` (or fewer than two items) takes the exact serial
//!   code path — bit-identical to a build without this crate;
//! * every morsel writes into a pre-sized slot vector indexed by morsel
//!   id, and slots are concatenated in morsel order after the pool
//!   joins — results come back **in input order**, never in completion
//!   order, so a parallel map is a pure `map` regardless of scheduling
//!   or stealing;
//! * fallible maps report the error of the **first failing item in
//!   input order**, not whichever worker lost the race;
//! * the thread count only decides which worker computes which morsel —
//!   it never changes how partial results are combined. Callers that
//!   fold partials must pick a chunking independent of `threads` if
//!   their combine step is order-sensitive (see `fdb_core::agg`).
//!
//! Worker panics are propagated to the caller (the pool does not
//! swallow them), so `debug_assert!`s inside parallel sections still
//! fail tests. A panic mid-morsel cannot deadlock the scheduler:
//! claiming a morsel never blocks on another worker's progress.

use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::{Mutex, MutexGuard};

/// Hard ceiling on spawned workers per parallel call: far above any
/// useful oversubscription, far below OS thread limits, so an absurd
/// `--threads` value degrades instead of aborting the process.
pub const MAX_WORKERS: usize = 256;

/// Morsels carved per worker in a parallel stage. ~4× oversubscription
/// is the skew-aware sizing rule: fine enough that a single expensive
/// morsel strands at most `1/(4·threads)` of the input on its worker,
/// coarse enough that queue traffic stays negligible next to real work.
pub const MORSELS_PER_WORKER: usize = 4;

/// Resolves a requested thread count: `0` means "use the machine"
/// ([`std::thread::available_parallelism`]), anything else is taken
/// literally up to [`MAX_WORKERS`]. Never returns 0.
pub fn effective_threads(requested: usize) -> usize {
    match requested {
        0 => std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1),
        n => n.min(MAX_WORKERS),
    }
}

/// Number of morsels a stage over `items` items should be carved into
/// for `threads` workers: `MORSELS_PER_WORKER × threads`, floor 1,
/// never more than the item count.
pub fn morsel_count(items: usize, threads: usize) -> usize {
    let workers = threads.clamp(1, MAX_WORKERS);
    (workers * MORSELS_PER_WORKER).clamp(1, items.max(1))
}

/// Splits `items` into at most `parts` contiguous chunks of
/// near-equal length, preserving order. `parts` is clamped to at
/// least 1; fewer chunks are returned when there are fewer items.
pub fn split_chunks<T>(items: Vec<T>, parts: usize) -> Vec<Vec<T>> {
    let parts = parts.max(1);
    let n = items.len();
    if n == 0 {
        return Vec::new();
    }
    let chunk = n.div_ceil(parts);
    let mut out = Vec::with_capacity(parts);
    let mut it = items.into_iter();
    loop {
        let c: Vec<T> = it.by_ref().take(chunk).collect();
        if c.is_empty() {
            break;
        }
        out.push(c);
    }
    out
}

/// Splits `items` into [`morsel_count`] contiguous chunks — the
/// morsel-granularity counterpart of [`split_chunks`] for callers that
/// carve their own work units (construction groups, sort runs, hash
/// partitions) and hand the chunks to [`parallel_map`]. One near-equal
/// chunk per worker (the legacy static carve) strands a skewed chunk's
/// siblings behind it; ~4× threads chunks let the scheduler rebalance.
pub fn split_morsels<T>(items: Vec<T>, threads: usize) -> Vec<Vec<T>> {
    let parts = morsel_count(items.len(), threads);
    split_chunks(items, parts)
}

/// Locks ignoring poisoning: the pool's mutexes guard plain data slots
/// and are never held across user code, so a panicking sibling worker
/// leaves them consistent.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Claims the next morsel id for worker `w`: own queue from the front
/// (keeping each worker on its contiguous, cache-warm input range),
/// then victims round-robin from `w + 1`, stealing from the **back** so
/// owner and thief contend on opposite ends of a queue.
fn claim(w: usize, queues: &[Mutex<VecDeque<usize>>]) -> Option<usize> {
    if let Some(id) = lock(&queues[w]).pop_front() {
        return Some(id);
    }
    let n = queues.len();
    for v in 1..n {
        if let Some(id) = lock(&queues[(w + v) % n]).pop_back() {
            return Some(id);
        }
    }
    None
}

/// Maps `f` over `items` on up to `threads` worker threads, returning
/// the results **in input order**.
///
/// With `threads <= 1` or fewer than two items this is exactly
/// `items.into_iter().map(f).collect()` on the calling thread.
/// Otherwise the items are carved into ~[`MORSELS_PER_WORKER`]`×
/// threads` morsels and drained work-stealing (see the crate docs).
pub fn parallel_map<T, R, F>(threads: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_grained(threads, MORSELS_PER_WORKER, items, f)
}

/// [`parallel_map`] with an explicit morsels-per-worker granularity.
///
/// `morsels_per_worker == 1` reproduces the legacy static carve — one
/// contiguous chunk per worker, so stealing never fires — and is kept
/// as the A/B baseline for scheduler benchmarks and pathology tests.
/// All contracts (order preservation, panic propagation, serial path)
/// are identical regardless of granularity.
pub fn parallel_map_grained<T, R, F>(
    threads: usize,
    morsels_per_worker: usize,
    items: Vec<T>,
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let n_items = items.len();
    let workers = threads.min(MAX_WORKERS);
    let parts = (workers * morsels_per_worker.max(1)).clamp(1, n_items);
    let morsels = split_chunks(items, parts);
    let n_morsels = morsels.len();
    let workers = workers.min(n_morsels);
    // Input chunks are taken (once) by the claiming worker; output slots
    // are written (once) per morsel. Both are indexed by morsel id, so
    // concatenating the slots in id order restores input order no
    // matter which worker ran which morsel.
    let input: Vec<Mutex<Option<Vec<T>>>> =
        morsels.into_iter().map(|m| Mutex::new(Some(m))).collect();
    let output: Vec<Mutex<Option<Vec<R>>>> = (0..n_morsels).map(|_| Mutex::new(None)).collect();
    // Per-worker deques seeded with contiguous blocks of morsel ids:
    // each worker starts on its own input range and steals only when
    // that range is drained.
    let queues: Vec<Mutex<VecDeque<usize>>> = split_chunks((0..n_morsels).collect(), workers)
        .into_iter()
        .map(|ids| Mutex::new(ids.into_iter().collect()))
        .collect();
    // split_chunks may produce fewer blocks than workers (ceil-division
    // rounding); spawn exactly one worker per seeded queue.
    let workers = queues.len();
    let (f, input, output_ref, queues) = (&f, &input, &output, &queues);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                s.spawn(move || {
                    while let Some(id) = claim(w, queues) {
                        let chunk = lock(&input[id]).take().expect("morsel claimed twice");
                        let done: Vec<R> = chunk.into_iter().map(f).collect();
                        *lock(&output_ref[id]) = Some(done);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("fdb-exec worker panicked");
        }
    });
    let mut out = Vec::with_capacity(n_items);
    for slot in output {
        let done = slot
            .into_inner()
            .unwrap_or_else(|e| e.into_inner())
            .expect("morsel not completed");
        out.extend(done);
    }
    out
}

/// Fallible [`parallel_map`]: every item is attempted, and on failure
/// the error of the first failing item **in input order** is returned
/// (deterministic regardless of scheduling).
pub fn try_parallel_map<T, R, E, F>(threads: usize, items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    if threads <= 1 || items.len() < 2 {
        return items.into_iter().map(f).collect();
    }
    let results = parallel_map(threads, items, f);
    results.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Condvar;
    use std::thread::ThreadId;
    use std::time::Duration;

    #[test]
    fn effective_threads_resolves_zero() {
        assert!(effective_threads(0) >= 1);
        assert_eq!(effective_threads(3), 3);
    }

    #[test]
    fn split_chunks_covers_all_items_in_order() {
        for parts in 1..8 {
            for n in 0..20 {
                let items: Vec<usize> = (0..n).collect();
                let chunks = split_chunks(items.clone(), parts);
                assert!(chunks.len() <= parts);
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, items, "parts={parts} n={n}");
            }
        }
    }

    #[test]
    fn morsel_count_sizing_rule() {
        // ~4× threads morsels, floor 1, never more than the item count.
        assert_eq!(morsel_count(1000, 4), 16);
        assert_eq!(morsel_count(1000, 1), 4);
        assert_eq!(morsel_count(3, 4), 3);
        assert_eq!(morsel_count(1, 8), 1);
        assert_eq!(morsel_count(0, 8), 1);
        assert_eq!(morsel_count(1000, 0), 4); // threads clamped to >= 1
    }

    #[test]
    fn split_morsels_covers_all_items_in_order() {
        for threads in [1, 2, 4] {
            for n in [0usize, 1, 5, 100] {
                let items: Vec<usize> = (0..n).collect();
                let chunks = split_morsels(items.clone(), threads);
                assert!(chunks.len() <= morsel_count(n, threads));
                let flat: Vec<usize> = chunks.into_iter().flatten().collect();
                assert_eq!(flat, items, "threads={threads} n={n}");
            }
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        for threads in [1, 2, 3, 4, 7] {
            let out = parallel_map(threads, (0..100).collect::<Vec<i64>>(), |x| x * 2);
            assert_eq!(out, (0..100).map(|x| x * 2).collect::<Vec<i64>>());
        }
    }

    #[test]
    fn parallel_map_runs_every_item_once() {
        let counter = AtomicUsize::new(0);
        let out = parallel_map(4, (0..57).collect::<Vec<usize>>(), |x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(out.len(), 57);
        assert_eq!(counter.load(Ordering::SeqCst), 57);
    }

    #[test]
    fn try_parallel_map_reports_first_error_in_input_order() {
        for threads in [1, 2, 4] {
            let r: Result<Vec<i64>, String> =
                try_parallel_map(threads, (0..40).collect::<Vec<i64>>(), |x| {
                    if x == 7 || x == 31 {
                        Err(format!("bad {x}"))
                    } else {
                        Ok(x)
                    }
                });
            assert_eq!(r, Err("bad 7".to_string()), "threads={threads}");
        }
    }

    #[test]
    fn absurd_thread_counts_are_clamped() {
        assert_eq!(effective_threads(1_000_000), MAX_WORKERS);
        let out = parallel_map(1_000_000, (0..500).collect::<Vec<i64>>(), |x| x + 1);
        assert_eq!(out, (1..=500).collect::<Vec<i64>>());
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let out: Vec<i32> = parallel_map(4, Vec::new(), |x: i32| x);
        assert!(out.is_empty());
        let out = parallel_map(4, vec![9], |x: i32| x + 1);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn static_grained_map_matches_serial() {
        // morsels_per_worker == 1 is the legacy one-chunk-per-worker
        // carve; it must satisfy the same order contract.
        for threads in [2, 4] {
            let out = parallel_map_grained(threads, 1, (0..101).collect::<Vec<i64>>(), |x| x * 3);
            assert_eq!(out, (0..101).map(|x| x * 3).collect::<Vec<i64>>());
        }
    }

    /// Skewed workload: one item vastly more expensive than the other
    /// 63 (here: it *blocks* until the 60 items outside its morsel are
    /// done, which a static carve can never satisfy — worker 0 would
    /// hold items 1..16 hostage behind it). Under morsel stealing the
    /// giant's worker is pinned to exactly its own 4-item morsel while
    /// the remaining 15 morsels drain on the other workers.
    #[test]
    fn skewed_giant_item_load_balances() {
        const N: usize = 64; // threads=4 × 4 morsels/worker → 16 morsels of 4
        let outside_giants_morsel = N - 4;
        let progress = (Mutex::new(0usize), Condvar::new());
        let count_at_claim = AtomicUsize::new(usize::MAX);
        let by_thread: Mutex<HashMap<ThreadId, Vec<usize>>> = Mutex::new(HashMap::new());
        let out = parallel_map(4, (0..N).collect::<Vec<usize>>(), |x| {
            by_thread
                .lock()
                .unwrap()
                .entry(std::thread::current().id())
                .or_default()
                .push(x);
            if x == 0 {
                let (count, cv) = &progress;
                let g = count.lock().unwrap();
                count_at_claim.store(*g, Ordering::SeqCst);
                let (_g, timeout) = cv
                    .wait_timeout_while(g, Duration::from_secs(30), |c| *c < outside_giants_morsel)
                    .unwrap();
                assert!(
                    !timeout.timed_out(),
                    "giant item starved: siblings were not stolen"
                );
            } else {
                let (count, cv) = &progress;
                *count.lock().unwrap() += 1;
                cv.notify_all();
            }
            x
        });
        assert_eq!(out, (0..N).collect::<Vec<usize>>());
        let by_thread = by_thread.into_inner().unwrap();
        // After the giant woke, everything outside its morsel was
        // already finished elsewhere — its worker runs only the rest of
        // its own morsel {1,2,3} and finds nothing left to steal.
        let giants = by_thread
            .values()
            .find(|v| v.contains(&0))
            .expect("item 0 ran");
        let pos = giants.iter().position(|&v| v == 0).unwrap();
        assert_eq!(&giants[pos..], &[0, 1, 2, 3]);
        // If the giant had to wait at all, another worker necessarily
        // finished the outstanding items for it.
        if count_at_claim.load(Ordering::SeqCst) < outside_giants_morsel {
            assert!(by_thread.len() >= 2, "no stealing happened");
        }
    }

    /// Stealing must not introduce run-to-run nondeterminism: two
    /// parallel runs with jittered per-item cost agree with each other
    /// and with the serial path, bit for bit.
    #[test]
    fn two_runs_agree_under_stealing() {
        let jittered = |x: i64| {
            // Uneven spin so morsels finish out of order across runs.
            let spins = (x * x) % 977;
            let mut acc = x;
            for i in 0..spins {
                acc = acc.wrapping_mul(31).wrapping_add(i);
                std::hint::black_box(acc);
            }
            acc
        };
        let serial: Vec<i64> = (0..300).map(jittered).collect();
        let run1 = parallel_map(4, (0..300).collect::<Vec<i64>>(), jittered);
        let run2 = parallel_map(4, (0..300).collect::<Vec<i64>>(), jittered);
        assert_eq!(run1, serial);
        assert_eq!(run2, serial);
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panic_propagates() {
        let _ = parallel_map(2, (0..10).collect::<Vec<i32>>(), |x| {
            assert!(x != 5, "boom");
            x
        });
    }

    /// A panic mid-morsel (not at a chunk boundary) propagates and the
    /// scheduler still drains: the pool joins every worker rather than
    /// deadlocking on the dead one's queue.
    #[test]
    #[should_panic(expected = "worker panicked")]
    fn panic_mid_morsel_does_not_deadlock() {
        let done = AtomicUsize::new(0);
        let _ = parallel_map(4, (0..64).collect::<Vec<i32>>(), |x| {
            assert!(x != 37, "mid-morsel boom");
            done.fetch_add(1, Ordering::SeqCst);
            x
        });
    }
}
