//! Offline stand-in for the crates.io `rand` crate.
//!
//! The build environment has no network access, so this workspace ships a
//! minimal, API-compatible subset of `rand` 0.8 covering exactly what the
//! workload generators use: [`Rng::gen_bool`], [`Rng::gen_range`] over
//! half-open and inclusive integer ranges, and [`rngs::StdRng`] seeded via
//! [`SeedableRng::seed_from_u64`].
//!
//! `StdRng` here is xoshiro256** seeded through SplitMix64 — a different
//! stream than upstream's ChaCha12, but the workspace only relies on
//! determinism per seed, never on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core entropy source: 64-bit output, 32-bit convenience.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        // 53 random mantissa bits, uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Ranges that can produce a uniform sample.
pub trait SampleRange<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased-enough uniform draw from `[0, span)` via 128-bit widening
/// multiply (Lemire's method without the rejection step; bias ≤ 2⁻⁶⁴).
fn below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + below(rng, span) as i128) as $ty
            }
        }
        impl SampleRange<$ty> for RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Full-width range: every u64 pattern is a valid sample.
                    return rng.next_u64() as $ty;
                }
                (lo as i128 + below(rng, span as u64) as i128) as $ty
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic PRNG: xoshiro256** with SplitMix64 seeding.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(mut state: u64) -> Self {
            StdRng {
                s: [
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                    splitmix64(&mut state),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..9);
            assert!((3..9).contains(&v));
            let w = rng.gen_range(0u32..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(7);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "heads={heads}");
    }
}
