//! Figure 5 — all AGG queries on the (factorised) materialised view at a
//! fixed scale (Experiment 1).
//!
//! Q1–Q5 with four engine flavours: `FDB f/o` (factorised output — for Q1
//! the win over flat output is the enumeration cost of the large result),
//! `FDB` (flat output, like the relational engines), and the two
//! relational baselines. The extended aggregate surface (QD/QP/QB/QK/QG:
//! distinct, product, quantifiers, top-k-per-group, ROLLUP) runs through
//! the same sweep so the perf-smoke gate covers the new evaluators.
//!
//! `cargo run --release -p fdb-bench --bin fig5 -- --scale 8`
//!
//! `--threads N` runs both engine families on an N-worker pool;
//! `--json PATH` additionally writes the rows as a machine-readable
//! results file (`BENCH_s1.json` in the repo root is the recorded
//! `--scale 1 --threads 1` baseline).

use fdb_bench::{extended_agg_queries, median_secs, paper_queries, Args, BenchSetup, QueryClass};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(4, 4);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Figure 5: AGG queries on the materialised view R1 at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: true,
        threads: args.threads,
    }
    .build();
    println!(
        "# flat view {} tuples, factorised view {} singletons ({} arena bytes), {} worker thread(s)",
        env.flat_tuples, env.view_singletons, env.view_bytes, env.threads
    );
    let attrs = env.attrs;
    let mut queries = paper_queries(&mut env.fdb.catalog, &attrs);
    // The extended aggregate surface rides on the same sweep (and the
    // same perf-smoke gate): QD/QP/QB/QK/QG after Q1–Q5.
    queries.extend(extended_agg_queries(&mut env.fdb.catalog, &attrs));
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    for q in queries
        .iter()
        .filter(|q| q.class == QueryClass::Agg || q.class == QueryClass::AggExt)
    {
        let ((st, exec), t) = median_secs(args.repeats, || env.run_fdb_fo_report(&q.task));
        emit.row(
            "5",
            scale,
            q.name,
            "FDB f/o",
            t,
            &format!(
                "singletons={} bytes={} ibytes={} copies_avoided={}",
                st.singletons, st.bytes, exec.intermediate_bytes, exec.copies_avoided
            ),
        );
        let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
        emit.row("5", scale, q.name, "FDB", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive)
        });
        emit.row("5", scale, q.name, "RDB sort", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive)
        });
        emit.row("5", scale, q.name, "RDB hash", t, &format!("rows={n}"));
    }
    emit.finish();
}
