//! End-to-end ordering behaviour (§4, Experiments 3–4): supported orders
//! stream with constant delay, unsupported orders restructure, LIMIT
//! stops enumeration early, and mixed asc/desc orders work throughout.

mod common;

use common::pizzeria_engines;
use fdb::core::engine::FdbEngine;
use fdb::relational::planner::JoinAggTask;
use fdb::relational::{SortDir, SortKey, Value};
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::Catalog;

/// A small orders environment with the factorised view registered.
fn orders_engine(scale: u32) -> (FdbEngine, fdb::workload::orders::OrdersDataset) {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale,
            customers: 12,
            seed: 99,
        },
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_view("R1", ds.factorised_view());
    (engine, ds)
}

fn assert_streams_sorted(
    engine: &mut FdbEngine,
    task: &JoinAggTask,
    keys: &[SortKey],
    expect_in_tree: bool,
) {
    let result = engine.run_default(task).expect("plans");
    assert_eq!(
        result.order_supported_in_tree(),
        expect_in_tree,
        "order-in-tree flag"
    );
    let rel = result.to_relation().expect("enumerates");
    assert!(rel.is_sorted_by(keys), "output must be sorted");
    assert!(!rel.is_empty());
}

#[test]
fn stored_order_streams_without_restructuring() {
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let keys = vec![
        SortKey::asc(a.package),
        SortKey::asc(a.date),
        SortKey::asc(a.item),
    ];
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.date, a.item]),
        order_by: keys.clone(),
        ..Default::default()
    };
    assert_streams_sorted(&mut e, &task, &keys, true);
}

#[test]
fn alternative_supported_order_is_free() {
    // (package, item, date): the other branch order T supports (Q11).
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let keys = vec![
        SortKey::asc(a.package),
        SortKey::asc(a.item),
        SortKey::asc(a.date),
    ];
    assert!(fdb::core::enumerate::supports_order(
        e.view("R1").unwrap().ftree(),
        &keys
    ));
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.item, a.date]),
        order_by: keys.clone(),
        ..Default::default()
    };
    assert_streams_sorted(&mut e, &task, &keys, true);
}

#[test]
fn unsupported_order_restructures_then_streams() {
    // (date, package, item) needs one swap (Q12).
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let keys = vec![
        SortKey::asc(a.date),
        SortKey::asc(a.package),
        SortKey::asc(a.item),
    ];
    assert!(!fdb::core::enumerate::supports_order(
        e.view("R1").unwrap().ftree(),
        &keys
    ));
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.date, a.package, a.item]),
        order_by: keys.clone(),
        ..Default::default()
    };
    assert_streams_sorted(&mut e, &task, &keys, true);
}

#[test]
fn mixed_asc_desc_orders() {
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let keys = vec![
        SortKey {
            attr: a.package,
            dir: SortDir::Desc,
        },
        SortKey {
            attr: a.date,
            dir: SortDir::Asc,
        },
        SortKey {
            attr: a.customer,
            dir: SortDir::Desc,
        },
    ];
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.date, a.customer]),
        order_by: keys.clone(),
        ..Default::default()
    };
    assert_streams_sorted(&mut e, &task, &keys, true);
}

#[test]
fn limit_truncates_streamed_enumeration() {
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let keys = vec![SortKey::asc(a.package), SortKey::asc(a.item)];
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.item]),
        order_by: keys.clone(),
        limit: Some(7),
        ..Default::default()
    };
    let rel = e.run_default(&task).unwrap().to_relation().unwrap();
    assert_eq!(rel.len(), 7);
    assert!(rel.is_sorted_by(&keys));
}

#[test]
fn limit_zero_is_empty() {
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package]),
        limit: Some(0),
        ..Default::default()
    };
    let rel = e.run_default(&task).unwrap().to_relation().unwrap();
    assert!(rel.is_empty());
}

#[test]
fn grouped_aggregate_ordered_by_group_prefix() {
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let total = e.catalog.intern("total");
    let keys = vec![SortKey::asc(a.package), SortKey::asc(a.date)];
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.package, a.date],
        aggregates: vec![fdb::relational::AggSpec::new(
            fdb::relational::AggFunc::Sum(a.price),
            total,
        )],
        order_by: keys.clone(),
        ..Default::default()
    };
    assert_streams_sorted(&mut e, &task, &keys, true);
}

#[test]
fn order_by_avg_falls_back_to_sort() {
    // avg is a derived (divided) column: the factorisation cannot realise
    // this order, so the engine must sort the materialised result — and
    // say so via `order_supported_in_tree`.
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let m = e.catalog.intern("mean_price");
    let keys = vec![SortKey::desc(m)];
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.package],
        aggregates: vec![fdb::relational::AggSpec::new(
            fdb::relational::AggFunc::Avg(a.price),
            m,
        )],
        order_by: keys.clone(),
        ..Default::default()
    };
    let result = e.run_default(&task).unwrap();
    assert!(!result.order_supported_in_tree());
    let rel = result.to_relation().unwrap();
    assert!(rel.is_sorted_by(&keys));
}

#[test]
fn q13_partial_resort_of_orders_trie() {
    // R3 = o_{date,customer,package}(Orders), re-sorted by (customer,
    // date, package): one swap; the package lists stay sorted.
    let (mut e, ds) = orders_engine(1);
    let a = ds.attrs;
    let mut r3 = ds.orders.project_cols(&[a.date, a.customer, a.package]);
    r3.sort_by_keys(&[
        SortKey::asc(a.date),
        SortKey::asc(a.customer),
        SortKey::asc(a.package),
    ]);
    let rep = fdb::core::frep::FRep::from_relation(
        &r3,
        fdb::FTree::path(&[a.date, a.customer, a.package]),
    )
    .unwrap();
    let before = rep.tuple_count();
    e.register_view("R3", rep);
    let keys = vec![
        SortKey::asc(a.customer),
        SortKey::asc(a.date),
        SortKey::asc(a.package),
    ];
    let task = JoinAggTask {
        inputs: vec!["R3".into()],
        projection: Some(vec![a.customer, a.date, a.package]),
        order_by: keys.clone(),
        ..Default::default()
    };
    let result = e.run_default(&task).unwrap();
    assert!(result.order_supported_in_tree());
    let rel = result.to_relation().unwrap();
    assert_eq!(rel.len(), before);
    assert!(rel.is_sorted_by(&keys));
}

#[test]
fn pizzeria_supported_and_unsupported_orders() {
    // The Example 9 orders, end to end through SQL.
    let mut e = pizzeria_engines();
    for (sql, sorted_cols) in [
        (
            "SELECT pizza, date, customer FROM Orders, Pizzas, Items \
             ORDER BY pizza, date, customer",
            3,
        ),
        (
            "SELECT pizza, item, price FROM Pizzas, Items \
             ORDER BY pizza, item, price",
            3,
        ),
        (
            // Needs restructuring: customer is not a root of T1.
            "SELECT customer, pizza FROM Orders, Pizzas \
             ORDER BY customer DESC, pizza",
            2,
        ),
    ] {
        let out = e.run_fdb(sql);
        assert!(out.len() > 1, "{sql}");
        assert_eq!(out.arity(), sorted_cols);
        // Verify sortedness against the declared keys by re-parsing.
        let schemas = e.fdb.schemas();
        let q = fdb::parse(sql, &mut e.fdb.catalog, &schemas).unwrap();
        assert!(out.is_sorted_by(&q.order_by), "{sql}");
    }
}

#[test]
fn parallel_runs_are_deterministic_including_limit_ties() {
    // Two back-to-back parallel runs with the same seed and threads = 4
    // must yield byte-identical results — including `ORDER BY … LIMIT`
    // where several groups tie at the cut, the classic nondeterminism
    // trap for parallel engines. The dataset is built so that revenue
    // ties: customers 0..8 pair up with equal totals.
    use fdb::core::engine::RunOptions;
    use fdb::relational::{Relation, Schema};

    let build = || {
        let mut catalog = Catalog::new();
        let customer = catalog.intern("customer");
        let order_id = catalog.intern("order_id");
        let amount = catalog.intern("amount");
        // customer c gets orders summing to 100 * (c / 2): consecutive
        // pairs of customers tie exactly.
        let rows: Vec<Vec<Value>> = (0..8i64)
            .flat_map(|c| {
                (0..4i64).map(move |o| {
                    vec![
                        Value::Int(c),
                        Value::Int(c * 10 + o),
                        Value::Int(25 * (c / 2)),
                    ]
                })
            })
            .collect();
        let sales = Relation::from_rows(Schema::new(vec![customer, order_id, amount]), rows);
        let mut e = FdbEngine::new(catalog);
        e.register_relation("Sales", sales);
        e
    };

    let task = |e: &mut FdbEngine| {
        let customer = e.catalog.lookup("customer").unwrap();
        let amount = e.catalog.lookup("amount").unwrap();
        let revenue = e.catalog.intern("revenue");
        JoinAggTask {
            inputs: vec!["Sales".into()],
            group_by: vec![customer],
            aggregates: vec![fdb::relational::AggSpec::new(
                fdb::relational::AggFunc::Sum(amount),
                revenue,
            )],
            order_by: vec![SortKey::desc(revenue), SortKey::asc(customer)],
            limit: Some(3),
            ..Default::default()
        }
    };

    // Serial reference: threads = 1 on a fresh engine.
    let mut e1 = build();
    let t1 = task(&mut e1);
    let serial = e1.run_default(&t1).unwrap().to_relation().unwrap();
    assert_eq!(serial.len(), 3);

    // Two identical parallel runs on fresh engines.
    let mut runs = Vec::new();
    for _ in 0..2 {
        let mut e = build();
        let t = task(&mut e);
        let out = e
            .run(&t, RunOptions::with_threads(4))
            .unwrap()
            .to_relation()
            .unwrap();
        runs.push(out);
    }
    assert_eq!(runs[0], runs[1], "two parallel runs diverged");
    assert_eq!(runs[0], serial, "parallel differs from serial");

    // The same discipline with the tie *at* the LIMIT cut and no
    // tiebreaker key: the stable sort must resolve it identically in
    // serial and parallel runs.
    let tie_task = |e: &mut FdbEngine| {
        let mut t = task(e);
        t.order_by.truncate(1); // ORDER BY revenue DESC only
        t.limit = Some(5); // cuts inside a tie pair
        t
    };
    let mut es = build();
    let ts = tie_task(&mut es);
    let serial_tie = es.run_default(&ts).unwrap().to_relation().unwrap();
    for _ in 0..2 {
        let mut e = build();
        let t = tie_task(&mut e);
        let out = e
            .run(&t, RunOptions::with_threads(4))
            .unwrap()
            .to_relation()
            .unwrap();
        assert_eq!(out, serial_tie, "tie at the LIMIT cut diverged");
    }
}

#[test]
fn top1_revenue_query_streams_single_group() {
    let mut e = pizzeria_engines();
    let out = e.run_fdb(
        "SELECT customer, SUM(price) AS revenue FROM Orders, Pizzas, Items \
         GROUP BY customer ORDER BY revenue DESC LIMIT 1",
    );
    assert_eq!(out.len(), 1);
    assert_eq!(out.row(0)[0], Value::str("Mario"));
}
