//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Picks uniformly from a fixed list of options.
pub fn select<T: Clone + std::fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// See [`select`].
#[derive(Clone, Debug)]
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + std::fmt::Debug> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}
