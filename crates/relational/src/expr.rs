//! Selection predicates.
//!
//! The paper's selection conditions are conjunctions of equalities `Ai = Aj`
//! and comparisons `Ai θ c` with a constant `c` (§2). [`Predicate`] models
//! one conjunct; plans carry conjunctions as `Vec<Predicate>`.

use crate::attr::{AttrId, Catalog};
use crate::schema::Schema;
use crate::value::Value;
use std::cmp::Ordering;
use std::fmt;

/// Binary comparison operator `θ`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Evaluates the operator on an `Ordering` of `lhs.cmp(rhs)`.
    #[inline]
    pub fn eval(self, ord: Ordering) -> bool {
        match self {
            CmpOp::Eq => ord == Ordering::Equal,
            CmpOp::Ne => ord != Ordering::Equal,
            CmpOp::Lt => ord == Ordering::Less,
            CmpOp::Le => ord != Ordering::Greater,
            CmpOp::Gt => ord == Ordering::Greater,
            CmpOp::Ge => ord != Ordering::Less,
        }
    }

    /// Parser-facing symbol.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "<>",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// One conjunct of a selection condition.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Predicate {
    /// `Ai = Aj` — attribute equality (the join/merge/absorb case).
    AttrEq(AttrId, AttrId),
    /// `Ai θ c` — comparison of an attribute with a constant.
    AttrCmp(AttrId, CmpOp, Value),
}

impl Predicate {
    /// Attributes mentioned by the predicate.
    pub fn attrs(&self) -> Vec<AttrId> {
        match self {
            Predicate::AttrEq(a, b) => vec![*a, *b],
            Predicate::AttrCmp(a, _, _) => vec![*a],
        }
    }

    /// True if every mentioned attribute is in `schema`.
    pub fn applies_to(&self, schema: &Schema) -> bool {
        self.attrs().iter().all(|a| schema.contains(*a))
    }

    /// Evaluates the predicate on a tuple laid out per `schema`.
    ///
    /// # Panics
    /// Panics if a mentioned attribute is absent from `schema`.
    pub fn eval(&self, schema: &Schema, row: &[Value]) -> bool {
        match self {
            Predicate::AttrEq(a, b) => {
                let pa = schema.position(*a).expect("lhs attr in schema");
                let pb = schema.position(*b).expect("rhs attr in schema");
                row[pa] == row[pb]
            }
            Predicate::AttrCmp(a, op, c) => {
                let pa = schema.position(*a).expect("attr in schema");
                op.eval(row[pa].cmp(c))
            }
        }
    }

    /// Renders the predicate with attribute names from `catalog`.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> PredicateDisplay<'a> {
        PredicateDisplay {
            pred: self,
            catalog,
        }
    }
}

/// Helper for [`Predicate::display`].
pub struct PredicateDisplay<'a> {
    pred: &'a Predicate,
    catalog: &'a Catalog,
}

impl fmt::Display for PredicateDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pred {
            Predicate::AttrEq(a, b) => {
                write!(f, "{} = {}", self.catalog.name(*a), self.catalog.name(*b))
            }
            Predicate::AttrCmp(a, op, c) => {
                write!(f, "{} {op} {c}", self.catalog.name(*a))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_op_eval_table() {
        use CmpOp::*;
        let cases = [
            (Eq, [false, true, false]),
            (Ne, [true, false, true]),
            (Lt, [true, false, false]),
            (Le, [true, true, false]),
            (Gt, [false, false, true]),
            (Ge, [false, true, true]),
        ];
        let orderings = [Ordering::Less, Ordering::Equal, Ordering::Greater];
        for (op, expected) in cases {
            for (ord, want) in orderings.iter().zip(expected) {
                assert_eq!(op.eval(*ord), want, "{op:?} on {ord:?}");
            }
        }
    }

    #[test]
    fn predicate_eval_on_rows() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let schema = Schema::new(vec![a, b]);
        let row = [Value::Int(3), Value::Int(3)];
        assert!(Predicate::AttrEq(a, b).eval(&schema, &row));
        assert!(Predicate::AttrCmp(a, CmpOp::Ge, Value::Int(3)).eval(&schema, &row));
        assert!(!Predicate::AttrCmp(b, CmpOp::Lt, Value::Int(3)).eval(&schema, &row));
    }

    #[test]
    fn applies_to_checks_schema() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let x = c.intern("x");
        let schema = Schema::new(vec![a, b]);
        assert!(Predicate::AttrEq(a, b).applies_to(&schema));
        assert!(!Predicate::AttrEq(a, x).applies_to(&schema));
    }

    #[test]
    fn display_renders_names() {
        let mut c = Catalog::new();
        let a = c.intern("price");
        let p = Predicate::AttrCmp(a, CmpOp::Le, Value::Int(5));
        assert_eq!(p.display(&c).to_string(), "price <= 5");
    }
}
