//! Figure 5 — all AGG queries on the (factorised) materialised view at a
//! fixed scale (Experiment 1).
//!
//! Q1–Q5 with four engine flavours: `FDB f/o` (factorised output — for Q1
//! the win over flat output is the enumeration cost of the large result),
//! `FDB` (flat output, like the relational engines), and the two
//! relational baselines.
//!
//! `cargo run --release -p fdb-bench --bin fig5 -- --scale 8`

use fdb_bench::{median_secs, paper_queries, print_row, Args, BenchSetup, QueryClass};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(4, 4);
    let scale = args.scale;
    println!("# Figure 5: AGG queries on the materialised view R1 at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: true,
    }
    .build();
    println!(
        "# flat view {} tuples, factorised view {} singletons",
        env.flat_tuples, env.view_singletons
    );
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    for q in queries.iter().filter(|q| q.class == QueryClass::Agg) {
        let (n, t) = median_secs(args.repeats, || env.run_fdb_fo(&q.task));
        print_row("5", scale, q.name, "FDB f/o", t, &format!("singletons={n}"));
        let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
        print_row("5", scale, q.name, "FDB", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive)
        });
        print_row("5", scale, q.name, "RDB sort", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive)
        });
        print_row("5", scale, q.name, "RDB hash", t, &format!("rows={n}"));
    }
}
