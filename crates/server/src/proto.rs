//! The wire protocol: newline-framed requests, `OK`/`ERR` framed
//! responses, tab-separated escaped payload lines.
//!
//! ## Grammar
//!
//! Requests are single lines (LF- or CRLF-terminated):
//!
//! ```text
//! request  := verb [SP argument] LF
//! verb     := "QUERY" | "ROW" | "EXPLAIN" | "INSERT" | "DELETE"
//!           | "LOAD" | "STATS" | "PING" | "QUIT"
//! QUERY    <sql>          run sql, respond with header + rows
//! ROW      <i> <sql>      point lookup: the i-th row (0-based) of sql's
//!                         result — answered via the count-annotation
//!                         seek, O(depth·log fanout), not a scan; <sql>
//!                         must not itself carry LIMIT/OFFSET
//! EXPLAIN  <sql>          plan sql, respond with the explain rendering
//! INSERT   INTO r [(cols)] VALUES (…), …   delta-insert into a
//!                         registered input; responds inserted/deleted
//!                         counts and bumps the epoch (purging the cache)
//! DELETE   FROM r [WHERE a = c AND …]      delta-delete, same framing
//! LOAD     <name> <path>  load an fdbv1 view file, register as <name>
//! STATS                   server counters and registered inputs
//! PING                    liveness check
//! QUIT                    close this connection
//! ```
//!
//! `INSERT`/`DELETE` lines are complete SQL statements — the verb *is*
//! the first SQL keyword — applied through the database's write path:
//! copy-on-write snapshot swap plus epoch bump, so sessions and cached
//! responses cut before the write keep serving the old state while
//! every later request sees the new one.
//!
//! Responses are a status line followed by `n` payload lines:
//!
//! ```text
//! response := "OK" SP n LF payload{n}  |  "ERR" SP message LF
//! ```
//!
//! Payload lines never contain raw LF/CR/TAB: fields are joined with
//! TAB and the characters `\`, TAB, LF, CR are escaped as `\\`, `\t`,
//! `\n`, `\r` (see [`escape_field`]). A `QUERY` payload is one header
//! line of column names followed by one line per row; `EXPLAIN` and
//! `STATS` payloads are escaped text lines.

use std::fmt::Write as _;

/// A parsed client request.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// `QUERY <sql>` — run and enumerate.
    Query(String),
    /// `ROW <i> <sql>` — the `i`-th result row via the direct-access
    /// seek.
    Row {
        /// 0-based row index into `sql`'s result order.
        index: u64,
        /// The query text, without LIMIT/OFFSET.
        sql: String,
    },
    /// `EXPLAIN <sql>` — plan and report, no enumeration payload.
    Explain(String),
    /// `INSERT INTO … VALUES …` — the full SQL statement.
    Insert(String),
    /// `DELETE FROM … [WHERE …]` — the full SQL statement.
    Delete(String),
    /// `LOAD <name> <path>` — read an `fdbv1` view file, register it.
    Load {
        /// Registration name of the view.
        name: String,
        /// Filesystem path of the serialised view.
        path: String,
    },
    /// `STATS` — server counters and registered inputs.
    Stats,
    /// `PING` — liveness check.
    Ping,
    /// `QUIT` — close the connection.
    Quit,
}

/// Parses one request line (without its terminator).
///
/// Verbs are case-insensitive; arguments keep their case. Returns a
/// human-readable error for unknown verbs or malformed arguments —
/// servers relay it verbatim in an `ERR` response.
pub fn parse_request(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    match verb.to_ascii_uppercase().as_str() {
        "QUERY" => {
            if rest.is_empty() {
                return Err("QUERY requires an SQL argument".into());
            }
            Ok(Request::Query(rest.to_string()))
        }
        "ROW" => {
            let Some((index, sql)) = rest.split_once(char::is_whitespace) else {
                return Err("ROW requires <index> <sql>".into());
            };
            let Ok(index) = index.trim().parse::<u64>() else {
                return Err(format!(
                    "ROW index `{}` is not a non-negative integer",
                    index.trim()
                ));
            };
            let sql = sql.trim();
            if sql.is_empty() {
                return Err("ROW requires <index> <sql>".into());
            }
            Ok(Request::Row {
                index,
                sql: sql.to_string(),
            })
        }
        "EXPLAIN" => {
            if rest.is_empty() {
                return Err("EXPLAIN requires an SQL argument".into());
            }
            Ok(Request::Explain(rest.to_string()))
        }
        "INSERT" => {
            if rest.is_empty() {
                return Err("INSERT requires the rest of the SQL statement".into());
            }
            // The verb is the statement's first keyword; hand the whole
            // line to the SQL front-end.
            Ok(Request::Insert(line.to_string()))
        }
        "DELETE" => {
            if rest.is_empty() {
                return Err("DELETE requires the rest of the SQL statement".into());
            }
            Ok(Request::Delete(line.to_string()))
        }
        "LOAD" => {
            let Some((name, path)) = rest.split_once(char::is_whitespace) else {
                return Err("LOAD requires <name> <path>".into());
            };
            let (name, path) = (name.trim(), path.trim());
            if name.is_empty() || path.is_empty() {
                return Err("LOAD requires <name> <path>".into());
            }
            Ok(Request::Load {
                name: name.to_string(),
                path: path.to_string(),
            })
        }
        "STATS" => Ok(Request::Stats),
        "PING" => Ok(Request::Ping),
        "QUIT" => Ok(Request::Quit),
        "" => Err("empty request".into()),
        other => Err(format!(
            "unknown verb `{other}` (expected QUERY, ROW, EXPLAIN, INSERT, DELETE, LOAD, STATS, \
             PING or QUIT)"
        )),
    }
}

/// Normalises SQL text for plan-cache keying: trims, collapses every
/// whitespace run *outside string literals* to a single space, and drops
/// one trailing `;`.
///
/// Whitespace inside single-quoted literals is payload, not layout:
/// collapsing it would key `SELECT 'a  b'` and `SELECT 'a b'` to the
/// same cache entry and serve one query's cached plan (and its constant)
/// for the other. `''` is the quote escape, which this scan handles for
/// free: it closes and immediately reopens a literal, and neither state
/// collapses the characters in between.
///
/// Case is preserved — identifiers are case-sensitive, so lowering case
/// would alias distinct queries.
pub fn normalise_sql(sql: &str) -> String {
    let mut out = String::with_capacity(sql.len());
    let mut in_str = false;
    let mut pending_space = false;
    for c in sql.chars() {
        if !in_str && c.is_whitespace() {
            pending_space = !out.is_empty();
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        if c == '\'' {
            in_str = !in_str;
        }
        out.push(c);
    }
    // A trailing `;` is framing, not content — but only outside a
    // literal (an unterminated string keeps its bytes verbatim).
    if !in_str {
        if let Some(stripped) = out.strip_suffix(';') {
            let len = stripped.trim_end().len();
            out.truncate(len);
        }
    }
    out
}

/// Escapes one payload field: `\` → `\\`, TAB → `\t`, LF → `\n`,
/// CR → `\r`. The framing characters never appear raw in a payload.
pub fn escape_field(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Inverse of [`escape_field`]; unknown escapes error.
pub fn unescape_field(s: &str) -> Result<String, String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => return Err(format!("unknown escape `\\{other}`")),
            None => return Err("dangling backslash".into()),
        }
    }
    Ok(out)
}

/// Joins already-escaped fields with TAB into one payload line.
pub fn join_fields<I, S>(fields: I) -> String
where
    I: IntoIterator<Item = S>,
    S: AsRef<str>,
{
    let mut out = String::new();
    for (i, f) in fields.into_iter().enumerate() {
        if i > 0 {
            out.push('\t');
        }
        out.push_str(f.as_ref());
    }
    out
}

/// Splits a payload line on TAB and unescapes each field.
pub fn split_fields(line: &str) -> Result<Vec<String>, String> {
    line.split('\t').map(unescape_field).collect()
}

/// Renders a [`QueryOutcome`](fdb::QueryOutcome) as payload lines: one
/// header line of column names, then one line per row. Fields are
/// escaped and TAB-joined; values print via their canonical `Display`.
pub fn render_outcome(out: &fdb::QueryOutcome) -> Vec<String> {
    let mut lines = Vec::with_capacity(1 + out.rows.len());
    lines.push(join_fields(out.columns.iter().map(|c| escape_field(c))));
    let mut buf = String::new();
    for i in 0..out.rows.len() {
        let mut line = String::new();
        for (j, v) in out.rows.row(i).iter().enumerate() {
            if j > 0 {
                line.push('\t');
            }
            buf.clear();
            let _ = write!(buf, "{v}");
            line.push_str(&escape_field(&buf));
        }
        lines.push(line);
    }
    lines
}

/// Splits free text (EXPLAIN output, error context) into escaped
/// payload lines, one per source line.
pub fn render_text(text: &str) -> Vec<String> {
    text.lines().map(escape_field).collect()
}

/// Formats the status line of a successful response carrying `n`
/// payload lines.
pub fn ok_header(n: usize) -> String {
    format!("OK {n}")
}

/// Formats an error response line. The message is escaped so the
/// response stays one line regardless of the error text.
pub fn err_line(msg: &str) -> String {
    format!("ERR {}", escape_field(msg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_case_insensitively() {
        assert_eq!(
            parse_request("query SELECT 1").unwrap(),
            Request::Query("SELECT 1".into())
        );
        assert_eq!(
            parse_request("EXPLAIN  SELECT x FROM T "),
            Ok(Request::Explain("SELECT x FROM T".into()))
        );
        assert_eq!(
            parse_request("LOAD V /tmp/v.fdb"),
            Ok(Request::Load {
                name: "V".into(),
                path: "/tmp/v.fdb".into()
            })
        );
        assert_eq!(parse_request("stats"), Ok(Request::Stats));
        assert_eq!(parse_request("PING"), Ok(Request::Ping));
        assert_eq!(parse_request("quit"), Ok(Request::Quit));
    }

    #[test]
    fn malformed_requests_error() {
        assert!(parse_request("").is_err());
        assert!(parse_request("QUERY").is_err());
        assert!(parse_request("LOAD onlyname").is_err());
        assert!(parse_request("FLY me to the moon").is_err());
    }

    #[test]
    fn normalisation_collapses_whitespace_and_semicolon() {
        assert_eq!(
            normalise_sql("  SELECT   x\n FROM\tT ; "),
            "SELECT x FROM T"
        );
        assert_eq!(
            normalise_sql("SELECT 1"),
            normalise_sql("select 1").to_uppercase()
        );
        // Case is preserved: distinct identifiers stay distinct.
        assert_ne!(
            normalise_sql("SELECT x FROM T"),
            normalise_sql("SELECT X FROM T")
        );
    }

    #[test]
    fn normalisation_preserves_whitespace_inside_string_literals() {
        // Regression: collapsing whitespace inside literals keyed
        // `'a  b'` and `'a b'` identically, poisoning the plan cache.
        assert_ne!(
            normalise_sql("SELECT x FROM T WHERE x = 'a  b'"),
            normalise_sql("SELECT x FROM T WHERE x = 'a b'")
        );
        assert_eq!(
            normalise_sql("SELECT  x\nFROM T  WHERE x = 'a \t b' ;"),
            "SELECT x FROM T WHERE x = 'a \t b'"
        );
        // Tabs/newlines inside a literal survive verbatim.
        assert_eq!(normalise_sql("QUERY' \n\t '"), "QUERY' \n\t '");
        // `''` escapes toggle in and out: the run between stays literal.
        assert_eq!(
            normalise_sql("SELECT 'it''s  fine'   ;"),
            "SELECT 'it''s  fine'"
        );
        // Semicolons inside (or after an unterminated) literal are kept.
        assert_eq!(normalise_sql("SELECT ';'"), "SELECT ';'");
        assert_eq!(normalise_sql("SELECT 'open;"), "SELECT 'open;");
    }

    #[test]
    fn escape_roundtrips() {
        for s in [
            "plain",
            "tab\there",
            "nl\nhere",
            "cr\rhere",
            "back\\slash",
            "",
        ] {
            assert_eq!(unescape_field(&escape_field(s)).unwrap(), s);
        }
        assert!(unescape_field("bad\\q").is_err());
        assert!(unescape_field("dangling\\").is_err());
    }

    #[test]
    fn fields_roundtrip_through_a_line() {
        let fields = ["a", "with\ttab", "with\nnewline", "with\\backslash"];
        let line = join_fields(fields.iter().map(|f| escape_field(f)));
        assert!(!line.contains('\n'));
        let back = split_fields(&line).unwrap();
        assert_eq!(back, fields);
    }
}
