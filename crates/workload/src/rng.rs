//! Sampling utilities for the workload generators.
//!
//! Kept dependency-light: the binomial draws the paper's generator needs
//! (§6: "both with a binomial distribution") are implemented as explicit
//! Bernoulli sums — the parameters are small enough that O(n) sampling is
//! irrelevant next to data construction.

use rand::Rng;

/// Samples `Binomial(n, p)` as a sum of Bernoulli trials.
pub fn binomial(rng: &mut impl Rng, n: u32, p: f64) -> u32 {
    debug_assert!((0.0..=1.0).contains(&p));
    (0..n).filter(|_| rng.gen_bool(p)).count() as u32
}

/// Samples `k` distinct values from `0..n` (k ≤ n), ascending.
///
/// Floyd's algorithm: O(k) expected insertions, no O(n) shuffle.
pub fn distinct_sample(rng: &mut impl Rng, n: u32, k: u32) -> Vec<u32> {
    debug_assert!(k <= n);
    let mut chosen = std::collections::BTreeSet::new();
    for j in n - k..n {
        let t = rng.gen_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    chosen.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn binomial_mean_is_np() {
        let mut rng = StdRng::seed_from_u64(7);
        let trials = 2000;
        let total: u64 = (0..trials)
            .map(|_| binomial(&mut rng, 40, 0.5) as u64)
            .sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 20.0).abs() < 1.0, "mean {mean}");
    }

    #[test]
    fn binomial_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            let v = binomial(&mut rng, 10, 0.3);
            assert!(v <= 10);
        }
        assert_eq!(binomial(&mut rng, 5, 0.0), 0);
        assert_eq!(binomial(&mut rng, 5, 1.0), 5);
    }

    #[test]
    fn distinct_sample_is_distinct_and_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let sample = distinct_sample(&mut rng, 100, 30);
        assert_eq!(sample.len(), 30);
        assert!(sample.windows(2).all(|w| w[0] < w[1]));
        assert!(sample.iter().all(|&x| x < 100));
    }

    #[test]
    fn distinct_sample_full_range() {
        let mut rng = StdRng::seed_from_u64(3);
        let sample = distinct_sample(&mut rng, 8, 8);
        assert_eq!(sample, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_under_seed() {
        let a: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            distinct_sample(&mut rng, 1000, 10)
        };
        let b: Vec<u32> = {
            let mut rng = StdRng::seed_from_u64(9);
            distinct_sample(&mut rng, 1000, 10)
        };
        assert_eq!(a, b);
    }
}
