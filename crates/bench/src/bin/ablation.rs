//! Ablations of FDB's design choices (DESIGN.md per-experiment index):
//!
//! 1. **Partial aggregation on/off** — Q2 evaluated (a) with the greedy
//!    plan's partial aggregation operators, vs (b) a single final
//!    aggregation operator per group with no pre-reduction (the grouped
//!    evaluation over raw subtrees). Partial aggregation shrinks the
//!    intermediate factorisations (§3.1).
//! 2. **Restructure vs re-sort** — Q12's order needs one swap on the
//!    factorised view; the ablation compares the swap against flattening
//!    the view and sorting it from scratch (what a relational engine must
//!    do).
//! 3. **Greedy vs exhaustive** — plan costs and planning time on the
//!    pizzeria query (the benchmark queries are in the exhaustive
//!    optimiser's comfortable range too, at tiny scale).
//! 4. **Fused vs per-operator execution** — every AGG query run through
//!    the staged pipeline executor (in-place rewrites, one compaction
//!    pass per plan) and through the legacy one-copy-per-operator
//!    path. Rows report wall time plus the intermediate arena
//!    bytes (`ibytes=`) and fragment copies avoided, so the fusion win
//!    is visible in the perf trajectory.
//!
//! `cargo run --release -p fdb-bench --bin ablation -- --scale 4`

use fdb_bench::{extended_agg_queries, median_secs, paper_queries, Args, BenchSetup, QueryClass};
use fdb_core::engine::{ConsolidateMode, ExecutorMode, RunOptions};
use fdb_core::ftree::AggOp;
use fdb_core::optim::{exhaustive, greedy, tree_cost, ExhaustiveConfig, QuerySpec, Stats};
use fdb_core::plan::apply_to_tree;
use fdb_relational::SortKey;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(2, 2);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Ablations at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: true,
        threads: args.threads,
    }
    .build();
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);

    // --- 1. Partial aggregation on/off (Q2) -------------------------
    let q2 = queries.iter().find(|q| q.name == "Q2").unwrap();
    let (_, t_partial) = median_secs(args.repeats, || {
        env.fdb
            .run(
                &q2.task,
                RunOptions::new()
                    .consolidate(ConsolidateMode::Never)
                    .threads(env.threads),
            )
            .unwrap()
            .to_relation()
            .unwrap()
            .len()
    });
    emit.row(
        "ablation",
        scale,
        "Q2",
        "partial aggregation",
        t_partial,
        "",
    );
    // Without partial aggregation: group directly on the raw view — walk
    // customer groups of the *restructured but unreduced* factorisation
    // and aggregate each group's subtree from scratch.
    let (_, t_raw) = median_secs(args.repeats, || {
        let rep = env.fdb.view("R1").unwrap().clone();
        let rep = fdb_core::orderby::restructure_for_group(rep, &[attrs.customer]).unwrap();
        let spec =
            fdb_core::enumerate::EnumSpec::group_prefix(rep.ftree(), &[attrs.customer]).unwrap();
        let mut cur = fdb_core::enumerate::GroupCursor::new(&rep, &spec).unwrap();
        let mut n = 0usize;
        while let Some((_, dangling)) = cur.next_group() {
            let _ = fdb_core::agg::eval_funcs(rep.ftree(), &dangling, &[AggOp::Sum(attrs.price)])
                .unwrap();
            n += 1;
        }
        n
    });
    emit.row("ablation", scale, "Q2", "no partial aggregation", t_raw, "");

    // --- 2. Restructure vs re-sort (Q12's order) --------------------
    let order = vec![
        SortKey::asc(attrs.date),
        SortKey::asc(attrs.package),
        SortKey::asc(attrs.item),
    ];
    let (_, t_swap) = median_secs(args.repeats, || {
        let rep = env.fdb.view("R1").unwrap().clone();
        let rep = fdb_core::orderby::restructure_for_order(rep, &order).unwrap();
        rep.singleton_count()
    });
    emit.row("ablation", scale, "Q12", "restructure (swap)", t_swap, "");
    let (_, t_sort) = median_secs(args.repeats, || {
        let rep = env.fdb.view("R1").unwrap();
        let mut flat = rep.flatten();
        flat.sort_by_keys(&order);
        flat.len()
    });
    emit.row("ablation", scale, "Q12", "flatten + full sort", t_sort, "");

    // --- 3. Greedy vs exhaustive plan cost --------------------------
    let rep = env.fdb.view("R1").unwrap().clone();
    let mut stats = Stats::new();
    for edge in rep.ftree().deps() {
        stats.add_relation(edge.iter().copied(), env.flat_tuples);
    }
    let revenue = env.fdb.catalog.fresh("revenue_ablation");
    let mut spec = QuerySpec {
        group_by: vec![attrs.customer],
        final_funcs: vec![AggOp::Sum(attrs.price)],
        final_outputs: vec![revenue],
        consolidate: false,
        ..Default::default()
    };
    let plan_cost = |plan: &fdb_core::FPlan| {
        let mut tree = rep.ftree().clone();
        let mut total = 0.0;
        for op in &plan.ops {
            apply_to_tree(&mut tree, op).unwrap();
            total += tree_cost(&tree, &stats);
        }
        total
    };
    let (gplan, t_g) = median_secs(args.repeats, || {
        greedy(rep.ftree(), &spec, &stats, &mut env.fdb.catalog).unwrap()
    });
    emit.row(
        "ablation",
        scale,
        "Q2-plan",
        "greedy",
        t_g,
        &format!("cost={:.1} ops={}", plan_cost(&gplan), gplan.len()),
    );
    spec.final_outputs = vec![env.fdb.catalog.fresh("revenue_ablation")];
    let (xplan, t_x) = median_secs(args.repeats, || {
        exhaustive(
            rep.ftree(),
            &spec,
            &stats,
            &mut env.fdb.catalog,
            ExhaustiveConfig::default(),
        )
        .unwrap()
    });
    emit.row(
        "ablation",
        scale,
        "Q2-plan",
        "exhaustive",
        t_x,
        &format!("cost={:.1} ops={}", plan_cost(&xplan), xplan.len()),
    );

    // --- 4. Fused vs per-operator execution -------------------------
    // Q1–Q5 plus the extended aggregate surface (QD/QP/QB/QK/QG): the
    // new evaluators run through both executors so their staged win —
    // and any intermediate-allocation regression — shows in the rows.
    let mut queries = queries;
    queries.extend(extended_agg_queries(&mut env.fdb.catalog, &attrs));
    for q in queries
        .iter()
        .filter(|q| q.class == QueryClass::Agg || q.class == QueryClass::AggExt)
    {
        for (engine, executor) in [
            ("FDB fused", ExecutorMode::Staged),
            ("FDB per-op", ExecutorMode::PerOp),
        ] {
            let opts = RunOptions::new().threads(env.threads).executor(executor);
            let (exec, t) = median_secs(args.repeats, || {
                env.fdb.run(&q.task, opts).unwrap().exec_stats()
            });
            emit.row(
                "ablation",
                scale,
                q.name,
                engine,
                t,
                &format!(
                    "ibytes={} stages={} copies_avoided={}",
                    exec.intermediate_bytes, exec.stages, exec.copies_avoided
                ),
            );
        }
    }
    emit.finish();
}
