//! # fdb-core — factorised databases with aggregation and ordering
//!
//! A from-scratch Rust implementation of the FDB query engine extended
//! with aggregates and ordering, reproducing *Aggregation and Ordering in
//! Factorised Databases* (Bakibayev, Kočiský, Olteanu, Závodný; VLDB
//! 2013).
//!
//! A **factorised database** represents a relation as a relational algebra
//! expression of unions, products and singletons whose nesting structure
//! is a **factorisation tree** ([`ftree::FTree`]); the representation
//! ([`frep::FRep`]) can be exponentially smaller than the relation it
//! denotes. This crate provides:
//!
//! * the f-plan operators of the FDB engine — product, constant
//!   selections, merge/absorb (equality selections), swap (restructuring),
//!   projection and constant-time renaming ([`ops`]);
//! * the paper's contribution: the **aggregation operator** `γ_F(U)` with
//!   linear-time recursive evaluators for `count`/`sum`/`min`/`max` and
//!   composite functions such as `avg` ([`agg`], [`mod@ops::aggregate`]),
//!   composing under the rules of Proposition 2;
//! * **constant-delay enumeration** of tuples, plain, grouped (Theorem 1)
//!   and in given asc/desc lexicographic orders (Theorem 2), plus the
//!   group cursor for on-the-fly aggregate combination ([`enumerate`]);
//! * restructuring for group-by/order-by clauses via swaps, including the
//!   single-attribute consolidation of §5.2 step 7 ([`orderby`]);
//! * the **staged pipeline executor** ([`pipeline`]): f-plans segment
//!   into fusible stages executed in place on one shared arena — one
//!   compaction pass per plan instead of one full copy per operator;
//! * the **optimisers**: the greedy heuristic of §5.2 and exhaustive
//!   Dijkstra over the f-plan space, both driven by tight factorisation
//!   size bounds from fractional edge covers ([`optim`]);
//! * a high-level engine executing SQL-lowered
//!   [`fdb_relational::planner::JoinAggTask`]s end to end
//!   ([`engine::FdbEngine`]).
//!
//! ## Quickstart
//!
//! ```
//! use fdb_core::engine::FdbEngine;
//! use fdb_relational::planner::JoinAggTask;
//! use fdb_relational::{AggFunc, AggSpec, Catalog, Relation, Schema, Value};
//!
//! let mut catalog = Catalog::new();
//! let item = catalog.intern("item");
//! let price = catalog.intern("price");
//! let items = Relation::from_rows(
//!     Schema::new(vec![item, price]),
//!     [("base", 6), ("ham", 1)].into_iter()
//!         .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
//! );
//! let mut engine = FdbEngine::new(catalog);
//! engine.register_relation("Items", items);
//! let total = engine.catalog.intern("total");
//! let task = JoinAggTask {
//!     inputs: vec!["Items".into()],
//!     aggregates: vec![AggSpec::new(AggFunc::Sum(price), total)],
//!     ..Default::default()
//! };
//! let result = engine.run_default(&task).unwrap();
//! let rel = result.to_relation().unwrap();
//! assert_eq!(rel.row(0)[0], Value::Int(7));
//! ```

pub mod agg;
pub mod engine;
pub mod enumerate;
pub mod error;
pub mod frep;
pub mod ftree;
pub mod io;
pub mod ops;
pub mod optim;
pub mod orderby;
pub mod pipeline;
pub mod plan;
pub mod topk;
pub mod update;

pub use engine::{
    ConsolidateMode, ExecutorMode, FdbEngine, FdbResult, OrderMode, OrderRunStats, OrderStrategy,
    PlanStrategy, RunOptions,
};
pub use error::{FdbError, Result};
pub use frep::{Entry, EntryRef, FRep, FRepStats, Union, UnionId, UnionRef};
pub use ftree::{AggLabel, AggOp, FTree, NodeId, NodeLabel};
pub use optim::{ExhaustiveConfig, QuerySpec, Stats};
pub use pipeline::{ExecStats, Stage, StageKind};
pub use plan::{FOp, FPlan};
