//! F-plan operators on factorised representations (§2.1, §3, §4.2).
//!
//! Each operator transforms an [`crate::frep::FRep`] into another one, changing the
//! f-tree and mirroring the change on the data in one pass:
//!
//! | operator | implements | module |
//! |---|---|---|
//! | `product` | cross product (cheapest op: forest union) | [`mod@product`] |
//! | `select_const` | `A θ c` selections | [`select`] |
//! | `merge` / `absorb` | `A = B` selections (siblings / path) | [`restructure`] |
//! | `swap` | restructuring `χ_{A,B}` | [`restructure`] |
//! | `aggregate` | the new aggregation operator `γ_F(U)` | [`mod@aggregate`] |
//! | `project_away` | projection (leaf removal, with push-down) | [`project`] |
//! | `rename` | constant-time attribute renaming | [`project`] |
//!
//! With the arena storage of [`crate::frep`], every structural operator
//! is a single **copy transform**: it walks the source arena through
//! [`crate::frep::UnionRef`] cursors and appends the rewritten
//! representation into a fresh destination arena. Untouched fragments
//! are deep-copied record by record (`Arena::copy_union_from`) — still
//! O(fragment size), but each copied singleton is one 12-byte record
//! append plus a cheap `Arc`-backed value clone, with no per-node heap
//! allocation. `product` is the exception: it splices the right arena
//! onto the left in one wholesale table append without touching the
//! left side at all.
//!
//! All operators preserve the sortedness invariant of unions and prune
//! entries whose subtrees become empty, cascading towards the roots.

pub mod aggregate;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;

pub use aggregate::{aggregate, aggregate_par, AggTarget};
pub use product::product;
pub use project::{project_away, remove_leaf, rename};
pub use restructure::{absorb, merge, swap};
pub use select::select_const;

use crate::error::Result;
use crate::frep::{Arena, UnionId, UnionRef};
use crate::ftree::{FTree, NodeId};

/// Rewrites every occurrence of `target`'s union, copying everything
/// else from `src` into `dst` unchanged.
///
/// The unions of a node occur once per combination of its ancestors'
/// values; this walks the unique root path (computed on the f-tree *before*
/// any structural change) and calls `f` on each occurrence, passing the
/// source cursor and the destination arena. If `f` returns `None` — or a
/// union with no entries — the containing entry is pruned and pruning
/// cascades upward; at the root an empty union denotes the empty
/// relation.
pub(crate) fn rewrite_at(
    tree: &FTree,
    src: &Arena,
    roots: &[UnionId],
    target: NodeId,
    dst: &mut Arena,
    f: &mut dyn FnMut(UnionRef<'_>, &mut Arena) -> Result<Option<UnionId>>,
) -> Result<Vec<UnionId>> {
    let path = tree.root_path(target);
    let root_idx = tree
        .roots()
        .iter()
        .position(|&r| r == path[0])
        .expect("target's root is a forest root");
    let mut out = Vec::with_capacity(roots.len());
    for (i, &r) in roots.iter().enumerate() {
        if i == root_idx {
            let nu = rewrite_rec(tree, src, r, &path, f, dst)?;
            out.push(nu.unwrap_or_else(|| dst.empty_union(path[0])));
        } else {
            out.push(dst.copy_union_from(src, r));
        }
    }
    Ok(out)
}

fn rewrite_rec(
    tree: &FTree,
    src: &Arena,
    uid: UnionId,
    path: &[NodeId],
    f: &mut dyn FnMut(UnionRef<'_>, &mut Arena) -> Result<Option<UnionId>>,
    dst: &mut Arena,
) -> Result<Option<UnionId>> {
    let u = src.union(uid);
    debug_assert_eq!(u.node(), path[0]);
    if path.len() == 1 {
        return Ok(f(u, dst)?.filter(|&nu| dst.union_len(nu) > 0));
    }
    let child_idx = tree
        .node(path[0])
        .children
        .iter()
        .position(|&c| c == path[1])
        .expect("path step is a child");
    let mut specs = Vec::with_capacity(u.len());
    let mut kid_ids: Vec<UnionId> = Vec::new();
    for e in u.entries() {
        // Rewrite the on-path child first: a pruned subtree skips the
        // sibling copies entirely.
        let Some(nu) = rewrite_rec(tree, src, e.child_id(child_idx), &path[1..], f, dst)? else {
            continue;
        };
        kid_ids.clear();
        for (j, c) in e.child_ids().enumerate() {
            kid_ids.push(if j == child_idx {
                nu
            } else {
                dst.copy_union_from(src, c)
            });
        }
        specs.push(dst.entry(u.node(), e.value().clone(), &kid_ids));
    }
    Ok((!specs.is_empty()).then(|| dst.push_union(u.node(), &specs)))
}
