//! End-to-end user pipeline: load CSV data, query it with SQL on the
//! factorised engine, export the answer as CSV — the adoption path a
//! downstream user of the library would take.

use fdb::core::engine::FdbEngine;
use fdb::relational::csv::{read_csv, write_csv};
use fdb::Catalog;

const ORDERS_CSV: &str = "\
customer,date,pizza
Mario,1,Capricciosa
Mario,2,Margherita
Pietro,5,Hawaii
Lucia,5,Hawaii
Mario,5,Capricciosa
";

const PIZZAS_CSV: &str = "\
pizza,item
Margherita,base
Capricciosa,base
Capricciosa,ham
Capricciosa,mushrooms
Hawaii,base
Hawaii,ham
Hawaii,pineapple
";

const ITEMS_CSV: &str = "\
item,price
base,6
ham,1
mushrooms,1
pineapple,2
";

#[test]
fn csv_to_sql_to_csv() {
    let mut catalog = Catalog::new();
    let orders = read_csv(ORDERS_CSV.as_bytes(), &mut catalog).unwrap();
    let pizzas = read_csv(PIZZAS_CSV.as_bytes(), &mut catalog).unwrap();
    let items = read_csv(ITEMS_CSV.as_bytes(), &mut catalog).unwrap();
    assert_eq!(orders.len(), 5);
    assert_eq!(pizzas.len(), 7);
    assert_eq!(items.len(), 4);

    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", orders);
    engine.register_relation("Pizzas", pizzas);
    engine.register_relation("Items", items);

    let out = engine
        .run_sql(
            "SELECT customer, SUM(price) AS revenue \
             FROM Orders, Pizzas, Items \
             GROUP BY customer ORDER BY revenue DESC, customer",
        )
        .unwrap();

    let mut buf = Vec::new();
    write_csv(&out, &engine.catalog, &mut buf).unwrap();
    let text = String::from_utf8(buf).unwrap();
    assert_eq!(text, "customer,revenue\nMario,22\nLucia,9\nPietro,9\n");
}

#[test]
fn run_sql_error_paths_are_graceful() {
    let mut engine = FdbEngine::new(Catalog::new());
    // Unknown relation.
    assert!(engine.run_sql("SELECT x FROM Nope").is_err());
    // Parse error.
    assert!(engine.run_sql("SELEC").is_err());
}

#[test]
fn run_sql_with_having_and_limit() {
    let mut catalog = Catalog::new();
    let items = read_csv(ITEMS_CSV.as_bytes(), &mut catalog).unwrap();
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Items", items);
    let out = engine
        .run_sql(
            "SELECT price, COUNT(*) AS n FROM Items \
             GROUP BY price HAVING n >= 1 ORDER BY n DESC, price LIMIT 2",
        )
        .unwrap();
    assert_eq!(out.len(), 2);
    // price 1 occurs twice (ham, mushrooms).
    assert_eq!(out.row(0)[0], fdb::Value::Int(1));
    assert_eq!(out.row(0)[1], fdb::Value::Int(2));
}
