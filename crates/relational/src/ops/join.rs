//! Joins: natural hash join, natural sort-merge join, and cross product.
//!
//! Natural joins equate all attributes shared by the two schemas, matching
//! the paper's queries (`R1 = Orders ⋈ Items ⋈ Packages`, §6). The output
//! schema is `left ++ (right \ left)`.

use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashMap;

/// Builds the output schema and column plumbing shared by both join
/// algorithms: positions of join keys on each side and the positions of the
/// right-side payload columns (non-join attributes).
struct JoinLayout {
    out_schema: Schema,
    left_key: Vec<usize>,
    right_key: Vec<usize>,
    right_payload: Vec<usize>,
}

fn layout(left: &Relation, right: &Relation) -> JoinLayout {
    let common = left.schema().common(right.schema());
    let left_key: Vec<usize> = common
        .iter()
        .map(|&a| left.schema().position(a).unwrap())
        .collect();
    let right_key: Vec<usize> = common
        .iter()
        .map(|&a| right.schema().position(a).unwrap())
        .collect();
    let right_extra = right.schema().difference(left.schema());
    let right_payload: Vec<usize> = right_extra
        .iter()
        .map(|&a| right.schema().position(a).unwrap())
        .collect();
    let out_schema = Schema::new(
        left.schema()
            .attrs()
            .iter()
            .copied()
            .chain(right_extra)
            .collect(),
    );
    JoinLayout {
        out_schema,
        left_key,
        right_key,
        right_payload,
    }
}

/// Natural join via a hash table on the smaller input's join key.
pub fn hash_join(left: &Relation, right: &Relation) -> Relation {
    let lay = layout(left, right);
    let mut out = Relation::empty(lay.out_schema.clone());
    if left.is_empty() || right.is_empty() {
        return out;
    }
    if lay.left_key.is_empty() {
        // No shared attributes: natural join degenerates to a product.
        return product(left, right);
    }
    // Build on the right side (probe with left rows so output keeps the
    // left-major ordering, which downstream sort-reuse tests rely on).
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
    for (i, row) in right.rows().enumerate() {
        let key: Vec<Value> = lay.right_key.iter().map(|&p| row[p].clone()).collect();
        table.entry(key).or_default().push(i);
    }
    let mut buf: Vec<Value> = Vec::with_capacity(lay.out_schema.arity());
    let mut key_buf: Vec<Value> = Vec::with_capacity(lay.left_key.len());
    for lrow in left.rows() {
        key_buf.clear();
        key_buf.extend(lay.left_key.iter().map(|&p| lrow[p].clone()));
        if let Some(matches) = table.get(&key_buf) {
            for &ri in matches {
                let rrow = right.row(ri);
                buf.clear();
                buf.extend_from_slice(lrow);
                buf.extend(lay.right_payload.iter().map(|&p| rrow[p].clone()));
                out.push_row_unchecked(&buf);
            }
        }
    }
    out
}

/// Natural join via sorting both inputs on the join key and merging runs.
pub fn sort_merge_join(left: &Relation, right: &Relation) -> Relation {
    let lay = layout(left, right);
    let mut out = Relation::empty(lay.out_schema.clone());
    if left.is_empty() || right.is_empty() {
        return out;
    }
    if lay.left_key.is_empty() {
        return product(left, right);
    }
    let common = left.schema().common(right.schema());
    let mut l = left.clone();
    let mut r = right.clone();
    l.sort_by_keys(
        &common
            .iter()
            .map(|&a| crate::relation::SortKey::asc(a))
            .collect::<Vec<_>>(),
    );
    r.sort_by_keys(
        &common
            .iter()
            .map(|&a| crate::relation::SortKey::asc(a))
            .collect::<Vec<_>>(),
    );
    let key_cmp = |lrow: &[Value], rrow: &[Value]| {
        for (&lp, &rp) in lay.left_key.iter().zip(&lay.right_key) {
            let ord = lrow[lp].cmp(&rrow[rp]);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    let (mut i, mut j) = (0usize, 0usize);
    let (n, m) = (l.len(), r.len());
    let mut buf: Vec<Value> = Vec::with_capacity(lay.out_schema.arity());
    while i < n && j < m {
        match key_cmp(l.row(i), r.row(j)) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the full run of equal keys on each side.
                let i_end = (i..n)
                    .find(|&x| key_cmp(l.row(x), r.row(j)) != std::cmp::Ordering::Equal)
                    .unwrap_or(n);
                let j_end = (j..m)
                    .find(|&x| key_cmp(l.row(i), r.row(x)) != std::cmp::Ordering::Equal)
                    .unwrap_or(m);
                for li in i..i_end {
                    for rj in j..j_end {
                        buf.clear();
                        buf.extend_from_slice(l.row(li));
                        buf.extend(lay.right_payload.iter().map(|&p| r.row(rj)[p].clone()));
                        out.push_row_unchecked(&buf);
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    out
}

/// Cross product of relations over disjoint schemas.
///
/// # Panics
/// Panics if the schemas overlap (use a join instead).
pub fn product(left: &Relation, right: &Relation) -> Relation {
    let out_schema = left.schema().concat(right.schema());
    let mut out = Relation::empty(out_schema);
    out.reserve(left.len() * right.len());
    let mut buf: Vec<Value> = Vec::with_capacity(out.arity());
    for lrow in left.rows() {
        for rrow in right.rows() {
            buf.clear();
            buf.extend_from_slice(lrow);
            buf.extend_from_slice(rrow);
            out.push_row(&buf);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::value::Value;

    fn pizzeria() -> (Catalog, Relation, Relation) {
        // Pizzas(pizza, item) and Items(item, price) from Figure 1.
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item");
        let price = c.intern("price");
        let pizzas = Relation::from_rows(
            Schema::new(vec![pizza, item]),
            [
                ("Margherita", "base"),
                ("Capricciosa", "base"),
                ("Capricciosa", "ham"),
                ("Capricciosa", "mushrooms"),
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Hawaii", "pineapple"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, pr)| vec![Value::str(i), Value::Int(pr)]),
        );
        (c, pizzas, items)
    }

    #[test]
    fn hash_and_merge_join_agree() {
        let (_, pizzas, items) = pizzeria();
        let h = hash_join(&pizzas, &items).canonical();
        let m = sort_merge_join(&pizzas, &items).canonical();
        assert_eq!(h, m);
        assert_eq!(h.len(), 7);
        assert_eq!(h.arity(), 3);
    }

    #[test]
    fn join_filters_dangling_tuples() {
        let (mut c, pizzas, _) = pizzeria();
        let item = c.lookup("item").unwrap();
        let price = c.intern("price");
        // Only "base" is priced: all non-base rows dangle.
        let items = Relation::from_rows(
            Schema::new(vec![item, price]),
            [vec![Value::str("base"), Value::Int(6)]],
        );
        let out = hash_join(&pizzas, &items);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn disjoint_schemas_degenerate_to_product() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let ra = Relation::from_rows(
            Schema::new(vec![a]),
            [1, 2].into_iter().map(|x| vec![Value::Int(x)]),
        );
        let rb = Relation::from_rows(
            Schema::new(vec![b]),
            [10, 20, 30].into_iter().map(|x| vec![Value::Int(x)]),
        );
        let out = hash_join(&ra, &rb);
        assert_eq!(out.len(), 6);
        assert_eq!(out, product(&ra, &rb));
    }

    #[test]
    fn empty_input_gives_empty_join() {
        let (_, pizzas, items) = pizzeria();
        let empty = Relation::empty(items.schema().clone());
        assert!(hash_join(&pizzas, &empty).is_empty());
        assert!(sort_merge_join(&empty, &items).is_empty());
    }

    #[test]
    fn join_output_schema_order() {
        let (c, pizzas, items) = pizzeria();
        let out = hash_join(&pizzas, &items);
        let names: Vec<&str> = out.schema().attrs().iter().map(|&a| c.name(a)).collect();
        assert_eq!(names, vec!["pizza", "item", "price"]);
    }
}
