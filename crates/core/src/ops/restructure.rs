//! Restructuring operators: swap `χ_{A,B}`, merge, absorb (§2.1, §4.2).
//!
//! * `swap` exchanges a node with its parent while preserving the path
//!   constraint: `⋃_a (⟨A:a⟩×E_a×⋃_b (⟨B:b⟩×F_b×G_ab))` becomes
//!   `⋃_b (⟨B:b⟩×F_b×⋃_a (⟨A:a⟩×E_a×G_ab))`. The independent subtrees
//!   `F_b` are deduplicated (first occurrence kept, the rest dropped) —
//!   the regrouping records *source* union ids and copies each fragment
//!   into the output arena exactly once per emitted position, so the
//!   factorisation can only shrink here.
//! * `merge` implements a selection `A = B` on sibling nodes as a linear
//!   intersection of their sorted unions.
//! * `absorb` implements `A = B` when `B`'s node is a descendant of `A`'s:
//!   each `B`-union below an `A`-value is restricted to that value.

use crate::error::{FdbError, Result};
use crate::frep::{Arena, EntryRec, EntryRef, FRep, UnionId, UnionRef};
use crate::ftree::{FTree, NodeId};
use crate::ops::{rewrite_at, rewrite_at_inplace};
use fdb_relational::Value;
use std::collections::btree_map;
use std::collections::BTreeMap;

/// Swap `χ_{A,B}`: `b` (a child of `a`) becomes `a`'s parent.
pub fn swap(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, arena, roots) = rep.into_arena_parts();
    if tree.node(b).parent != Some(a) {
        return Err(FdbError::InvalidOperator(format!(
            "swap requires {b:?} to be a child of {a:?}"
        )));
    }
    let b_children_before = tree.node(b).children.clone();
    let mut new_tree = tree.clone();
    let outcome = new_tree.swap(a, b)?;
    let pos_of = |n: NodeId| {
        b_children_before
            .iter()
            .position(|&c| c == n)
            .expect("partitioned child came from b")
    };
    let moved_idx: Vec<usize> = outcome.moved_up.iter().map(|&n| pos_of(n)).collect();
    let stayed_idx: Vec<usize> = outcome.stayed.iter().map(|&n| pos_of(n)).collect();
    let b_pos = outcome.b_pos_in_a;
    let mut dst = Arena::default();
    let roots = rewrite_at(&tree, &arena, &roots, a, &mut dst, &mut |ua, dst| {
        Ok(Some(swap_union(
            ua,
            dst,
            a,
            b,
            b_pos,
            &moved_idx,
            &stayed_idx,
        )))
    })?;
    let out = FRep::from_arena(new_tree, dst, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

fn swap_union(
    ua: UnionRef<'_>,
    dst: &mut Arena,
    a: NodeId,
    b: NodeId,
    b_pos: usize,
    moved_idx: &[usize],
    stayed_idx: &[usize],
) -> UnionId {
    let src = ua.arena();
    // For each b-value: the F_b subtrees (source ids, first occurrence)
    // and the new inner a-union's entries as (a-value, source ids of
    // E_a ++ G_ab), accumulated in ascending a-order because the outer
    // loop visits a-entries in order. Nothing is copied until emission,
    // so shared E_a fragments duplicate naturally per b-branch.
    type Regrouped = (Vec<UnionId>, Vec<(Value, Vec<UnionId>)>);
    let mut regroup: BTreeMap<Value, Regrouped> = BTreeMap::new();
    for ea in ua.entries() {
        let ub = ea.child(b_pos);
        let ea_rest: Vec<UnionId> = ea
            .child_ids()
            .enumerate()
            .filter(|&(j, _)| j != b_pos)
            .map(|(_, c)| c)
            .collect();
        for eb in ub.entries() {
            let gab = stayed_idx.iter().map(|&i| eb.child_id(i));
            let new_a_children: Vec<UnionId> = ea_rest.iter().copied().chain(gab).collect();
            let a_entry = (ea.value().clone(), new_a_children);
            match regroup.entry(eb.value().clone()) {
                btree_map::Entry::Vacant(slot) => {
                    // First occurrence of this b-value keeps F_b; later
                    // copies are identical by the path constraint and are
                    // dropped.
                    let fb: Vec<UnionId> = moved_idx.iter().map(|&i| eb.child_id(i)).collect();
                    slot.insert((fb, vec![a_entry]));
                }
                btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().1.push(a_entry);
                }
            }
        }
    }
    let mut b_specs = Vec::with_capacity(regroup.len());
    let mut kid_ids: Vec<UnionId> = Vec::new();
    for (b_val, (fb, a_entries)) in regroup {
        let mut a_specs = Vec::with_capacity(a_entries.len());
        for (a_val, src_kids) in a_entries {
            kid_ids.clear();
            for c in &src_kids {
                kid_ids.push(dst.copy_union_from(src, *c));
            }
            a_specs.push(dst.entry(a, a_val, &kid_ids));
        }
        let inner = dst.push_union(a, &a_specs);
        kid_ids.clear();
        for c in &fb {
            kid_ids.push(dst.copy_union_from(src, *c));
        }
        kid_ids.push(inner);
        b_specs.push(dst.entry(b, b_val, &kid_ids));
    }
    dst.push_union(b, &b_specs)
}

/// In-place [`swap`]: the regrouped `b`-over-`a` levels are appended to
/// the same arena while the `E_a`, `F_b` and `G_ab` fragments are
/// shared by id — the shared `E_a` fragments, which the legacy copy
/// transform duplicates once per b-branch, are here referenced from
/// every branch without any copy at all.
pub fn swap_inplace(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, mut arena, roots) = rep.into_arena_parts();
    if tree.node(b).parent != Some(a) {
        return Err(FdbError::InvalidOperator(format!(
            "swap requires {b:?} to be a child of {a:?}"
        )));
    }
    let b_children_before = tree.node(b).children.clone();
    let mut new_tree = tree.clone();
    let outcome = new_tree.swap(a, b)?;
    let pos_of = |n: NodeId| {
        b_children_before
            .iter()
            .position(|&c| c == n)
            .expect("partitioned child came from b")
    };
    let moved_idx: Vec<usize> = outcome.moved_up.iter().map(|&n| pos_of(n)).collect();
    let stayed_idx: Vec<usize> = outcome.stayed.iter().map(|&n| pos_of(n)).collect();
    let b_pos = outcome.b_pos_in_a;
    let roots = rewrite_at_inplace(&tree, &mut arena, &roots, a, &mut |arena, uid| {
        Ok(Some(swap_union_inplace(
            arena,
            uid,
            a,
            b,
            b_pos,
            &moved_idx,
            &stayed_idx,
        )))
    })?;
    let out = FRep::from_arena(new_tree, arena, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

fn swap_union_inplace(
    arena: &mut Arena,
    uid: UnionId,
    a: NodeId,
    b: NodeId,
    b_pos: usize,
    moved_idx: &[usize],
    stayed_idx: &[usize],
) -> UnionId {
    // Same regrouping as `swap_union`, but recording *value indices*
    // (into the existing a/b columns) and fragment ids, so emission is
    // pure record appends with every fragment shared.
    type Regrouped = (u32, Vec<UnionId>, Vec<(u32, Vec<UnionId>)>);
    let mut regroup: BTreeMap<Value, Regrouped> = BTreeMap::new();
    let ua = arena.urec(uid);
    for i in ua.start..ua.start + ua.len {
        let ea = arena.erec(i);
        let ub_id = arena.kid_at(ea.kids_start + b_pos as u32);
        let ea_rest: Vec<UnionId> = (0..ea.kids_len)
            .filter(|&j| j as usize != b_pos)
            .map(|j| arena.kid_at(ea.kids_start + j))
            .collect();
        let ub = arena.urec(ub_id);
        for j in ub.start..ub.start + ub.len {
            let eb = arena.erec(j);
            let gab = stayed_idx
                .iter()
                .map(|&k| arena.kid_at(eb.kids_start + k as u32));
            let new_a_children: Vec<UnionId> = ea_rest.iter().copied().chain(gab).collect();
            let a_entry = (ea.val, new_a_children);
            match regroup.entry(arena.value_at(b, eb.val).clone()) {
                btree_map::Entry::Vacant(slot) => {
                    let fb: Vec<UnionId> = moved_idx
                        .iter()
                        .map(|&k| arena.kid_at(eb.kids_start + k as u32))
                        .collect();
                    slot.insert((eb.val, fb, vec![a_entry]));
                }
                btree_map::Entry::Occupied(mut slot) => {
                    slot.get_mut().2.push(a_entry);
                }
            }
        }
    }
    let mut b_specs = Vec::with_capacity(regroup.len());
    for (_, (b_val, fb, a_entries)) in regroup {
        let mut a_specs = Vec::with_capacity(a_entries.len());
        for (a_val, kids) in a_entries {
            arena.note_shared(kids.len() as u64);
            a_specs.push(arena.entry_shared_val(a_val, &kids));
        }
        let inner = arena.push_union(a, &a_specs);
        arena.note_shared(fb.len() as u64);
        let mut kid_ids = fb;
        kid_ids.push(inner);
        b_specs.push(arena.entry_shared_val(b_val, &kid_ids));
    }
    arena.push_union(b, &b_specs)
}

/// Merge: implements a selection `A = B` for sibling nodes by intersecting
/// their sorted unions (linear in the union sizes).
pub fn merge(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, arena, roots) = rep.into_arena_parts();
    let parent = tree.node(a).parent;
    let mut new_tree = tree.clone();
    let outcome = new_tree.merge(a, b)?;
    let (a_pos, b_pos) = (outcome.a_pos, outcome.b_pos);
    let mut dst = Arena::default();
    let new_roots = match parent {
        None => {
            // Both nodes are roots: intersect the two root unions directly.
            let mut out = Vec::with_capacity(roots.len() - 1);
            for (i, &r) in roots.iter().enumerate() {
                if i == b_pos {
                    continue;
                }
                if i == a_pos {
                    out.push(intersect_unions(
                        &arena,
                        roots[a_pos],
                        roots[b_pos],
                        a,
                        &mut dst,
                    ));
                } else {
                    out.push(dst.copy_union_from(&arena, r));
                }
            }
            if out.iter().any(|&u| dst.union_len(u) == 0) {
                // Empty relation: normalise every root to empty.
                dst = Arena::default();
                out = new_tree
                    .roots()
                    .iter()
                    .map(|&r| dst.empty_union(r))
                    .collect();
            }
            out
        }
        Some(p) => rewrite_at(&tree, &arena, &roots, p, &mut dst, &mut |up, dst| {
            let src = up.arena();
            let mut specs = Vec::with_capacity(up.len());
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for e in up.entries() {
                let merged = intersect_unions(src, e.child_id(a_pos), e.child_id(b_pos), a, dst);
                if dst.union_len(merged) == 0 {
                    continue; // dangling combination: prune this entry
                }
                kid_ids.clear();
                for (j, c) in e.child_ids().enumerate() {
                    if j == b_pos {
                        continue;
                    }
                    kid_ids.push(if j == a_pos {
                        merged
                    } else {
                        dst.copy_union_from(src, c)
                    });
                }
                specs.push(dst.entry(up.node(), e.value().clone(), &kid_ids));
            }
            Ok(Some(dst.push_union(up.node(), &specs)))
        })?,
    };
    let out = FRep::from_arena(new_tree, dst, new_roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Sorted intersection of two unions; matched entries concatenate their
/// child lists (the merged node keeps `a`'s children then `b`'s).
fn intersect_unions(
    src: &Arena,
    ua: UnionId,
    ub: UnionId,
    node: NodeId,
    dst: &mut Arena,
) -> UnionId {
    let ua = src.union(ua);
    let ub = src.union(ub);
    let mut specs = Vec::new();
    let mut kid_ids: Vec<UnionId> = Vec::new();
    let mut j = 0usize;
    for ea in ua.entries() {
        while j < ub.len() && ub.entry(j).value() < ea.value() {
            j += 1;
        }
        if j < ub.len() && ub.entry(j).value() == ea.value() {
            let eb = ub.entry(j);
            j += 1;
            kid_ids.clear();
            for c in ea.child_ids().chain(eb.child_ids()) {
                kid_ids.push(dst.copy_union_from(src, c));
            }
            specs.push(dst.entry(node, ea.value().clone(), &kid_ids));
        }
    }
    dst.push_union(node, &specs)
}

/// In-place [`merge`]: the intersected union is appended to the same
/// arena; matched entries share both sides' child fragments by id and
/// untouched siblings are never copied.
pub fn merge_inplace(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, mut arena, roots) = rep.into_arena_parts();
    let parent = tree.node(a).parent;
    let mut new_tree = tree.clone();
    let outcome = new_tree.merge(a, b)?;
    let (a_pos, b_pos) = (outcome.a_pos, outcome.b_pos);
    let new_roots = match parent {
        None => {
            let mut out = Vec::with_capacity(roots.len() - 1);
            for (i, &r) in roots.iter().enumerate() {
                if i == b_pos {
                    continue;
                }
                if i == a_pos {
                    out.push(intersect_unions_inplace(
                        &mut arena,
                        roots[a_pos],
                        roots[b_pos],
                        a,
                    ));
                } else {
                    arena.note_shared(1);
                    out.push(r);
                }
            }
            if out.iter().any(|&u| arena.union_len(u) == 0) {
                // Empty relation: normalise every root to a fresh empty
                // union (the source arena stays as garbage for the
                // per-plan compaction).
                out = new_tree
                    .roots()
                    .iter()
                    .map(|&r| arena.empty_union(r))
                    .collect();
            }
            out
        }
        Some(p) => rewrite_at_inplace(&tree, &mut arena, &roots, p, &mut |arena, uid| {
            let rec = arena.urec(uid);
            let mut specs = Vec::with_capacity(rec.len as usize);
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for i in rec.start..rec.start + rec.len {
                let e = arena.erec(i);
                let ua = arena.kid_at(e.kids_start + a_pos as u32);
                let ub = arena.kid_at(e.kids_start + b_pos as u32);
                let merged = intersect_unions_inplace(arena, ua, ub, a);
                if arena.union_len(merged) == 0 {
                    continue; // dangling combination: prune this entry
                }
                kid_ids.clear();
                for j in 0..e.kids_len {
                    if j as usize == b_pos {
                        continue;
                    }
                    if j as usize == a_pos {
                        kid_ids.push(merged);
                    } else {
                        arena.note_shared(1);
                        kid_ids.push(arena.kid_at(e.kids_start + j));
                    }
                }
                specs.push(arena.entry_shared_val(e.val, &kid_ids));
            }
            Ok(Some(arena.push_union(rec.node, &specs)))
        })?,
    };
    let out = FRep::from_arena(new_tree, arena, new_roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// In-place [`intersect_unions`]: matched entries concatenate both
/// sides' kid ids (shared, never copied).
fn intersect_unions_inplace(arena: &mut Arena, ua: UnionId, ub: UnionId, node: NodeId) -> UnionId {
    // Phase 1 (read-only): the sorted intersection as value indices of
    // `a`'s column plus the concatenated shared kid lists.
    let matched: Vec<(u32, Vec<UnionId>)> = {
        let ra = arena.urec(ua);
        let rb = arena.urec(ub);
        let mut out = Vec::new();
        let mut j = rb.start;
        for i in ra.start..ra.start + ra.len {
            let ea = arena.erec(i);
            let va = arena.value_at(ra.node, ea.val);
            while j < rb.start + rb.len && arena.value_at(rb.node, arena.erec(j).val) < va {
                j += 1;
            }
            if j < rb.start + rb.len {
                let eb = arena.erec(j);
                if arena.value_at(rb.node, eb.val) == va {
                    j += 1;
                    let kids: Vec<UnionId> = (0..ea.kids_len)
                        .map(|k| arena.kid_at(ea.kids_start + k))
                        .chain((0..eb.kids_len).map(|k| arena.kid_at(eb.kids_start + k)))
                        .collect();
                    out.push((ea.val, kids));
                }
            }
        }
        out
    };
    let mut specs = Vec::with_capacity(matched.len());
    for (val, kids) in matched {
        arena.note_shared(kids.len() as u64);
        specs.push(arena.entry_shared_val(val, &kids));
    }
    arena.push_union(node, &specs)
}

/// Absorb: implements a selection `A = B` when `desc` (holding `B`) is a
/// strict descendant of `anc` (holding `A`).
pub fn absorb(rep: FRep, anc: NodeId, desc: NodeId) -> Result<FRep> {
    let (tree, arena, roots) = rep.into_arena_parts();
    if !tree.is_ancestor(anc, desc) {
        return Err(FdbError::InvalidOperator(format!(
            "absorb requires {desc:?} below {anc:?}"
        )));
    }
    let mut new_tree = tree.clone();
    let outcome = new_tree.absorb(anc, desc)?;
    let full = tree.root_path(desc);
    let anc_i = full
        .iter()
        .position(|&n| n == anc)
        .expect("anc on desc's root path");
    // Path from anc down to desc's parent, inclusive.
    let inner: Vec<NodeId> = full[anc_i..full.len() - 1].to_vec();
    let desc_pos = outcome.pos;
    let mut dst = Arena::default();
    let roots = rewrite_at(&tree, &arena, &roots, anc, &mut dst, &mut |ua, dst| {
        let mut specs = Vec::with_capacity(ua.len());
        for e in ua.entries() {
            let v = e.value().clone();
            if let Some(kids) = restrict_entry(&tree, e, &inner, desc_pos, &v, dst) {
                specs.push(dst.entry(ua.node(), v, &kids));
            }
        }
        Ok(Some(dst.push_union(ua.node(), &specs)))
    })?;
    let out = FRep::from_arena(new_tree, dst, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Restricts the `desc` unions below one `anc` entry to the value `v`,
/// splicing the matching entry's children in place of the `desc` union.
/// Returns the rewritten kid list for the entry, or `None` when the
/// restriction empties it (pruning).
fn restrict_entry(
    tree: &FTree,
    e: EntryRef<'_>,
    path: &[NodeId],
    desc_pos: usize,
    v: &Value,
    dst: &mut Arena,
) -> Option<Vec<UnionId>> {
    let src = e.arena();
    if path.len() == 1 {
        // `e` is an entry of desc's parent: restrict the desc child union.
        let du = e.child(desc_pos);
        let i = du.find(v)?;
        let de = du.entry(i);
        let mut kids = Vec::with_capacity(e.child_count() - 1 + de.child_count());
        for (j, c) in e.child_ids().enumerate() {
            if j == desc_pos {
                for dc in de.child_ids() {
                    kids.push(dst.copy_union_from(src, dc));
                }
            } else {
                kids.push(dst.copy_union_from(src, c));
            }
        }
        Some(kids)
    } else {
        let child_idx = tree
            .node(path[0])
            .children
            .iter()
            .position(|&c| c == path[1])
            .expect("path step is a child");
        let cu = e.child(child_idx);
        let mut specs = Vec::with_capacity(cu.len());
        for ce in cu.entries() {
            if let Some(ce_kids) = restrict_entry(tree, ce, &path[1..], desc_pos, v, dst) {
                specs.push(dst.entry(cu.node(), ce.value().clone(), &ce_kids));
            }
        }
        if specs.is_empty() {
            return None;
        }
        let new_cu = dst.push_union(cu.node(), &specs);
        let mut kids = Vec::with_capacity(e.child_count());
        for (j, c) in e.child_ids().enumerate() {
            kids.push(if j == child_idx {
                new_cu
            } else {
                dst.copy_union_from(src, c)
            });
        }
        Some(kids)
    }
}

/// In-place [`absorb`]: the restricted levels between `anc` and `desc`
/// are appended to the same arena; the matching `desc` entry's children
/// and every untouched sibling are shared by id.
pub fn absorb_inplace(rep: FRep, anc: NodeId, desc: NodeId) -> Result<FRep> {
    let (tree, mut arena, roots) = rep.into_arena_parts();
    if !tree.is_ancestor(anc, desc) {
        return Err(FdbError::InvalidOperator(format!(
            "absorb requires {desc:?} below {anc:?}"
        )));
    }
    let mut new_tree = tree.clone();
    let outcome = new_tree.absorb(anc, desc)?;
    let full = tree.root_path(desc);
    let anc_i = full
        .iter()
        .position(|&n| n == anc)
        .expect("anc on desc's root path");
    let inner: Vec<NodeId> = full[anc_i..full.len() - 1].to_vec();
    let desc_pos = outcome.pos;
    let roots = rewrite_at_inplace(&tree, &mut arena, &roots, anc, &mut |arena, uid| {
        let rec = arena.urec(uid);
        let mut specs = Vec::with_capacity(rec.len as usize);
        for i in rec.start..rec.start + rec.len {
            let e = arena.erec(i);
            let v = arena.value_at(rec.node, e.val).clone();
            if let Some(kids) = restrict_entry_inplace(&tree, arena, e, &inner, desc_pos, &v) {
                specs.push(arena.entry_shared_val(e.val, &kids));
            }
        }
        Ok(Some(arena.push_union(rec.node, &specs)))
    })?;
    let out = FRep::from_arena(new_tree, arena, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// In-place [`restrict_entry`]: returns the rewritten kid list for one
/// entry (fragments shared, the rewritten inner level appended), or
/// `None` when the restriction empties it.
fn restrict_entry_inplace(
    tree: &FTree,
    arena: &mut Arena,
    e: EntryRec,
    path: &[NodeId],
    desc_pos: usize,
    v: &Value,
) -> Option<Vec<UnionId>> {
    if path.len() == 1 {
        // `e` is an entry of desc's parent: restrict the desc child union.
        let du = arena.kid_at(e.kids_start + desc_pos as u32);
        let i = arena.find_entry(du, v)?;
        let de = arena.erec(i);
        let mut kids = Vec::with_capacity(e.kids_len as usize - 1 + de.kids_len as usize);
        for j in 0..e.kids_len {
            if j as usize == desc_pos {
                for k in 0..de.kids_len {
                    arena.note_shared(1);
                    kids.push(arena.kid_at(de.kids_start + k));
                }
            } else {
                arena.note_shared(1);
                kids.push(arena.kid_at(e.kids_start + j));
            }
        }
        Some(kids)
    } else {
        let child_idx = tree
            .node(path[0])
            .children
            .iter()
            .position(|&c| c == path[1])
            .expect("path step is a child");
        let cu = arena.kid_at(e.kids_start + child_idx as u32);
        let curec = arena.urec(cu);
        let mut specs = Vec::with_capacity(curec.len as usize);
        for i in curec.start..curec.start + curec.len {
            let ce = arena.erec(i);
            if let Some(ce_kids) = restrict_entry_inplace(tree, arena, ce, &path[1..], desc_pos, v)
            {
                specs.push(arena.entry_shared_val(ce.val, &ce_kids));
            }
        }
        if specs.is_empty() {
            return None;
        }
        let new_cu = arena.push_union(curec.node, &specs);
        let mut kids = Vec::with_capacity(e.kids_len as usize);
        for j in 0..e.kids_len {
            if j as usize == child_idx {
                kids.push(new_cu);
            } else {
                arena.note_shared(1);
                kids.push(arena.kid_at(e.kids_start + j));
            }
        }
        Some(kids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::product;
    use fdb_relational::{Catalog, Relation, Schema};

    /// Pizzas and Items from Figure 1 as path factorisations.
    fn pizzeria() -> (Catalog, FRep, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item");
        let item2 = c.intern("item2");
        let price = c.intern("price");
        let pizzas = Relation::from_rows(
            Schema::new(vec![pizza, item]),
            [
                ("Margherita", "base"),
                ("Capricciosa", "base"),
                ("Capricciosa", "ham"),
                ("Capricciosa", "mushrooms"),
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Hawaii", "pineapple"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item2, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rp = FRep::from_relation(&pizzas, FTree::path(&[pizza, item])).unwrap();
        let ri = FRep::from_relation(&items, FTree::path(&[item2, price])).unwrap();
        (c, rp, ri)
    }

    #[test]
    fn swap_preserves_semantics() {
        let (c, rp, _) = pizzeria();
        let cols = [c.lookup("pizza").unwrap(), c.lookup("item").unwrap()];
        let before = rp.flatten().project_cols(&cols).canonical();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let swapped = swap(rp, root, child).unwrap();
        // Same set of tuples, re-grouped: compare in a fixed column order.
        assert_eq!(swapped.flatten().project_cols(&cols).canonical(), before);
        // item is now the root.
        assert_eq!(swapped.ftree().roots().len(), 1);
        assert_eq!(swapped.ftree().depth(root), 1);
    }

    #[test]
    fn swap_regroups_by_child_value() {
        let (_, rp, _) = pizzeria();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let swapped = swap(rp, root, child).unwrap();
        // The item union at the top has 4 distinct items; "base" lists 3
        // pizzas beneath it.
        let u = swapped.root(0);
        assert_eq!(u.len(), 4);
        let base = u.entry(0);
        assert_eq!(*base.value(), Value::str("base"));
        assert_eq!(base.child(0).len(), 3);
    }

    #[test]
    fn double_swap_is_identity_on_paths() {
        let (_, rp, _) = pizzeria();
        let before = rp.clone();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let once = swap(rp, root, child).unwrap();
        let twice = swap(once, child, root).unwrap();
        assert_eq!(twice.flatten().canonical(), before.flatten().canonical());
        assert_eq!(twice.singleton_count(), before.singleton_count());
    }

    #[test]
    fn merge_implements_join() {
        // FDB's join: product, swap item to the top of the Pizzas tree,
        // merge with the Items root — then compare against the relational
        // natural join.
        let (c, rp, ri) = pizzeria();
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let merged = merge(joined, item_node, item2_node).unwrap();
        merged.check_invariants().unwrap();
        assert_eq!(merged.tuple_count(), 7);
        // Schema: item (class {item,item2}) → {pizza, price}.
        let root = merged.ftree().roots()[0];
        assert_eq!(merged.ftree().node(root).label.exposed_attrs().len(), 2);
        let price = c.lookup("price").unwrap();
        let s = crate::agg::sum_union(
            merged.ftree(),
            merged.root(0),
            &crate::ftree::AggOp::Sum(price),
        )
        .unwrap();
        // Sum of prices over the join: base 6×3 + ham 1×2 + mushrooms 1 +
        // pineapple 2 = 23.
        assert_eq!(s.into_value(), Value::Int(23));
    }

    #[test]
    fn merge_prunes_dangling_values() {
        let (_, rp, ri) = pizzeria();
        // Restrict Items to just "ham": the merge must prune pizzas that
        // only join with other items... (Margherita has only "base").
        let ri = crate::ops::select_const(
            ri,
            fdb_relational::AttrId(3),
            fdb_relational::CmpOp::Eq,
            &Value::Int(1),
        )
        .unwrap(); // price = 1: ham, mushrooms
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let merged = merge(joined, item_node, item2_node).unwrap();
        assert_eq!(merged.tuple_count(), 3); // Capricciosa×{ham,mushrooms}, Hawaii×ham
    }

    #[test]
    fn absorb_restricts_descendant() {
        // Self-join-style condition pizza = item2 would be type-odd; build
        // a small numeric example instead: R(a,b) with tree a → b, absorb
        // b into a implements σ_{a=b}(R).
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (2, 2), (3, 1)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let na = rep.ftree().roots()[0];
        let nb = rep.ftree().node(na).children[0];
        let out = absorb(rep, na, nb).unwrap();
        out.check_invariants().unwrap();
        // σ_{a=b} keeps (1,1) and (2,2).
        assert_eq!(out.tuple_count(), 2);
        let flat = out.flatten();
        // Class {a, b} exposes both columns with the same value.
        assert_eq!(flat.arity(), 2);
        assert_eq!(flat.row(0), &[Value::Int(1), Value::Int(1)]);
        assert_eq!(flat.row(1), &[Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn absorb_through_intermediate_level() {
        // Tree a → x → b; absorb b into a must restrict every b-union two
        // levels down and prune dead x-branches.
        let mut c = Catalog::new();
        let a = c.intern("a");
        let x = c.intern("x");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, x, b]),
            [(1, 10, 1), (1, 20, 2), (2, 10, 2), (2, 30, 1)]
                .into_iter()
                .map(|(p, q, r)| vec![Value::Int(p), Value::Int(q), Value::Int(r)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, x, b])).unwrap();
        let na = rep.ftree().roots()[0];
        let nb = rep.ftree().node_of_attr(c.lookup("b").unwrap()).unwrap();
        let out = absorb(rep, na, nb).unwrap();
        out.check_invariants().unwrap();
        // Rows with a = b: (1,10,1) and (2,10,2).
        assert_eq!(out.tuple_count(), 2);
        let na_children = out.ftree().node(na).children.clone();
        assert_eq!(na_children.len(), 1); // x remains, b absorbed
    }

    #[test]
    fn swap_requires_parent_child_relation() {
        let (_, rp, _) = pizzeria();
        let root = rp.ftree().roots()[0];
        assert!(swap(rp.clone(), root, root).is_err());
        assert!(swap_inplace(rp, root, root).is_err());
    }

    #[test]
    fn inplace_swap_matches_legacy() {
        let (_, rp, _) = pizzeria();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let legacy = swap(rp.clone(), root, child).unwrap();
        let inplace = swap_inplace(rp, root, child).unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.same_data(&legacy));
        assert_eq!(
            inplace.ftree().canonical_key(),
            legacy.ftree().canonical_key()
        );
        assert_eq!(inplace.singleton_count(), legacy.singleton_count());
        // Double swap through the in-place path restores the data too.
        let twice = swap_inplace(inplace, child, root).unwrap();
        twice.check_invariants().unwrap();
    }

    #[test]
    fn inplace_merge_matches_legacy() {
        let (_, rp, ri) = pizzeria();
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let legacy = merge(joined.clone(), item_node, item2_node).unwrap();
        let inplace = merge_inplace(joined, item_node, item2_node).unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.same_data(&legacy));
        assert_eq!(inplace.tuple_count(), 7);
    }

    #[test]
    fn inplace_merge_empty_result_normalises_roots() {
        let (_, rp, ri) = pizzeria();
        // Restrict Items to a price matching nothing, so the merge
        // empties the relation.
        let ri = crate::ops::select_const(
            ri,
            fdb_relational::AttrId(3),
            fdb_relational::CmpOp::Gt,
            &Value::Int(100),
        )
        .unwrap();
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let legacy = merge(joined.clone(), item_node, item2_node).unwrap();
        let inplace = merge_inplace(joined, item_node, item2_node).unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.is_empty());
        assert!(inplace.same_data(&legacy));
    }

    #[test]
    fn inplace_absorb_matches_legacy() {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let x = c.intern("x");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, x, b]),
            [(1, 10, 1), (1, 20, 2), (2, 10, 2), (2, 30, 1), (3, 5, 9)]
                .into_iter()
                .map(|(p, q, r)| vec![Value::Int(p), Value::Int(q), Value::Int(r)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, x, b])).unwrap();
        let na = rep.ftree().roots()[0];
        let nb = rep.ftree().node_of_attr(b).unwrap();
        let legacy = absorb(rep.clone(), na, nb).unwrap();
        let inplace = absorb_inplace(rep, na, nb).unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.same_data(&legacy));
        assert_eq!(inplace.tuple_count(), 2);
    }
}
