//! Grouped aggregation: the `̟G; α1←F1,…,αk←Fk` operator on flat relations.
//!
//! Two strategies mirror the engines benchmarked in the paper (§6, Exp. 1):
//! * [`GroupStrategy::Sort`] — sort by the grouping attributes, then fold
//!   each run in one scan (SQLite's approach, and the paper's RDB baseline);
//! * [`GroupStrategy::Hash`] — a hash table keyed by the group values
//!   (PostgreSQL's approach).
//!
//! Both also implement the internal *weighted* aggregates needed by the
//! eager-aggregation planner (`sum(a·b·…)` across partial-aggregate
//! columns, Yan–Larson \[31\]).

use crate::agg::{Accumulator, AggFunc, AggSpec};
use crate::attr::AttrId;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Number, Value};
use std::collections::HashMap;

/// Grouping strategy of the baseline engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupStrategy {
    /// Sort on the group-by attributes, then aggregate runs in one scan.
    Sort,
    /// Hash-partition groups in one pass.
    Hash,
}

/// Internal physical aggregate: either a plain [`AggFunc`] or a weighted
/// combination over partial-aggregate columns, used to recombine eager
/// pre-aggregates: `SumProd([s, c1, c2])` computes `Σ s·c1·c2` per group.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PhysAgg {
    Plain(AggFunc),
    /// Sum over the product of the listed columns.
    SumProd(Vec<AttrId>),
}

impl PhysAgg {
    fn make_acc(&self) -> PhysAcc {
        match self {
            PhysAgg::Plain(f) => PhysAcc::Plain(Accumulator::new(*f)),
            PhysAgg::SumProd(_) => PhysAcc::SumProd(Number::ZERO),
        }
    }
}

enum PhysAcc {
    Plain(Accumulator),
    SumProd(Number),
}

impl PhysAcc {
    fn update(&mut self, spec: &PhysAgg, schema: &Schema, row: &[Value]) {
        match (self, spec) {
            (PhysAcc::Plain(acc), PhysAgg::Plain(f)) => {
                let v = f.attr().map(|a| {
                    let p = schema.position(a).expect("aggregated attr in schema");
                    &row[p]
                });
                acc.update(v);
            }
            (PhysAcc::SumProd(acc), PhysAgg::SumProd(cols)) => {
                let mut prod = Number::Int(1);
                for &a in cols {
                    let p = schema.position(a).expect("weighted attr in schema");
                    prod = prod.mul(row[p].as_number().expect("weight must be numeric"));
                }
                *acc = acc.add(prod);
            }
            _ => unreachable!("accumulator/spec mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            PhysAcc::Plain(acc) => acc.finish(),
            PhysAcc::SumProd(n) => n.into_value(),
        }
    }
}

/// One physical aggregate output: function plus output attribute.
#[derive(Clone, Debug)]
pub struct PhysAggSpec {
    pub agg: PhysAgg,
    pub output: AttrId,
}

impl From<AggSpec> for PhysAggSpec {
    fn from(s: AggSpec) -> Self {
        PhysAggSpec {
            agg: PhysAgg::Plain(s.func),
            output: s.output,
        }
    }
}

/// Groups `rel` by `group` and evaluates `aggs` within each group.
///
/// The output schema is `group ++ outputs(aggs)`; output tuples appear in
/// ascending group order for [`GroupStrategy::Sort`] and in unspecified
/// order for [`GroupStrategy::Hash`] (callers needing an order sort
/// afterwards, exactly like the engines the strategies model).
pub fn group_aggregate(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[PhysAggSpec],
    strategy: GroupStrategy,
) -> Relation {
    group_aggregate_par(rel, group, aggs, strategy, 1)
}

/// [`group_aggregate`] on up to `threads` worker threads.
///
/// * **Sort**: the input is sorted by the parallel stable sort, then the
///   run-fold is partitioned into group-aligned row ranges — each group
///   is folded wholly by one worker, so the result (including its order)
///   is identical to the serial fold for every thread count.
/// * **Hash**: each worker owns the keys whose (fixed-seed) hash lands
///   in its partition and scans the input for them; concatenation order
///   across workers is unspecified, exactly like the serial hash table's
///   iteration order.
pub fn group_aggregate_par(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[PhysAggSpec],
    strategy: GroupStrategy,
    threads: usize,
) -> Relation {
    let threads = threads.max(1);
    let schema = rel.schema().clone();
    let group_pos: Vec<usize> = group
        .iter()
        .map(|&a| schema.position(a).expect("group attr in schema"))
        .collect();
    let out_schema = Schema::new(
        group
            .iter()
            .copied()
            .chain(aggs.iter().map(|a| a.output))
            .collect(),
    );
    if rel.is_empty() {
        return Relation::empty(out_schema);
    }
    match strategy {
        GroupStrategy::Sort => {
            let keys: Vec<crate::relation::SortKey> = group
                .iter()
                .map(|&a| crate::relation::SortKey::asc(a))
                .collect();
            let mut sorted = rel.clone();
            sorted.sort_by_keys_par(&keys, threads);
            let n = sorted.len();
            if threads == 1 || n < 2 {
                return fold_sorted_range(&sorted, 0, n, &schema, &group_pos, aggs, &out_schema);
            }
            // Partition rows into group-aligned ranges: a boundary may
            // only fall where the group key changes, so every group is
            // folded by exactly one worker.
            let same_key = |i: usize, j: usize| {
                group_pos
                    .iter()
                    .all(|&p| sorted.row(i)[p] == sorted.row(j)[p])
            };
            // Morsel-count ranges (~4× threads, see fdb-exec): when one
            // group dominates the table, its range stays pinned to one
            // worker while the many small ranges rebalance via stealing.
            let parts = fdb_exec::morsel_count(n, threads);
            let mut bounds: Vec<usize> = vec![0];
            for t in 1..parts {
                let mut b = (t * n) / parts;
                let lo = *bounds.last().expect("non-empty");
                b = b.max(lo);
                while b < n && b > 0 && same_key(b - 1, b) {
                    b += 1;
                }
                bounds.push(b);
            }
            bounds.push(n);
            let ranges: Vec<(usize, usize)> = bounds
                .windows(2)
                .map(|w| (w[0], w[1]))
                .filter(|&(lo, hi)| lo < hi)
                .collect();
            let parts = fdb_exec::parallel_map(threads, ranges, |(lo, hi)| {
                fold_sorted_range(&sorted, lo, hi, &schema, &group_pos, aggs, &out_schema)
            });
            concat_parts(out_schema, parts)
        }
        GroupStrategy::Hash => {
            let n = rel.len();
            if threads == 1 {
                return fold_hash_indices(rel, 0..n, &schema, &group_pos, aggs, &out_schema);
            }
            // Each partition of the key space is aggregated wholly by
            // one worker (no accumulator merging, and each key's rows
            // fold in input order exactly like the serial table). The
            // partition count follows the morsel sizing rule (~4×
            // threads) so a hot key's partition pins one worker while
            // the other partitions drain via stealing. Key hashes are
            // computed once in parallel, then one serial O(n) pass
            // buckets row indices so each worker touches only its own
            // rows.
            let partitions = fdb_exec::morsel_count(n, threads);
            let chunks = fdb_exec::split_morsels((0..n).collect::<Vec<usize>>(), threads);
            let partition_of: Vec<u64> = fdb_exec::parallel_map(threads, chunks, |chunk| {
                chunk
                    .into_iter()
                    .map(|i| key_partition(rel.row(i), &group_pos, partitions as u64))
                    .collect::<Vec<u64>>()
            })
            .into_iter()
            .flatten()
            .collect();
            let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); partitions];
            for (i, &part) in partition_of.iter().enumerate() {
                buckets[part as usize].push(i);
            }
            let parts = fdb_exec::parallel_map(threads, buckets, |bucket| {
                fold_hash_indices(
                    rel,
                    bucket.into_iter(),
                    &schema,
                    &group_pos,
                    aggs,
                    &out_schema,
                )
            });
            concat_parts(out_schema, parts)
        }
    }
}

/// Hash-groups the rows at the given indices (in index order, so each
/// key's accumulation folds exactly as in a serial scan) and emits one
/// output row per key in the table's iteration order.
fn fold_hash_indices(
    rel: &Relation,
    indices: impl Iterator<Item = usize>,
    schema: &Schema,
    group_pos: &[usize],
    aggs: &[PhysAggSpec],
    out_schema: &Schema,
) -> Relation {
    let mut table: HashMap<Vec<Value>, Vec<PhysAcc>> = HashMap::new();
    for i in indices {
        let row = rel.row(i);
        let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
        let accs = table
            .entry(key)
            .or_insert_with(|| aggs.iter().map(|a| a.agg.make_acc()).collect());
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            acc.update(&spec.agg, schema, row);
        }
    }
    let mut out = Relation::empty(out_schema.clone());
    let mut buf: Vec<Value> = Vec::new();
    for (key, accs) in table {
        buf.clear();
        buf.extend(key);
        for acc in accs {
            buf.push(acc.finish());
        }
        out.push_row(&buf);
    }
    out
}

/// Fixed-seed partition of a row's group key: deterministic within a
/// build (SipHash with zeroed keys), independent of thread scheduling.
fn key_partition(row: &[Value], group_pos: &[usize], workers: u64) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    for &p in group_pos {
        row[p].hash(&mut h);
    }
    h.finish() % workers
}

/// Folds the sorted row range `[lo, hi)` into one output row per group
/// run — the serial sort-grouping scan, restricted to a range.
fn fold_sorted_range(
    sorted: &Relation,
    lo: usize,
    hi: usize,
    schema: &Schema,
    group_pos: &[usize],
    aggs: &[PhysAggSpec],
    out_schema: &Schema,
) -> Relation {
    let mut out = Relation::empty(out_schema.clone());
    let mut accs: Vec<PhysAcc> = aggs.iter().map(|a| a.agg.make_acc()).collect();
    let mut current: Option<Vec<Value>> = None;
    let mut buf: Vec<Value> = Vec::new();
    let flush =
        |accs: &mut Vec<PhysAcc>, key: &[Value], out: &mut Relation, buf: &mut Vec<Value>| {
            buf.clear();
            buf.extend_from_slice(key);
            for acc in std::mem::replace(accs, aggs.iter().map(|a| a.agg.make_acc()).collect()) {
                buf.push(acc.finish());
            }
            out.push_row(buf);
        };
    for i in lo..hi {
        let row = sorted.row(i);
        let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
        match &current {
            Some(k) if *k == key => {}
            Some(k) => {
                let k = k.clone();
                flush(&mut accs, &k, &mut out, &mut buf);
                current = Some(key);
            }
            None => current = Some(key),
        }
        for (acc, spec) in accs.iter_mut().zip(aggs) {
            acc.update(&spec.agg, schema, row);
        }
    }
    if let Some(k) = current {
        flush(&mut accs, &k, &mut out, &mut buf);
    }
    out
}

/// Concatenates per-worker partial outputs in worker order.
fn concat_parts(out_schema: Schema, parts: Vec<Relation>) -> Relation {
    let mut out = Relation::empty(out_schema);
    for part in parts {
        out.reserve(part.len());
        for row in part.rows() {
            out.push_row(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn sales() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let cust = c.intern("customer");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![cust, price]),
            [
                ("Lucia", 9),
                ("Mario", 8),
                ("Mario", 8),
                ("Mario", 6),
                ("Pietro", 9),
            ]
            .into_iter()
            .map(|(n, p)| vec![Value::str(n), Value::Int(p)]),
        );
        (c, rel)
    }

    fn specs(c: &mut Catalog) -> Vec<PhysAggSpec> {
        let price = c.lookup("price").unwrap();
        let s = c.intern("revenue");
        let n = c.intern("orders");
        vec![
            AggSpec::new(AggFunc::Sum(price), s).into(),
            AggSpec::new(AggFunc::Count, n).into(),
        ]
    }

    #[test]
    fn sort_and_hash_agree() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let aggs = specs(&mut c);
        let a = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort).canonical();
        let b = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Hash).canonical();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn sort_strategy_emits_sorted_groups() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let aggs = specs(&mut c);
        let out = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort);
        let names: Vec<String> = out
            .rows()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["Lucia", "Mario", "Pietro"]);
        // Mario: 8 + 8 + 6 = 22 over 3 orders (matches Example 1's revenue
        // per customer, with the duplicate standing for two order dates).
        assert_eq!(out.row(1)[1], Value::Int(22));
        assert_eq!(out.row(1)[2], Value::Int(3));
    }

    #[test]
    fn global_aggregate_without_grouping() {
        let (mut c, rel) = sales();
        let aggs = specs(&mut c);
        let out = group_aggregate(&rel, &[], &aggs, GroupStrategy::Sort);
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Int(40));
        assert_eq!(out.row(0)[1], Value::Int(5));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let (mut c, rel) = sales();
        let empty = Relation::empty(rel.schema().clone());
        let aggs = specs(&mut c);
        let out = group_aggregate(&empty, &[], &aggs, GroupStrategy::Hash);
        assert!(out.is_empty());
    }

    #[test]
    fn sum_prod_recombines_partials() {
        // Simulates the eager-aggregation combine step: per-group partial
        // sums s with counts c, final = Σ s·c.
        let mut c = Catalog::new();
        let g = c.intern("g");
        let s = c.intern("s");
        let n = c.intern("c");
        let rel = Relation::from_rows(
            Schema::new(vec![g, s, n]),
            [(1, 8, 2), (1, 6, 1), (2, 9, 1)]
                .into_iter()
                .map(|(a, b, d)| vec![Value::Int(a), Value::Int(b), Value::Int(d)]),
        );
        let out_attr = c.intern("total");
        let aggs = vec![PhysAggSpec {
            agg: PhysAgg::SumProd(vec![s, n]),
            output: out_attr,
        }];
        let out = group_aggregate(&rel, &[g], &aggs, GroupStrategy::Sort);
        assert_eq!(out.row(0), &[Value::Int(1), Value::Int(22)]);
        assert_eq!(out.row(1), &[Value::Int(2), Value::Int(9)]);
    }

    #[test]
    fn parallel_sort_grouping_matches_serial_exactly() {
        // Skewed groups: one key owns most rows, so group-aligned range
        // splitting must extend a boundary across the hot run.
        let mut c = Catalog::new();
        let g = c.intern("g");
        let v = c.intern("v");
        let mut rows: Vec<(i64, i64)> = (0..60).map(|i| (0, i)).collect();
        rows.extend((0..12).map(|i| (1 + (i % 3), i)));
        let rel = Relation::from_rows(
            Schema::new(vec![g, v]),
            rows.iter()
                .map(|&(a, b)| vec![Value::Int(a), Value::Int(b)]),
        );
        let s = c.intern("s");
        let n = c.intern("n");
        let aggs = vec![
            PhysAggSpec::from(AggSpec::new(AggFunc::Sum(v), s)),
            PhysAggSpec::from(AggSpec::new(AggFunc::Count, n)),
        ];
        let serial = group_aggregate(&rel, &[g], &aggs, GroupStrategy::Sort);
        for threads in [2, 3, 4, 7] {
            let par = group_aggregate_par(&rel, &[g], &aggs, GroupStrategy::Sort, threads);
            // Sort grouping is order-deterministic: exact equality.
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_hash_grouping_matches_serial_as_a_set() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let aggs = specs(&mut c);
        let serial = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Hash).canonical();
        for threads in [2, 4] {
            let par =
                group_aggregate_par(&rel, &[cust], &aggs, GroupStrategy::Hash, threads).canonical();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn parallel_global_aggregate_without_grouping() {
        let (mut c, rel) = sales();
        let aggs = specs(&mut c);
        for strategy in [GroupStrategy::Sort, GroupStrategy::Hash] {
            let out = group_aggregate_par(&rel, &[], &aggs, strategy, 4);
            assert_eq!(out.len(), 1);
            assert_eq!(out.row(0)[0], Value::Int(40));
            assert_eq!(out.row(0)[1], Value::Int(5));
        }
    }

    #[test]
    fn parallel_empty_input_yields_no_groups() {
        let (mut c, rel) = sales();
        let empty = Relation::empty(rel.schema().clone());
        let aggs = specs(&mut c);
        for strategy in [GroupStrategy::Sort, GroupStrategy::Hash] {
            assert!(group_aggregate_par(&empty, &[], &aggs, strategy, 4).is_empty());
        }
    }

    #[test]
    fn min_max_grouping() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let price = c.lookup("price").unwrap();
        let mn = c.intern("cheapest");
        let aggs = vec![PhysAggSpec::from(AggSpec::new(AggFunc::Min(price), mn))];
        let out = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort);
        assert_eq!(out.row(1), &[Value::str("Mario"), Value::Int(6)]);
    }
}
