//! Error type for the relational substrate.

use std::fmt;

/// Errors raised by relational planning and execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RelError {
    /// A plan referenced a relation that is not registered.
    UnknownRelation(String),
    /// A plan referenced an attribute missing from its input schema.
    MissingAttribute { attr: String, context: String },
    /// The requested rewrite (e.g. eager aggregation) does not apply.
    Unsupported(String),
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownRelation(n) => write!(f, "unknown relation `{n}`"),
            RelError::MissingAttribute { attr, context } => {
                write!(f, "attribute `{attr}` not available in {context}")
            }
            RelError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for RelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert!(RelError::UnknownRelation("R".into())
            .to_string()
            .contains("R"));
        let e = RelError::MissingAttribute {
            attr: "price".into(),
            context: "eager pre-aggregation".into(),
        };
        assert!(e.to_string().contains("price"));
    }
}
