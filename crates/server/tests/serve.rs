//! Integration tests: a live `fdb-server` against real sockets —
//! protocol conformance, 16-way concurrent byte-identity with the
//! library execution, LOAD/epoch behaviour, deadlines, plan-cache
//! hits and clean shutdown.

use fdb::workload::orders::{generate, OrdersConfig};
use fdb::{Catalog, Db, FdbEngine, Relation, Schema, Value};
use fdb_server::proto::{render_outcome, split_fields};
use fdb_server::{spawn, Client, ServerOptions};
use std::time::Duration;

/// The pizzeria database behind a [`Db`].
fn pizzeria_db() -> Db {
    let mut catalog = Catalog::new();
    let data = fdb::workload::pizzeria::pizzeria(&mut catalog);
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", data.orders);
    engine.register_relation("Pizzas", data.pizzas);
    engine.register_relation("Items", data.items);
    Db::from_engine(engine)
}

/// The paper's Orders/Packages/Items database behind a [`Db`].
fn orders_db() -> Db {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 15,
            seed: 7,
        },
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", ds.orders);
    engine.register_relation("Packages", ds.packages);
    engine.register_relation("Items", ds.items);
    Db::from_engine(engine)
}

fn stat(payload: &[String], key: &str) -> String {
    payload
        .iter()
        .map(|l| split_fields(l).unwrap())
        .find(|f| f[0] == key)
        .unwrap_or_else(|| panic!("no `{key}` in STATS"))[1]
        .clone()
}

#[test]
fn protocol_basics() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    assert_eq!(c.request("PING").unwrap().unwrap(), Vec::<String>::new());

    let rows = c
        .query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    assert_eq!(rows, vec!["total".to_string(), "40".to_string()]);

    let explain = c
        .request("EXPLAIN SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    assert!(explain.iter().any(|l| l.contains("f-plan")), "{explain:?}");

    // Errors keep the connection usable.
    let err = c.request("FROBNICATE now").unwrap().unwrap_err();
    assert!(err.contains("unknown verb"), "{err}");
    let err = c.query("SELECT nothing FROM Nowhere").unwrap().unwrap_err();
    assert!(!err.is_empty());
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "relations"), "Items,Orders,Pizzas");
    assert_eq!(stat(&stats, "errors"), "2");

    c.quit().unwrap();
    server.shutdown();
}

/// The acceptance bar: 16 concurrent connections, interleaved queries,
/// every response byte-identical to the single-threaded library run.
#[test]
fn sixteen_connections_byte_identical_to_library() {
    let db = orders_db();
    let queries = [
        "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
         GROUP BY customer ORDER BY revenue DESC, customer LIMIT 10",
        "SELECT COUNT(*) AS n FROM Orders, Packages, Items",
        "SELECT package, COUNT(*) AS items FROM Packages GROUP BY package ORDER BY package",
        "SELECT customer, date, SUM(price) AS spent FROM Orders, Packages, Items \
         GROUP BY customer, date ORDER BY customer, date",
    ];
    // Single-threaded library ground truth, rendered exactly as the
    // server renders (header + escaped TAB-joined rows).
    let expected: Vec<Vec<String>> = queries
        .iter()
        .map(|sql| {
            let mut session = db.session();
            let outcome = session.query(sql).unwrap();
            render_outcome(&outcome)
        })
        .collect();

    // No deadline: 16 concurrent debug-build executions on a loaded CI
    // box can exceed any fixed budget, and this test pins identity,
    // not latency.
    let opts = ServerOptions::new().workers(16).deadline(None);
    let mut server = spawn(db, "127.0.0.1:0", opts).unwrap();
    let addr = server.addr();

    std::thread::scope(|scope| {
        for t in 0..16 {
            let expected = &expected;
            scope.spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                // Interleave: each connection walks the query list
                // several times, starting at a different offset.
                for i in 0..8 {
                    let q = (t + i) % queries.len();
                    let got = c.query(queries[q]).unwrap().unwrap();
                    assert_eq!(got, expected[q], "conn {t}, query {q}");
                }
                c.quit().unwrap();
            });
        }
    });

    // All 16 connections were truly concurrent (held open together).
    let mut c = Client::connect(addr).unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "queries"), format!("{}", 16 * 8));
    server.shutdown();
}

#[test]
fn load_registers_a_view_and_bumps_the_epoch() {
    // Persist a factorised view to a temp file.
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 10,
            seed: 21,
        },
    );
    let mut producer = FdbEngine::new(catalog);
    producer.register_view("R1", ds.factorised_view());
    let dir = std::env::temp_dir().join("fdb_server_load_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("r1.fdbv1");
    {
        let file = std::fs::File::create(&path).unwrap();
        producer
            .save_view("R1", std::io::BufWriter::new(file))
            .unwrap();
    }

    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let before: u64 = stat(&c.request("STATS").unwrap().unwrap(), "epoch")
        .parse()
        .unwrap();
    c.request(&format!("LOAD OrdersView {}", path.display()))
        .unwrap()
        .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    let after: u64 = stat(&stats, "epoch").parse().unwrap();
    assert!(after > before, "LOAD must bump the epoch");
    assert_eq!(stat(&stats, "views"), "OrdersView");

    // The loaded view is queryable on the same connection.
    let rows = c
        .query("SELECT COUNT(*) AS n FROM OrdersView")
        .unwrap()
        .unwrap();
    assert_eq!(rows[0], "n");
    assert!(rows[1].parse::<i64>().unwrap() > 0);

    // Loading from a missing path reports, doesn't wedge.
    let err = c
        .request("LOAD Broken /nonexistent/path.fdbv1")
        .unwrap()
        .unwrap_err();
    assert!(err.contains("cannot open"), "{err}");

    c.quit().unwrap();
    server.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn zero_deadline_reports_deadline_exceeded() {
    let opts = ServerOptions::new().deadline(Some(Duration::ZERO));
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", opts).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c
        .query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap_err();
    assert!(err.contains("deadline exceeded"), "{err}");
    // The worker survives; the connection still answers.
    assert!(c.request("PING").unwrap().is_ok());
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn plan_cache_serves_repeats_identically() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let sql = "SELECT customer, SUM(price) AS spent FROM Orders, Pizzas, Items \
               GROUP BY customer ORDER BY spent DESC";
    let first = c.query(sql).unwrap().unwrap();
    // Same query, different whitespace: normalisation must hit.
    let second = c
        .query(
            "SELECT customer,  SUM(price) AS spent FROM Orders, Pizzas, Items \
                GROUP BY customer    ORDER BY spent DESC;",
        )
        .unwrap()
        .unwrap();
    assert_eq!(first, second);
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1");
    assert_eq!(stat(&stats, "cache_misses"), "1");
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn stats_reports_per_strategy_query_counts() {
    let mut server = spawn(pizzeria_db(), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    // Unordered: plain aggregate, no ORDER BY.
    c.query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    // Streamed: ORDER BY on a group attribute, realised in-tree.
    c.query(
        "SELECT customer, SUM(price) AS spent FROM Orders, Pizzas, Items \
         GROUP BY customer ORDER BY customer",
    )
    .unwrap()
    .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "strategy_unordered"), "1");
    assert_eq!(stat(&stats, "strategy_stream"), "1");
    assert_eq!(stat(&stats, "strategy_direct"), "0");
    // A cached repeat must NOT bump the executed-strategy counters.
    c.query("SELECT SUM(price) AS total FROM Orders, Pizzas, Items")
        .unwrap()
        .unwrap();
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "strategy_unordered"), "1");
    assert_eq!(stat(&stats, "cache_hits"), "1");
    // Total executed queries = sum of the per-strategy counters + hits.
    let executed: u64 = [
        "strategy_unordered",
        "strategy_stream",
        "strategy_direct",
        "strategy_heap",
        "strategy_sort",
    ]
    .iter()
    .map(|k| stat(&stats, k).parse::<u64>().unwrap())
    .sum();
    let hits: u64 = stat(&stats, "cache_hits").parse().unwrap();
    let queries: u64 = stat(&stats, "queries").parse().unwrap();
    assert_eq!(executed + hits, queries);
    c.quit().unwrap();
    server.shutdown();
}

/// Regression: the cache key must not collapse whitespace inside string
/// literals. Before the fix, `normalise_sql` keyed `'a b'` and `'a  b'`
/// identically, so the second query was served the first query's cached
/// response — wrong rows, straight off the socket.
#[test]
fn cache_keeps_literals_with_different_whitespace_distinct() {
    let mut catalog = Catalog::new();
    let name = catalog.intern("name");
    let qty = catalog.intern("qty");
    let rel = Relation::from_rows(
        Schema::new(vec![name, qty]),
        [("a b", 1i64), ("a  b", 2)]
            .into_iter()
            .map(|(n, q)| vec![Value::str(n), Value::Int(q)]),
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("T", rel);
    let mut server = spawn(Db::from_engine(engine), "127.0.0.1:0", ServerOptions::new()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();

    let one = c
        .query("SELECT SUM(qty) AS s FROM T WHERE name = 'a b'")
        .unwrap()
        .unwrap();
    assert_eq!(one, vec!["s".to_string(), "1".to_string()]);
    // Differs only in the literal's internal whitespace — a distinct
    // query with a distinct answer, not a cache hit on the one above.
    let two = c
        .query("SELECT SUM(qty) AS s FROM T WHERE name = 'a  b'")
        .unwrap()
        .unwrap();
    assert_eq!(two, vec!["s".to_string(), "2".to_string()]);

    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "0");
    assert_eq!(stat(&stats, "cache_misses"), "2");
    // Layout whitespace *outside* literals still normalises to a hit.
    let again = c
        .query("SELECT  SUM(qty)  AS s FROM T WHERE name = 'a  b' ;")
        .unwrap()
        .unwrap();
    assert_eq!(again, two);
    let stats = c.request("STATS").unwrap().unwrap();
    assert_eq!(stat(&stats, "cache_hits"), "1");
    c.quit().unwrap();
    server.shutdown();
}

#[test]
fn shutdown_is_clean_with_idle_connections() {
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(2),
    )
    .unwrap();
    let addr = server.addr();
    // Hold two idle connections open — shutdown must not hang on them.
    let idle1 = Client::connect(addr).unwrap();
    let idle2 = Client::connect(addr).unwrap();
    let started = std::time::Instant::now();
    server.shutdown();
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "shutdown blocked on idle connections"
    );
    drop((idle1, idle2));
    // The listener is gone: a fresh connection now fails or yields EOF.
    match Client::connect(addr) {
        Err(_) => {}
        Ok(mut c) => {
            assert!(c.request("PING").is_err(), "server accepted after shutdown");
        }
    }
}

#[test]
fn auto_worker_count_tracks_available_parallelism() {
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(0),
    )
    .unwrap();
    assert_eq!(server.workers(), fdb_server::auto_workers());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The old rule floored auto at DEFAULT_WORKERS (16) regardless of
    // hardware; the floor must now track the machine: at most 2× the
    // available parallelism, and never starving bigger machines.
    assert!(
        server.workers() <= 2 * cores,
        "auto pool ({}) oversubscribes {cores} core(s)",
        server.workers()
    );
    assert!(server.workers() >= cores.min(fdb_server::DEFAULT_WORKERS));
    // A PING round-trips on the auto-sized pool.
    let mut c = Client::connect(server.addr()).unwrap();
    assert_eq!(c.request("PING").unwrap().unwrap(), Vec::<String>::new());
    c.quit().unwrap();
    server.shutdown();

    // Explicit counts are taken literally, no floor applied.
    let mut server = spawn(
        pizzeria_db(),
        "127.0.0.1:0",
        ServerOptions::new().workers(3),
    )
    .unwrap();
    assert_eq!(server.workers(), 3);
    server.shutdown();
}
