//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT [DISTINCT] items FROM tables
//!              [WHERE conj] [GROUP BY attrs] [HAVING conj]
//!              [ORDER BY keys] [LIMIT int] [';']
//! items     := '*' | item (',' item)*
//! item      := agg [AS ident] | ident
//! agg       := (SUM|MIN|MAX|AVG) '(' ident ')' | COUNT '(' ('*'|ident) ')'
//! tables    := ident ((',' | NATURAL JOIN) ident)*
//! conj      := cond (AND cond)*
//! cond      := operand cmp operand        -- at least one side an attribute
//! keys      := ident [ASC|DESC] (',' ident [ASC|DESC])*
//! ```
//!
//! Attribute names are resolved against the natural join of the `FROM`
//! schemas and interned into the shared catalog; the result is a fully
//! resolved [`Query`].

use crate::ast::{Query, SelectItem};
use crate::error::QueryError;
use crate::lexer::{lex, Sym, Token};
use fdb_relational::{
    AggFunc, AggSpec, AttrId, Catalog, CmpOp, Predicate, Schema, SortDir, SortKey, Value,
};
use std::collections::HashMap;

/// Parses `sql` against the registered `schemas`, interning names into
/// `catalog`.
pub fn parse(
    sql: &str,
    catalog: &mut Catalog,
    schemas: &HashMap<String, Schema>,
) -> Result<Query, QueryError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        schemas,
    };
    let q = p.query()?;
    p.finish()?;
    validate(&q, p.catalog)?;
    Ok(q)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a mut Catalog,
    schemas: &'a HashMap<String, Schema>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::parse(
                self.pos,
                format!("expected `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_symbol(&mut self, sym: Sym, what: &str) -> Result<(), QueryError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(QueryError::parse(
                self.pos,
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn finish(&mut self) -> Result<(), QueryError> {
        let _ = self.eat_symbol(Sym::Semicolon);
        if let Some(t) = self.peek() {
            return Err(QueryError::parse(
                self.pos,
                format!("trailing input starting at {t:?}"),
            ));
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        let _ = self.eat_keyword("DISTINCT"); // set semantics already

        // Select items are parsed unresolved first: resolution needs the
        // FROM schemas, which come later in the text.
        let raw_items = self.raw_select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.tables()?;
        let joined = self.joined_schema(&from)?;

        let select = self.resolve_items(raw_items, &joined)?;

        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates = self.conjunction(&joined)?;
        }
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.ident("group-by attribute")?;
                group_by.push(self.resolve_attr(&name, &joined)?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            // HAVING conditions range over the *output* schema: group-by
            // attributes and aggregate aliases. Inline aggregate syntax is
            // allowed when an identical aggregate appears in SELECT (the
            // paper adds having-aggregates to the aggregation operator;
            // here they must be listed, which keeps outputs explicit).
            having = self.having_conjunction(&select, &joined)?;
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.ident("order-by attribute")?;
                let attr = self.resolve_output(&name, &select, &joined)?;
                let dir = if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    let _ = self.eat_keyword("ASC");
                    SortDir::Asc
                };
                order_by.push(SortKey { attr, dir });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        if self.eat_keyword("LIMIT") {
            match self.next() {
                Some(Token::Int(n)) if n >= 0 => limit = Some(n as usize),
                other => {
                    return Err(QueryError::parse(
                        self.pos,
                        format!("LIMIT expects a non-negative integer, found {other:?}"),
                    ))
                }
            }
        }
        Ok(Query {
            select,
            from,
            predicates,
            group_by,
            having,
            order_by,
            limit,
        })
    }

    fn raw_select_items(&mut self) -> Result<RawItems, QueryError> {
        if self.eat_symbol(Sym::Star) {
            return Ok(RawItems::Star);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.raw_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(RawItems::List(items))
    }

    fn raw_item(&mut self) -> Result<RawItem, QueryError> {
        if let Some(Token::Keyword(k)) = self.peek() {
            if let Some(kind) = AggKind::from_keyword(k) {
                self.pos += 1;
                self.expect_symbol(Sym::LParen, "`(`")?;
                let arg = if kind == AggKind::Count && self.eat_symbol(Sym::Star) {
                    None
                } else {
                    Some(self.ident("aggregated attribute")?)
                };
                self.expect_symbol(Sym::RParen, "`)`")?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                return Ok(RawItem::Agg { kind, arg, alias });
            }
        }
        let name = self.ident("select item")?;
        Ok(RawItem::Attr(name))
    }

    fn tables(&mut self) -> Result<Vec<String>, QueryError> {
        let mut tables = vec![self.ident("relation name")?];
        loop {
            if self.eat_symbol(Sym::Comma) {
                tables.push(self.ident("relation name")?);
            } else if self.eat_keyword("NATURAL") {
                self.expect_keyword("JOIN")?;
                tables.push(self.ident("relation name")?);
            } else {
                break;
            }
        }
        Ok(tables)
    }

    /// Natural-join output schema of the FROM list: attributes of the first
    /// input followed by the new attributes of each subsequent input.
    fn joined_schema(&mut self, from: &[String]) -> Result<Schema, QueryError> {
        let mut attrs: Vec<AttrId> = Vec::new();
        for name in from {
            let schema = self
                .schemas
                .get(name)
                .ok_or_else(|| QueryError::Unresolved(format!("relation `{name}`")))?;
            for &a in schema.attrs() {
                if !attrs.contains(&a) {
                    attrs.push(a);
                }
            }
        }
        Ok(Schema::new(attrs))
    }

    fn resolve_attr(&mut self, name: &str, joined: &Schema) -> Result<AttrId, QueryError> {
        let id = self
            .catalog
            .lookup(name)
            .ok_or_else(|| QueryError::Unresolved(format!("attribute `{name}`")))?;
        if joined.contains(id) {
            Ok(id)
        } else {
            Err(QueryError::Unresolved(format!(
                "attribute `{name}` is not in the FROM schema"
            )))
        }
    }

    /// Resolves an ORDER BY / HAVING identifier against the output schema:
    /// either a select item's output (alias) or a joined attribute that the
    /// query exposes.
    fn resolve_output(
        &mut self,
        name: &str,
        select: &[SelectItem],
        joined: &Schema,
    ) -> Result<AttrId, QueryError> {
        if let Some(id) = self.catalog.lookup(name) {
            if select.iter().any(|i| i.output() == id) {
                return Ok(id);
            }
            // Plain attribute ordering on SPJ queries.
            if joined.contains(id) && select.iter().any(|i| i.output() == id) {
                return Ok(id);
            }
        }
        Err(QueryError::Unresolved(format!(
            "`{name}` is not an output attribute of the query"
        )))
    }

    fn resolve_items(
        &mut self,
        raw: RawItems,
        joined: &Schema,
    ) -> Result<Vec<SelectItem>, QueryError> {
        match raw {
            RawItems::Star => Ok(joined
                .attrs()
                .iter()
                .map(|&a| SelectItem::Attr(a))
                .collect()),
            RawItems::List(items) => items
                .into_iter()
                .map(|item| match item {
                    RawItem::Attr(name) => Ok(SelectItem::Attr(self.resolve_attr(&name, joined)?)),
                    RawItem::Agg { kind, arg, alias } => {
                        let func = match (&kind, arg) {
                            (AggKind::Count, None) => AggFunc::Count,
                            // COUNT(a): no NULLs in this data model, so it
                            // equals COUNT(*) (documented deviation).
                            (AggKind::Count, Some(name)) => {
                                let _ = self.resolve_attr(&name, joined)?;
                                AggFunc::Count
                            }
                            (k, Some(name)) => {
                                let a = self.resolve_attr(&name, joined)?;
                                match k {
                                    AggKind::Sum => AggFunc::Sum(a),
                                    AggKind::Min => AggFunc::Min(a),
                                    AggKind::Max => AggFunc::Max(a),
                                    AggKind::Avg => AggFunc::Avg(a),
                                    AggKind::Count => unreachable!(),
                                }
                            }
                            (_, None) => {
                                return Err(QueryError::Invalid("only COUNT may take `*`".into()))
                            }
                        };
                        let output = match alias {
                            Some(alias) => self.catalog.intern(&alias),
                            None => {
                                let base = func.derived_name(self.catalog);
                                self.catalog.fresh(&base)
                            }
                        };
                        Ok(SelectItem::Agg(AggSpec::new(func, output)))
                    }
                })
                .collect(),
        }
    }

    fn conjunction(&mut self, joined: &Schema) -> Result<Vec<Predicate>, QueryError> {
        let mut preds = Vec::new();
        loop {
            preds.push(self.condition(joined)?);
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(preds)
    }

    fn condition(&mut self, joined: &Schema) -> Result<Predicate, QueryError> {
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        self.build_predicate(lhs, op, rhs, joined, |p, name, j| p.resolve_attr(name, j))
    }

    fn having_conjunction(
        &mut self,
        select: &[SelectItem],
        joined: &Schema,
    ) -> Result<Vec<Predicate>, QueryError> {
        let mut preds = Vec::new();
        loop {
            let lhs = self.having_operand(select)?;
            let op = self.cmp_op()?;
            let rhs = self.having_operand(select)?;
            preds.push(self.build_predicate(lhs, op, rhs, joined, |p, name, _| {
                let select_outputs: Vec<AttrId> = Vec::new();
                let _ = select_outputs;
                p.catalog
                    .lookup(name)
                    .filter(|id| select.iter().any(|i| i.output() == *id))
                    .ok_or_else(|| {
                        QueryError::Unresolved(format!(
                            "`{name}` is not an output attribute (HAVING ranges over outputs)"
                        ))
                    })
            })?);
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(preds)
    }

    /// HAVING may use inline aggregate syntax when the same aggregate is
    /// listed in SELECT; it then refers to that output column.
    fn having_operand(&mut self, select: &[SelectItem]) -> Result<Operand, QueryError> {
        if let Some(Token::Keyword(k)) = self.peek() {
            if let Some(kind) = AggKind::from_keyword(k) {
                self.pos += 1;
                self.expect_symbol(Sym::LParen, "`(`")?;
                let arg = if kind == AggKind::Count && self.eat_symbol(Sym::Star) {
                    None
                } else {
                    Some(self.ident("aggregated attribute")?)
                };
                self.expect_symbol(Sym::RParen, "`)`")?;
                let func = self.kind_to_func(kind, arg)?;
                let matching = select.iter().find_map(|i| match i {
                    SelectItem::Agg(s) if s.func == func => Some(s.output),
                    _ => None,
                });
                return match matching {
                    Some(out) => Ok(Operand::ResolvedAttr(out)),
                    None => Err(QueryError::Invalid(
                        "HAVING aggregate must also appear in SELECT".into(),
                    )),
                };
            }
        }
        self.operand()
    }

    fn kind_to_func(&mut self, kind: AggKind, arg: Option<String>) -> Result<AggFunc, QueryError> {
        Ok(match (kind, arg) {
            (AggKind::Count, _) => AggFunc::Count,
            (k, Some(name)) => {
                let a = self
                    .catalog
                    .lookup(&name)
                    .ok_or_else(|| QueryError::Unresolved(format!("attribute `{name}`")))?;
                match k {
                    AggKind::Sum => AggFunc::Sum(a),
                    AggKind::Min => AggFunc::Min(a),
                    AggKind::Max => AggFunc::Max(a),
                    AggKind::Avg => AggFunc::Avg(a),
                    AggKind::Count => unreachable!(),
                }
            }
            (_, None) => return Err(QueryError::Invalid("only COUNT may take `*`".into())),
        })
    }

    fn operand(&mut self) -> Result<Operand, QueryError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(Operand::Attr(name)),
            Some(Token::Int(n)) => Ok(Operand::Const(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Operand::Const(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Operand::Const(Value::str(s))),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected attribute or literal, found {other:?}"),
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        match self.next() {
            Some(Token::Symbol(Sym::Eq)) => Ok(CmpOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Ok(CmpOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Ok(CmpOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Ok(CmpOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Ok(CmpOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Ok(CmpOp::Ge),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected comparison operator, found {other:?}"),
            )),
        }
    }

    fn build_predicate(
        &mut self,
        lhs: Operand,
        op: CmpOp,
        rhs: Operand,
        joined: &Schema,
        resolve: impl Fn(&mut Self, &str, &Schema) -> Result<AttrId, QueryError>,
    ) -> Result<Predicate, QueryError> {
        match (lhs, rhs) {
            (Operand::Attr(a), Operand::Attr(b)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                let ia = resolve(self, &a, joined)?;
                let ib = resolve(self, &b, joined)?;
                Ok(Predicate::AttrEq(ia, ib))
            }
            (Operand::ResolvedAttr(a), Operand::ResolvedAttr(b)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                Ok(Predicate::AttrEq(a, b))
            }
            (Operand::Attr(a), Operand::Const(c)) => {
                Ok(Predicate::AttrCmp(resolve(self, &a, joined)?, op, c))
            }
            (Operand::ResolvedAttr(a), Operand::Const(c)) => Ok(Predicate::AttrCmp(a, op, c)),
            (Operand::Const(c), Operand::Attr(a)) => Ok(Predicate::AttrCmp(
                resolve(self, &a, joined)?,
                mirror(op),
                c,
            )),
            (Operand::Const(c), Operand::ResolvedAttr(a)) => {
                Ok(Predicate::AttrCmp(a, mirror(op), c))
            }
            (Operand::Attr(a), Operand::ResolvedAttr(b))
            | (Operand::ResolvedAttr(b), Operand::Attr(a)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                let ia = resolve(self, &a, joined)?;
                Ok(Predicate::AttrEq(ia, b))
            }
            (Operand::Const(_), Operand::Const(_)) => Err(QueryError::Invalid(
                "conditions must mention at least one attribute".into(),
            )),
        }
    }
}

/// Flips a comparison when the constant was written on the left.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

enum RawItems {
    Star,
    List(Vec<RawItem>),
}

enum RawItem {
    Attr(String),
    Agg {
        kind: AggKind,
        arg: Option<String>,
        alias: Option<String>,
    },
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Sum,
    Count,
    Min,
    Max,
    Avg,
}

impl AggKind {
    fn from_keyword(k: &str) -> Option<AggKind> {
        match k {
            "SUM" => Some(AggKind::Sum),
            "COUNT" => Some(AggKind::Count),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            "AVG" => Some(AggKind::Avg),
            _ => None,
        }
    }
}

enum Operand {
    Attr(String),
    ResolvedAttr(AttrId),
    Const(Value),
}

/// Semantic checks after parsing.
fn validate(q: &Query, catalog: &Catalog) -> Result<(), QueryError> {
    if q.is_aggregate() {
        for item in &q.select {
            if let SelectItem::Attr(a) = item {
                if !q.group_by.contains(a) {
                    return Err(QueryError::Invalid(format!(
                        "attribute `{}` must appear in GROUP BY",
                        catalog.name(*a)
                    )));
                }
            }
        }
    } else if !q.having.is_empty() {
        return Err(QueryError::Invalid(
            "HAVING requires aggregates or GROUP BY".into(),
        ));
    }
    // Every group-by attribute should be exposed, so downstream operators
    // (ordering, having) stay within the output schema.
    for g in &q.group_by {
        if q.is_aggregate() && !q.select.iter().any(|i| i.output() == *g) {
            return Err(QueryError::Invalid(format!(
                "GROUP BY attribute `{}` must be selected",
                catalog.name(*g)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, HashMap<String, Schema>) {
        let mut c = Catalog::new();
        let customer = c.intern("customer");
        let date = c.intern("date");
        let package = c.intern("package");
        let item = c.intern("item");
        let price = c.intern("price");
        let mut schemas = HashMap::new();
        schemas.insert(
            "Orders".to_string(),
            Schema::new(vec![customer, date, package]),
        );
        schemas.insert("Packages".to_string(), Schema::new(vec![package, item]));
        schemas.insert("Items".to_string(), Schema::new(vec![item, price]));
        (c, schemas)
    }

    #[test]
    fn parses_q2_revenue_per_customer() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue \
             FROM Orders, Packages, Items GROUP BY customer",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.from, vec!["Orders", "Packages", "Items"]);
        assert_eq!(q.group_by.len(), 1);
        let aggs = q.aggregates();
        assert_eq!(aggs.len(), 1);
        assert_eq!(c.name(aggs[0].output), "revenue");
        assert!(matches!(aggs[0].func, AggFunc::Sum(_)));
    }

    #[test]
    fn parses_natural_join_syntax() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT package FROM Orders NATURAL JOIN Packages GROUP BY package",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.from, vec!["Orders", "Packages"]);
    }

    #[test]
    fn star_expands_to_joined_schema() {
        let (mut c, schemas) = setup();
        let q = parse("SELECT * FROM Packages, Items", &mut c, &schemas).unwrap();
        let names: Vec<&str> = q.output_attrs().iter().map(|&a| c.name(a)).collect();
        assert_eq!(names, vec!["package", "item", "price"]);
    }

    #[test]
    fn where_with_constants_and_equalities() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT item FROM Items WHERE price >= 2 AND 6 > price AND item = item",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(
            q.predicates[1],
            Predicate::AttrCmp(_, CmpOp::Lt, _)
        ));
    }

    #[test]
    fn order_by_desc_and_limit() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer ORDER BY revenue DESC LIMIT 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.order_by[0].dir, SortDir::Desc);
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn having_references_selected_aggregate() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING revenue > 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.having.len(), 1);
        // Inline aggregate syntax resolves to the same column.
        let q2 = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING SUM(price) > 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.having, q2.having);
    }

    #[test]
    fn having_aggregate_not_in_select_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING MIN(price) > 1",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Invalid(_))));
    }

    #[test]
    fn ungrouped_attribute_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) FROM Orders, Packages, Items GROUP BY date",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Invalid(_))));
    }

    #[test]
    fn unknown_relation_is_unresolved() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT x FROM Nope", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn unknown_attribute_is_unresolved() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT nope FROM Items", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn attribute_outside_from_is_unresolved() {
        let (mut c, schemas) = setup();
        // `customer` exists in the catalog but not in Items' schema.
        let err = parse("SELECT customer FROM Items", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn count_star_and_count_attr() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT COUNT(*) AS n, COUNT(item) AS m FROM Items",
            &mut c,
            &schemas,
        )
        .unwrap();
        let aggs = q.aggregates();
        assert_eq!(aggs.len(), 2);
        assert!(matches!(aggs[0].func, AggFunc::Count));
        assert!(matches!(aggs[1].func, AggFunc::Count));
    }

    #[test]
    fn order_by_non_output_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) AS r FROM Orders, Packages, Items \
             GROUP BY customer ORDER BY date",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT item FROM Items garbage", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Parse { .. })));
    }

    #[test]
    fn lowering_round_trip_display() {
        let (mut c, schemas) = setup();
        let sql = "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
                   GROUP BY customer ORDER BY revenue DESC LIMIT 3";
        let q = parse(sql, &mut c, &schemas).unwrap();
        let shown = q.display(&c);
        assert!(shown.contains("GROUP BY customer"));
        assert!(shown.contains("ORDER BY revenue DESC"));
        assert!(shown.contains("LIMIT 3"));
        let task = q.to_task();
        assert_eq!(task.inputs.len(), 3);
        assert_eq!(task.limit, Some(3));
    }
}
