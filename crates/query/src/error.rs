//! Parse and validation errors for the SQL-ish front-end.

use std::fmt;

/// Errors raised while lexing, parsing or validating a query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum QueryError {
    /// Lexer met an unexpected character.
    Lex { pos: usize, message: String },
    /// Parser met an unexpected token.
    Parse { pos: usize, message: String },
    /// The query is syntactically fine but semantically invalid.
    Invalid(String),
    /// An identifier did not resolve against the registered schemas.
    Unresolved(String),
}

impl QueryError {
    pub(crate) fn parse(pos: usize, message: impl Into<String>) -> Self {
        QueryError::Parse {
            pos,
            message: message.into(),
        }
    }
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            QueryError::Parse { pos, message } => {
                write!(f, "parse error at token {pos}: {message}")
            }
            QueryError::Invalid(m) => write!(f, "invalid query: {m}"),
            QueryError::Unresolved(m) => write!(f, "unresolved name: {m}"),
        }
    }
}

impl std::error::Error for QueryError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_position() {
        let e = QueryError::parse(3, "expected FROM");
        assert!(e.to_string().contains("token 3"));
        assert!(e.to_string().contains("expected FROM"));
    }
}
