//! Projection and renaming on factorisations.
//!
//! A projection removes attributes that are not wanted: attributes shared
//! with the rest of their equivalence class are just dropped from the label
//! (no data change); a node whose class empties must first become a leaf —
//! implemented, as in FDB, by swapping its children above it — and is then
//! removed (§2.1). Renaming is a constant-time label edit.

use crate::error::{FdbError, Result};
use crate::frep::{Arena, FRep, UnionId};
use crate::ftree::{NodeId, NodeLabel};
use crate::ops::{rewrite_at, rewrite_at_inplace, swap, swap_inplace};
use fdb_relational::AttrId;

/// Removes a leaf node's union everywhere (the data-level step of
/// projection).
pub fn remove_leaf(rep: FRep, node: NodeId) -> Result<FRep> {
    let (tree, arena, roots) = rep.into_arena_parts();
    let parent = tree.node(node).parent;
    let mut new_tree = tree.clone();
    let pos = new_tree.remove_leaf(node)?;
    let mut dst = Arena::default();
    let roots = match parent {
        Some(p) => rewrite_at(&tree, &arena, &roots, p, &mut dst, &mut |up, dst| {
            let src = up.arena();
            let mut specs = Vec::with_capacity(up.len());
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for e in up.entries() {
                kid_ids.clear();
                for (j, c) in e.child_ids().enumerate() {
                    if j != pos {
                        kid_ids.push(dst.copy_union_from(src, c));
                    }
                }
                specs.push(dst.entry(up.node(), e.value().clone(), &kid_ids));
            }
            Ok(Some(dst.push_union(up.node(), &specs)))
        })?,
        None => roots
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != pos)
            .map(|(_, &r)| dst.copy_union_from(&arena, r))
            .collect(),
    };
    let out = FRep::from_arena(new_tree, dst, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Projects away one attribute.
///
/// If the attribute shares its node with other class members, only the
/// label changes. Otherwise the node is pushed down to a leaf with swaps
/// (each swap lifts one child above it) and removed. Note that projection
/// on factorised *sets* needs no deduplication: the remaining structure
/// keys distinct combinations.
pub fn project_away(rep: FRep, attr: AttrId) -> Result<FRep> {
    let node = rep
        .ftree()
        .node_of_attr(attr)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {attr} not in f-tree")))?;
    let label = rep.ftree().node(node).label.clone();
    match &label {
        NodeLabel::Atomic(attrs) if attrs.len() > 1 => {
            // Drop from the class; the representative value stays and the
            // dependency edges are rewritten to a remaining member.
            let mut rep = rep;
            rep.ftree_mut().shrink_class(node, attr)?;
            Ok(rep)
        }
        NodeLabel::Atomic(_) => {
            let mut rep = rep;
            // Push the node down until it is a leaf: swapping a child above
            // the node increases the node's depth by one each time, so this
            // terminates within the tree height.
            loop {
                let children = rep.ftree().node(node).children.clone();
                match children.first() {
                    None => break,
                    Some(&c) => {
                        rep = swap(rep, node, c)?;
                    }
                }
            }
            remove_leaf(rep, node)
        }
        NodeLabel::Agg(l) if l.outputs.len() > 1 => Err(FdbError::InvalidOperator(
            "cannot project a single output of a composite aggregate".into(),
        )),
        NodeLabel::Agg(_) => {
            let mut rep = rep;
            loop {
                let children = rep.ftree().node(node).children.clone();
                match children.first() {
                    None => break,
                    Some(&c) => {
                        rep = swap(rep, node, c)?;
                    }
                }
            }
            remove_leaf(rep, node)
        }
    }
}

/// Renames an output attribute (constant time, §2.1: names live in the
/// f-tree, not in singletons). Already in-place — the staged executor
/// uses it directly.
pub fn rename(mut rep: FRep, from: AttrId, to: AttrId) -> Result<FRep> {
    rep.ftree_mut().rename_attr(from, to)?;
    Ok(rep)
}

/// In-place [`remove_leaf`]: the parent level is re-emitted with the
/// leaf's kid position dropped; every kept fragment is shared by id.
pub fn remove_leaf_inplace(rep: FRep, node: NodeId) -> Result<FRep> {
    let (tree, mut arena, roots) = rep.into_arena_parts();
    let parent = tree.node(node).parent;
    let mut new_tree = tree.clone();
    let pos = new_tree.remove_leaf(node)?;
    let roots = match parent {
        Some(p) => rewrite_at_inplace(&tree, &mut arena, &roots, p, &mut |arena, uid| {
            let rec = arena.urec(uid);
            let mut specs = Vec::with_capacity(rec.len as usize);
            let mut kid_ids: Vec<UnionId> = Vec::new();
            for i in rec.start..rec.start + rec.len {
                let e = arena.erec(i);
                kid_ids.clear();
                for j in 0..e.kids_len {
                    if j as usize != pos {
                        arena.note_shared(1);
                        kid_ids.push(arena.kid_at(e.kids_start + j));
                    }
                }
                specs.push(arena.entry_shared_val(e.val, &kid_ids));
            }
            Ok(Some(arena.push_union(rec.node, &specs)))
        })?,
        None => {
            let mut out = Vec::with_capacity(roots.len() - 1);
            for (i, &r) in roots.iter().enumerate() {
                if i != pos {
                    arena.note_shared(1);
                    out.push(r);
                }
            }
            out
        }
    };
    let out = FRep::from_arena(new_tree, arena, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// In-place [`project_away`]: same label-shrink / push-down-and-remove
/// logic, but every data step runs as an in-place rewrite
/// ([`swap_inplace`], [`remove_leaf_inplace`]).
pub fn project_away_inplace(rep: FRep, attr: AttrId) -> Result<FRep> {
    let node = rep
        .ftree()
        .node_of_attr(attr)
        .ok_or_else(|| FdbError::Unresolved(format!("attribute {attr} not in f-tree")))?;
    let label = rep.ftree().node(node).label.clone();
    match &label {
        NodeLabel::Atomic(attrs) if attrs.len() > 1 => {
            let mut rep = rep;
            rep.ftree_mut().shrink_class(node, attr)?;
            Ok(rep)
        }
        NodeLabel::Agg(l) if l.outputs.len() > 1 => Err(FdbError::InvalidOperator(
            "cannot project a single output of a composite aggregate".into(),
        )),
        NodeLabel::Atomic(_) | NodeLabel::Agg(_) => {
            let mut rep = rep;
            loop {
                let children = rep.ftree().node(node).children.clone();
                match children.first() {
                    None => break,
                    Some(&c) => {
                        rep = swap_inplace(rep, node, c)?;
                    }
                }
            }
            remove_leaf_inplace(rep, node)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::FTree;
    use fdb_relational::{Catalog, Relation, Schema, Value};

    fn abc_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let x = c.intern("x");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b, x]),
            [(1, 10, 7), (1, 20, 7), (2, 10, 8), (2, 10, 9)]
                .into_iter()
                .map(|(p, q, r)| vec![Value::Int(p), Value::Int(q), Value::Int(r)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b, x])).unwrap();
        (c, rep)
    }

    #[test]
    fn remove_leaf_projects() {
        let (c, rep) = abc_rep();
        let x = c.lookup("x").unwrap();
        let leaf = rep.ftree().node_of_attr(x).unwrap();
        let out = remove_leaf(rep, leaf).unwrap();
        // π_{a,b}: three distinct pairs.
        assert_eq!(out.tuple_count(), 3);
        assert_eq!(out.schema().arity(), 2);
    }

    #[test]
    fn project_away_internal_node() {
        let (c, rep) = abc_rep();
        let b = c.lookup("b").unwrap();
        let out = project_away(rep, b).unwrap();
        out.check_invariants().unwrap();
        // π_{a,x}: (1,7), (2,8), (2,9).
        assert_eq!(out.tuple_count(), 3);
        let names: Vec<AttrId> = out.schema().attrs().to_vec();
        assert!(!names.contains(&b));
    }

    #[test]
    fn project_away_root() {
        let (c, rep) = abc_rep();
        let a = c.lookup("a").unwrap();
        let out = project_away(rep, a).unwrap();
        out.check_invariants().unwrap();
        // π_{b,x}: (10,7), (20,7), (10,8), (10,9).
        assert_eq!(out.tuple_count(), 4);
    }

    #[test]
    fn inplace_project_matches_legacy() {
        // Leaf removal, internal-node push-down and root projection —
        // each through both physical paths.
        for attr_name in ["x", "b", "a"] {
            let (c, rep) = abc_rep();
            let attr = c.lookup(attr_name).unwrap();
            let legacy = project_away(rep.clone(), attr).unwrap();
            let inplace = project_away_inplace(rep, attr).unwrap();
            inplace.check_invariants().unwrap();
            assert!(inplace.same_data(&legacy), "project away {attr_name}");
            assert_eq!(
                inplace.ftree().canonical_key(),
                legacy.ftree().canonical_key(),
                "project away {attr_name}"
            );
        }
    }

    #[test]
    fn inplace_remove_leaf_matches_legacy() {
        let (c, rep) = abc_rep();
        let x = c.lookup("x").unwrap();
        let leaf = rep.ftree().node_of_attr(x).unwrap();
        let legacy = remove_leaf(rep.clone(), leaf).unwrap();
        let inplace = remove_leaf_inplace(rep, leaf).unwrap();
        inplace.check_invariants().unwrap();
        assert!(inplace.same_data(&legacy));
        assert_eq!(inplace.tuple_count(), 3);
    }

    #[test]
    fn rename_keeps_data() {
        let (mut c, rep) = abc_rep();
        let a = c.lookup("a").unwrap();
        let z = c.intern("z");
        let before = rep.tuple_count();
        let out = rename(rep, a, z).unwrap();
        assert_eq!(out.tuple_count(), before);
        assert!(out.schema().contains(z));
        assert!(!out.schema().contains(a));
    }
}
