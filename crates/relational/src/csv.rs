//! Minimal CSV import/export for relations.
//!
//! A pragmatic, dependency-free reader/writer for moving data in and out
//! of the engines: comma-separated, one header line of attribute names,
//! double-quote quoting with `""` escapes. Values parse as `Int` when the
//! field is a valid integer, `Float` when a valid float, `Str` otherwise
//! — matching how the engines type constants.

use crate::attr::Catalog;
use crate::error::RelError;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;
use std::io::{BufRead, Write};

/// Parses one CSV record, honouring double-quote quoting.
fn split_record(line: &str) -> Result<Vec<String>, RelError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut quoted = false;
    while let Some(ch) = chars.next() {
        match ch {
            '"' if !quoted && cur.is_empty() => quoted = true,
            '"' if quoted => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    quoted = false;
                }
            }
            ',' if !quoted => {
                fields.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if quoted {
        return Err(RelError::Unsupported(
            "unterminated quoted CSV field".into(),
        ));
    }
    fields.push(cur);
    Ok(fields)
}

/// Types a raw CSV field: integer, then float, then string.
fn type_field(raw: &str) -> Value {
    if let Ok(i) = raw.parse::<i64>() {
        return Value::Int(i);
    }
    if let Ok(f) = raw.parse::<f64>() {
        if raw.contains('.') || raw.contains('e') || raw.contains('E') {
            return Value::Float(f);
        }
    }
    Value::str(raw)
}

/// Reads a relation from CSV. The header names become interned attributes
/// of `catalog`.
pub fn read_csv(reader: impl BufRead, catalog: &mut Catalog) -> Result<Relation, RelError> {
    let mut lines = reader.lines();
    let header = lines
        .next()
        .ok_or_else(|| RelError::Unsupported("empty CSV: missing header".into()))?
        .map_err(|e| RelError::Unsupported(format!("io error: {e}")))?;
    let names = split_record(&header)?;
    let attrs: Vec<_> = names.iter().map(|n| catalog.intern(n.trim())).collect();
    let schema = Schema::new(attrs);
    let arity = schema.arity();
    let mut rel = Relation::empty(schema);
    for (lineno, line) in lines.enumerate() {
        let line = line.map_err(|e| RelError::Unsupported(format!("io error: {e}")))?;
        if line.trim().is_empty() {
            continue;
        }
        let fields = split_record(&line)?;
        if fields.len() != arity {
            return Err(RelError::Unsupported(format!(
                "line {}: expected {arity} fields, found {}",
                lineno + 2,
                fields.len()
            )));
        }
        let row: Vec<Value> = fields.iter().map(|f| type_field(f)).collect();
        rel.push_row(&row);
    }
    Ok(rel)
}

/// Writes a relation as CSV with a header line.
pub fn write_csv(
    rel: &Relation,
    catalog: &Catalog,
    mut writer: impl Write,
) -> Result<(), RelError> {
    let quote = |s: &str| -> String {
        if s.contains(',') || s.contains('"') || s.contains('\n') {
            format!("\"{}\"", s.replace('"', "\"\""))
        } else {
            s.to_string()
        }
    };
    let header: Vec<String> = rel
        .schema()
        .attrs()
        .iter()
        .map(|&a| quote(catalog.name(a)))
        .collect();
    let io_err = |e: std::io::Error| RelError::Unsupported(format!("io error: {e}"));
    writeln!(writer, "{}", header.join(",")).map_err(io_err)?;
    for row in rel.rows() {
        let fields: Vec<String> = row
            .iter()
            .map(|v| match v {
                Value::Str(s) => quote(s),
                other => other.to_string(),
            })
            .collect();
        writeln!(writer, "{}", fields.join(",")).map_err(io_err)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_relation() {
        let mut c = Catalog::new();
        let input = "item,price\nbase,6\nham,1\n\"mush,rooms\",1\npine\"\"apple,2\n";
        let rel = read_csv(input.as_bytes(), &mut c).unwrap();
        assert_eq!(rel.len(), 4);
        assert_eq!(rel.row(0), &[Value::str("base"), Value::Int(6)]);

        let mut out = Vec::new();
        write_csv(&rel, &c, &mut out).unwrap();
        let mut c2 = Catalog::new();
        let rel2 = read_csv(out.as_slice(), &mut c2).unwrap();
        // Same data after re-reading (column ids differ across catalogs,
        // so compare raw tuples).
        let tuples =
            |r: &Relation| -> Vec<Vec<Value>> { r.rows().map(|row| row.to_vec()).collect() };
        assert_eq!(tuples(&rel), tuples(&rel2));
    }

    #[test]
    fn typing_rules() {
        let mut c = Catalog::new();
        let input = "a,b,c\n42,3.5,hello\n-7,1e3,99x\n";
        let rel = read_csv(input.as_bytes(), &mut c).unwrap();
        assert_eq!(rel.row(0)[0], Value::Int(42));
        assert_eq!(rel.row(0)[1], Value::Float(3.5));
        assert_eq!(rel.row(0)[2], Value::str("hello"));
        assert_eq!(rel.row(1)[1], Value::Float(1000.0));
        assert_eq!(rel.row(1)[2], Value::str("99x"));
    }

    #[test]
    fn quoted_commas_and_escapes() {
        let mut c = Catalog::new();
        let input = "name\n\"a,b\"\n\"say \"\"hi\"\"\"\n";
        let rel = read_csv(input.as_bytes(), &mut c).unwrap();
        assert_eq!(rel.row(0)[0], Value::str("a,b"));
        assert_eq!(rel.row(1)[0], Value::str("say \"hi\""));
    }

    #[test]
    fn arity_mismatch_is_error() {
        let mut c = Catalog::new();
        let input = "a,b\n1,2\n3\n";
        let err = read_csv(input.as_bytes(), &mut c);
        assert!(matches!(err, Err(RelError::Unsupported(_))));
    }

    #[test]
    fn empty_input_is_error() {
        let mut c = Catalog::new();
        assert!(read_csv("".as_bytes(), &mut c).is_err());
    }

    #[test]
    fn blank_lines_skipped() {
        let mut c = Catalog::new();
        let input = "a\n1\n\n2\n";
        let rel = read_csv(input.as_bytes(), &mut c).unwrap();
        assert_eq!(rel.len(), 2);
    }

    #[test]
    fn unterminated_quote_is_error() {
        let mut c = Catalog::new();
        let input = "a\n\"oops\n";
        assert!(read_csv(input.as_bytes(), &mut c).is_err());
    }
}
