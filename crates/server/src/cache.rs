//! The plan cache: bounded, FIFO-evicted memoisation of query
//! responses keyed by normalised SQL text and the database epoch.
//!
//! Over an immutable `Arc` snapshot a query is a pure function of its
//! text, so the cache can keep the *complete rendered response* (the
//! payload lines the compiled plan produced) rather than just the
//! plan: a hit skips parsing, planning, execution and rendering in one
//! step. The epoch in the key gives snapshot-consistent invalidation —
//! every registration (`LOAD`, `register_*`) bumps the [`fdb::Db`]
//! epoch, so entries compiled against older data can never be served
//! afterwards. Stale-epoch entries are dropped lazily on lookup and by
//! FIFO eviction.

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

/// A cached response payload (shared so concurrent hits don't copy).
pub type CachedLines = Arc<Vec<String>>;

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<(u64, String), CachedLines>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<(u64, String)>,
    hits: u64,
    misses: u64,
}

/// Bounded response cache shared by all server workers.
///
/// Thread-safe behind one mutex: entries are `Arc`s, so the critical
/// section is a `HashMap` probe — negligible next to query execution.
#[derive(Clone, Debug)]
pub struct PlanCache {
    inner: Arc<Mutex<CacheInner>>,
    capacity: usize,
}

impl PlanCache {
    /// A cache holding at most `capacity` entries; `capacity == 0`
    /// disables caching (every lookup misses, inserts are dropped).
    pub fn new(capacity: usize) -> PlanCache {
        PlanCache {
            inner: Arc::new(Mutex::new(CacheInner::default())),
            capacity,
        }
    }

    /// Looks up the response for `sql` (already normalised) compiled at
    /// `epoch`, counting a hit or miss.
    pub fn get(&self, epoch: u64, sql: &str) -> Option<CachedLines> {
        let mut inner = self.lock();
        // Borrow-friendly probe: keys are (epoch, owned sql).
        let hit = inner.map.get(&(epoch, sql.to_string())).cloned();
        match hit {
            Some(lines) => {
                inner.hits += 1;
                Some(lines)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a freshly-rendered response, evicting the oldest entry
    /// when full. Entries from epochs other than `epoch` are purged
    /// first — a registration invalidates the whole cache at once.
    pub fn put(&self, epoch: u64, sql: String, lines: CachedLines) {
        if self.capacity == 0 {
            return;
        }
        let mut inner = self.lock();
        if inner.order.front().is_some_and(|(e, _)| *e != epoch) {
            inner.map.retain(|(e, _), _| *e == epoch);
            inner.order.retain(|(e, _)| *e == epoch);
        }
        let key = (epoch, sql);
        if inner.map.contains_key(&key) {
            return;
        }
        while inner.map.len() >= self.capacity {
            let Some(old) = inner.order.pop_front() else {
                break;
            };
            inner.map.remove(&old);
        }
        inner.order.push_back(key.clone());
        inner.map.insert(key, lines);
    }

    /// `(hits, misses, live entries)` counters for `STATS`.
    pub fn stats(&self) -> (u64, u64, usize) {
        let inner = self.lock();
        (inner.hits, inner.misses, inner.map.len())
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CacheInner> {
        self.inner.lock().expect("plan cache lock poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(s: &str) -> CachedLines {
        Arc::new(vec![s.to_string()])
    }

    #[test]
    fn hit_after_put_same_epoch() {
        let c = PlanCache::new(4);
        assert!(c.get(1, "q").is_none());
        c.put(1, "q".into(), lines("r"));
        assert_eq!(c.get(1, "q").unwrap()[0], "r");
        assert_eq!(c.stats(), (1, 1, 1));
    }

    #[test]
    fn epoch_bump_invalidates() {
        let c = PlanCache::new(4);
        c.put(1, "q".into(), lines("old"));
        assert!(c.get(2, "q").is_none());
        c.put(2, "q".into(), lines("new"));
        // The stale epoch-1 entry was purged on the epoch-2 insert.
        let (_, _, live) = c.stats();
        assert_eq!(live, 1);
        assert_eq!(c.get(2, "q").unwrap()[0], "new");
    }

    #[test]
    fn fifo_eviction_bounds_the_cache() {
        let c = PlanCache::new(2);
        c.put(1, "a".into(), lines("1"));
        c.put(1, "b".into(), lines("2"));
        c.put(1, "c".into(), lines("3"));
        assert!(c.get(1, "a").is_none(), "oldest entry evicted");
        assert!(c.get(1, "b").is_some());
        assert!(c.get(1, "c").is_some());
        let (_, _, live) = c.stats();
        assert_eq!(live, 2);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let c = PlanCache::new(0);
        c.put(1, "q".into(), lines("r"));
        assert!(c.get(1, "q").is_none());
        assert_eq!(c.stats(), (0, 1, 0));
    }
}
