//! Restructuring operators: swap `χ_{A,B}`, merge, absorb (§2.1, §4.2).
//!
//! * `swap` exchanges a node with its parent while preserving the path
//!   constraint: `⋃_a (⟨A:a⟩×E_a×⋃_b (⟨B:b⟩×F_b×G_ab))` becomes
//!   `⋃_b (⟨B:b⟩×F_b×⋃_a (⟨A:a⟩×E_a×G_ab))`. The independent subtrees
//!   `F_b` are deduplicated (first copy kept, the rest dropped) — this is
//!   why re-sorting factorised data can be *partial*: the `G_ab` and `F_b`
//!   fragments move without being rebuilt.
//! * `merge` implements a selection `A = B` on sibling nodes as a linear
//!   intersection of their sorted unions.
//! * `absorb` implements `A = B` when `B`'s node is a descendant of `A`'s:
//!   each `B`-union below an `A`-value is restricted to that value.

use crate::error::{FdbError, Result};
use crate::frep::{Entry, FRep, Union};
use crate::ftree::{FTree, NodeId};
use crate::ops::rewrite_at;
use fdb_relational::Value;
use std::collections::BTreeMap;

/// Swap `χ_{A,B}`: `b` (a child of `a`) becomes `a`'s parent.
pub fn swap(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, roots) = rep.into_parts();
    if tree.node(b).parent != Some(a) {
        return Err(FdbError::InvalidOperator(format!(
            "swap requires {b:?} to be a child of {a:?}"
        )));
    }
    let b_children_before = tree.node(b).children.clone();
    let mut new_tree = tree.clone();
    let outcome = new_tree.swap(a, b)?;
    let pos_of = |n: NodeId| {
        b_children_before
            .iter()
            .position(|&c| c == n)
            .expect("partitioned child came from b")
    };
    let moved_idx: Vec<usize> = outcome.moved_up.iter().map(|&n| pos_of(n)).collect();
    let stayed_idx: Vec<usize> = outcome.stayed.iter().map(|&n| pos_of(n)).collect();
    let b_pos = outcome.b_pos_in_a;
    let roots = rewrite_at(&tree, roots, a, &mut |ua| {
        Ok(Some(swap_union(ua, a, b, b_pos, &moved_idx, &stayed_idx)))
    })?;
    let out = FRep::from_parts(new_tree, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

fn swap_union(
    ua: Union,
    a: NodeId,
    b: NodeId,
    b_pos: usize,
    moved_idx: &[usize],
    stayed_idx: &[usize],
) -> Union {
    // For each b-value: the F_b subtrees (first occurrence) and the new
    // inner a-union's entries, accumulated in ascending a-order because the
    // outer loop visits a-entries in order.
    let mut regroup: BTreeMap<Value, (Option<Vec<Union>>, Vec<Entry>)> = BTreeMap::new();
    for ea in ua.entries {
        let Entry {
            value: a_val,
            children: mut a_children,
        } = ea;
        let ub = a_children.remove(b_pos);
        let mut ea_rest = Some(a_children);
        let n_b = ub.entries.len();
        for (k, eb) in ub.entries.into_iter().enumerate() {
            let last = k + 1 == n_b;
            let mut slots: Vec<Option<Union>> = eb.children.into_iter().map(Some).collect();
            let fb: Vec<Union> = moved_idx
                .iter()
                .map(|&i| slots[i].take().expect("moved child taken once"))
                .collect();
            let gab: Vec<Union> = stayed_idx
                .iter()
                .map(|&i| slots[i].take().expect("stayed child taken once"))
                .collect();
            // E_a is shared by every b-branch below this a-entry: clone for
            // all but the last occurrence.
            let mut new_a_children = if last {
                ea_rest.take().expect("E_a consumed once")
            } else {
                ea_rest.as_ref().expect("E_a alive until last").clone()
            };
            new_a_children.extend(gab);
            let slot = regroup.entry(eb.value).or_insert((None, Vec::new()));
            if slot.0.is_none() {
                // First occurrence of this b-value keeps F_b; later copies
                // are identical by the path constraint and are dropped —
                // the factorisation can only shrink here.
                slot.0 = Some(fb);
            }
            slot.1.push(Entry {
                value: a_val.clone(),
                children: new_a_children,
            });
        }
    }
    let entries = regroup
        .into_iter()
        .map(|(b_val, (fb, a_entries))| {
            let mut children = fb.expect("F_b recorded at first occurrence");
            children.push(Union {
                node: a,
                entries: a_entries,
            });
            Entry {
                value: b_val,
                children,
            }
        })
        .collect();
    Union { node: b, entries }
}

/// Merge: implements a selection `A = B` for sibling nodes by intersecting
/// their sorted unions (linear in the union sizes).
pub fn merge(rep: FRep, a: NodeId, b: NodeId) -> Result<FRep> {
    let (tree, roots) = rep.into_parts();
    let parent = tree.node(a).parent;
    let mut new_tree = tree.clone();
    let outcome = new_tree.merge(a, b)?;
    let (a_pos, b_pos) = (outcome.a_pos, outcome.b_pos);
    let roots = match parent {
        None => {
            // Both nodes are roots: intersect the two root unions directly.
            let mut roots = roots;
            let (hi, lo) = if a_pos > b_pos {
                (a_pos, b_pos)
            } else {
                (b_pos, a_pos)
            };
            let u_hi = roots.remove(hi);
            let u_lo = std::mem::replace(&mut roots[lo], Union::empty(a));
            let (ua, ub) = if a_pos < b_pos {
                (u_lo, u_hi)
            } else {
                (u_hi, u_lo)
            };
            let merged = intersect_unions(ua, ub, a);
            let a_new_pos = if b_pos < a_pos { a_pos - 1 } else { a_pos };
            roots[a_new_pos] = merged;
            if roots.iter().any(|u| u.entries.is_empty()) {
                // Empty relation: normalise every root to empty.
                for u in roots.iter_mut() {
                    u.entries.clear();
                }
            }
            roots
        }
        Some(p) => rewrite_at(&tree, roots, p, &mut |mut up| {
            let mut entries = Vec::with_capacity(up.entries.len());
            for mut e in up.entries.drain(..) {
                let (hi, lo) = if a_pos > b_pos {
                    (a_pos, b_pos)
                } else {
                    (b_pos, a_pos)
                };
                let u_hi = e.children.remove(hi);
                let u_lo = std::mem::replace(&mut e.children[lo], Union::empty(a));
                let (ua, ub) = if a_pos < b_pos {
                    (u_lo, u_hi)
                } else {
                    (u_hi, u_lo)
                };
                let merged = intersect_unions(ua, ub, a);
                if merged.entries.is_empty() {
                    continue; // dangling combination: prune this entry
                }
                let a_new_pos = if b_pos < a_pos { a_pos - 1 } else { a_pos };
                e.children[a_new_pos] = merged;
                entries.push(e);
            }
            Ok(Some(Union {
                node: up.node,
                entries,
            }))
        })?,
    };
    let out = FRep::from_parts(new_tree, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Sorted intersection of two unions; matched entries concatenate their
/// child lists (the merged node keeps `a`'s children then `b`'s).
fn intersect_unions(ua: Union, ub: Union, node: NodeId) -> Union {
    let mut entries = Vec::new();
    let mut ib = ub.entries.into_iter().peekable();
    for ea in ua.entries {
        loop {
            match ib.peek() {
                Some(eb) if eb.value < ea.value => {
                    ib.next();
                }
                _ => break,
            }
        }
        if let Some(eb) = ib.peek() {
            if eb.value == ea.value {
                let eb = ib.next().unwrap();
                let mut children = ea.children;
                children.extend(eb.children);
                entries.push(Entry {
                    value: ea.value,
                    children,
                });
            }
        }
    }
    Union { node, entries }
}

/// Absorb: implements a selection `A = B` when `desc` (holding `B`) is a
/// strict descendant of `anc` (holding `A`).
pub fn absorb(rep: FRep, anc: NodeId, desc: NodeId) -> Result<FRep> {
    let (tree, roots) = rep.into_parts();
    if !tree.is_ancestor(anc, desc) {
        return Err(FdbError::InvalidOperator(format!(
            "absorb requires {desc:?} below {anc:?}"
        )));
    }
    let mut new_tree = tree.clone();
    let outcome = new_tree.absorb(anc, desc)?;
    let full = tree.root_path(desc);
    let anc_i = full
        .iter()
        .position(|&n| n == anc)
        .expect("anc on desc's root path");
    // Path from anc down to desc's parent, inclusive.
    let inner: Vec<NodeId> = full[anc_i..full.len() - 1].to_vec();
    let desc_pos = outcome.pos;
    let roots = rewrite_at(&tree, roots, anc, &mut |ua| {
        let mut entries = Vec::with_capacity(ua.entries.len());
        for e in ua.entries {
            let v = e.value.clone();
            if let Some(e2) = restrict_entry(&tree, e, &inner, desc_pos, &v) {
                entries.push(e2);
            }
        }
        Ok(Some(Union {
            node: ua.node,
            entries,
        }))
    })?;
    let out = FRep::from_parts(new_tree, roots);
    debug_assert!(out.check_invariants().is_ok());
    Ok(out)
}

/// Restricts the `desc` unions below one `anc` entry to the value `v`,
/// splicing the matching entry's children in place of the `desc` union.
/// Returns `None` when the restriction empties the entry (pruning).
fn restrict_entry(
    tree: &FTree,
    mut e: Entry,
    path: &[NodeId],
    desc_pos: usize,
    v: &Value,
) -> Option<Entry> {
    if path.len() == 1 {
        // `e` is an entry of desc's parent: restrict the desc child union.
        let du = e.children.remove(desc_pos);
        let mut du_entries = du.entries;
        match du_entries.binary_search_by(|x| x.value.cmp(v)) {
            Ok(i) => {
                let de = du_entries.swap_remove(i);
                for (k, cu) in de.children.into_iter().enumerate() {
                    e.children.insert(desc_pos + k, cu);
                }
                Some(e)
            }
            Err(_) => None,
        }
    } else {
        let child_idx = tree
            .node(path[0])
            .children
            .iter()
            .position(|&c| c == path[1])
            .expect("path step is a child");
        let cu = std::mem::replace(&mut e.children[child_idx], Union::empty(path[1]));
        let mut entries = Vec::with_capacity(cu.entries.len());
        for ce in cu.entries {
            if let Some(ce2) = restrict_entry(tree, ce, &path[1..], desc_pos, v) {
                entries.push(ce2);
            }
        }
        if entries.is_empty() {
            return None;
        }
        e.children[child_idx] = Union {
            node: cu.node,
            entries,
        };
        Some(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::product;
    use fdb_relational::{Catalog, Relation, Schema};

    /// Pizzas and Items from Figure 1 as path factorisations.
    fn pizzeria() -> (Catalog, FRep, FRep) {
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let item = c.intern("item");
        let item2 = c.intern("item2");
        let price = c.intern("price");
        let pizzas = Relation::from_rows(
            Schema::new(vec![pizza, item]),
            [
                ("Margherita", "base"),
                ("Capricciosa", "base"),
                ("Capricciosa", "ham"),
                ("Capricciosa", "mushrooms"),
                ("Hawaii", "base"),
                ("Hawaii", "ham"),
                ("Hawaii", "pineapple"),
            ]
            .into_iter()
            .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
        );
        let items = Relation::from_rows(
            Schema::new(vec![item2, price]),
            [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
                .into_iter()
                .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
        );
        let rp = FRep::from_relation(&pizzas, FTree::path(&[pizza, item])).unwrap();
        let ri = FRep::from_relation(&items, FTree::path(&[item2, price])).unwrap();
        (c, rp, ri)
    }

    #[test]
    fn swap_preserves_semantics() {
        let (c, rp, _) = pizzeria();
        let cols = [c.lookup("pizza").unwrap(), c.lookup("item").unwrap()];
        let before = rp.flatten().project_cols(&cols).canonical();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let swapped = swap(rp, root, child).unwrap();
        // Same set of tuples, re-grouped: compare in a fixed column order.
        assert_eq!(swapped.flatten().project_cols(&cols).canonical(), before);
        // item is now the root.
        assert_eq!(swapped.ftree().roots().len(), 1);
        assert_eq!(swapped.ftree().depth(root), 1);
    }

    #[test]
    fn swap_regroups_by_child_value() {
        let (_, rp, _) = pizzeria();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let swapped = swap(rp, root, child).unwrap();
        // The item union at the top has 4 distinct items; "base" lists 3
        // pizzas beneath it.
        let u = &swapped.roots()[0];
        assert_eq!(u.entries.len(), 4);
        let base = &u.entries[0];
        assert_eq!(base.value, Value::str("base"));
        assert_eq!(base.children[0].entries.len(), 3);
    }

    #[test]
    fn double_swap_is_identity_on_paths() {
        let (_, rp, _) = pizzeria();
        let before = rp.clone();
        let root = rp.ftree().roots()[0];
        let child = rp.ftree().node(root).children[0];
        let once = swap(rp, root, child).unwrap();
        let twice = swap(once, child, root).unwrap();
        assert_eq!(twice.flatten().canonical(), before.flatten().canonical());
        assert_eq!(twice.singleton_count(), before.singleton_count());
    }

    #[test]
    fn merge_implements_join() {
        // FDB's join: product, swap item to the top of the Pizzas tree,
        // merge with the Items root — then compare against the relational
        // natural join.
        let (c, rp, ri) = pizzeria();
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let merged = merge(joined, item_node, item2_node).unwrap();
        merged.check_invariants().unwrap();
        assert_eq!(merged.tuple_count(), 7);
        // Schema: item (class {item,item2}) → {pizza, price}.
        let root = merged.ftree().roots()[0];
        assert_eq!(merged.ftree().node(root).label.exposed_attrs().len(), 2);
        let price = c.lookup("price").unwrap();
        let s = crate::agg::sum_union(
            merged.ftree(),
            &merged.roots()[0],
            &crate::ftree::AggOp::Sum(price),
        )
        .unwrap();
        // Sum of prices over the join: base 6×3 + ham 1×2 + mushrooms 1 +
        // pineapple 2 = 23.
        assert_eq!(s.into_value(), Value::Int(23));
    }

    #[test]
    fn merge_prunes_dangling_values() {
        let (_, rp, ri) = pizzeria();
        // Restrict Items to just "ham": the merge must prune pizzas that
        // only join with other items... (Margherita has only "base").
        let ri = crate::ops::select_const(
            ri,
            fdb_relational::AttrId(3),
            fdb_relational::CmpOp::Eq,
            &Value::Int(1),
        )
        .unwrap(); // price = 1: ham, mushrooms
        let pizza_root = rp.ftree().roots()[0];
        let item_node = rp.ftree().node(pizza_root).children[0];
        let rp = swap(rp, pizza_root, item_node).unwrap();
        let joined = product(rp, ri);
        let item2_node = joined.ftree().roots()[1];
        let merged = merge(joined, item_node, item2_node).unwrap();
        assert_eq!(merged.tuple_count(), 3); // Capricciosa×{ham,mushrooms}, Hawaii×ham
    }

    #[test]
    fn absorb_restricts_descendant() {
        // Self-join-style condition pizza = item2 would be type-odd; build
        // a small numeric example instead: R(a,b) with tree a → b, absorb
        // b into a implements σ_{a=b}(R).
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (2, 2), (3, 1)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let na = rep.ftree().roots()[0];
        let nb = rep.ftree().node(na).children[0];
        let out = absorb(rep, na, nb).unwrap();
        out.check_invariants().unwrap();
        // σ_{a=b} keeps (1,1) and (2,2).
        assert_eq!(out.tuple_count(), 2);
        let flat = out.flatten();
        // Class {a, b} exposes both columns with the same value.
        assert_eq!(flat.arity(), 2);
        assert_eq!(flat.row(0), &[Value::Int(1), Value::Int(1)]);
        assert_eq!(flat.row(1), &[Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn absorb_through_intermediate_level() {
        // Tree a → x → b; absorb b into a must restrict every b-union two
        // levels down and prune dead x-branches.
        let mut c = Catalog::new();
        let a = c.intern("a");
        let x = c.intern("x");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, x, b]),
            [(1, 10, 1), (1, 20, 2), (2, 10, 2), (2, 30, 1)]
                .into_iter()
                .map(|(p, q, r)| vec![Value::Int(p), Value::Int(q), Value::Int(r)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, x, b])).unwrap();
        let na = rep.ftree().roots()[0];
        let nb = rep.ftree().node_of_attr(c.lookup("b").unwrap()).unwrap();
        let out = absorb(rep, na, nb).unwrap();
        out.check_invariants().unwrap();
        // Rows with a = b: (1,10,1) and (2,10,2).
        assert_eq!(out.tuple_count(), 2);
        let na_children = out.ftree().node(na).children.clone();
        assert_eq!(na_children.len(), 1); // x remains, b absorbed
    }

    #[test]
    fn swap_requires_parent_child_relation() {
        let (_, rp, _) = pizzeria();
        let root = rp.ftree().roots()[0];
        assert!(swap(rp, root, root).is_err());
    }
}
