//! Data values with a total order.
//!
//! Every value stored in a relation or a factorised representation is a
//! [`Value`]. Factorised representations keep the singletons of every union
//! sorted (§4.1 of the paper), relational baselines sort and hash tuples, and
//! `ORDER BY` needs a deterministic comparison — so `Value` implements a
//! *total* order, including for floating-point data (via `f64::total_cmp`).
//!
//! The `Tup` variant carries composite aggregate results, e.g. the paper
//! recovers `avg` as the pair `(sum, count)` (§3.2.4); a k-ary aggregation
//! operator stores `⟨(F1,…,Fk):(v1,…,vk)⟩` singletons whose value is a `Tup`.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

/// A single data value.
///
/// Values of different variants are never equal and order by variant rank
/// (`Int < Float < Str < Tup < Null`); columns are expected to be
/// homogeneously typed, which the query validator enforces for constants.
///
/// ## Null placement
///
/// `Null` is the **greatest** value in the total order: under
/// [`crate::SortDir::Asc`] nulls come last, under
/// [`crate::SortDir::Desc`] they come first (the same NULLS LAST / NULLS
/// FIRST defaults as PostgreSQL). Because the rule lives in `Ord` itself,
/// every ordering consumer — the sorted singleton unions of a
/// factorisation, arena-ordered enumeration, heap top-k, and the flat
/// [`crate::Relation::sort_by_keys`] comparator — agrees by construction.
#[derive(Clone, Debug)]
pub enum Value {
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float, totally ordered via `f64::total_cmp` (NaN sorts last).
    Float(f64),
    /// Interned-by-`Arc` string; cloning is cheap.
    Str(Arc<str>),
    /// Composite value, used for k-ary aggregate results such as `avg`.
    Tup(Arc<[Value]>),
    /// Absent value; sorts after every other value (NULLS LAST ascending).
    Null,
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for composite values.
    pub fn tup(vs: impl Into<Vec<Value>>) -> Self {
        Value::Tup(Arc::from(vs.into()))
    }

    /// Variant rank used for cross-variant ordering. `Null` ranks last so
    /// it is the greatest value (NULLS LAST under ascending order).
    fn rank(&self) -> u8 {
        match self {
            Value::Int(_) => 0,
            Value::Float(_) => 1,
            Value::Str(_) => 2,
            Value::Tup(_) => 3,
            Value::Null => 4,
        }
    }

    /// True if this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, if this is a `Float`.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the components, if this is a `Tup`.
    pub fn as_tup(&self) -> Option<&[Value]> {
        match self {
            Value::Tup(vs) => Some(vs),
            _ => None,
        }
    }

    /// Numeric view used by arithmetic aggregates (`sum`, `avg`).
    ///
    /// Integers widen to `i64` accumulation, floats to `f64`; strings and
    /// tuples are not numeric.
    pub fn as_number(&self) -> Option<Number> {
        match self {
            Value::Int(i) => Some(Number::Int(*i)),
            Value::Float(f) => Some(Number::Float(*f)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (Value::Tup(a), Value::Tup(b)) => a.cmp(b),
            (Value::Null, Value::Null) => Ordering::Equal,
            (a, b) => a.rank().cmp(&b.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.rank().hash(state);
        match self {
            Value::Int(i) => i.hash(state),
            // `total_cmp` distinguishes -0.0 from 0.0, so hashing the raw
            // bits is consistent with `Eq`.
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Tup(vs) => vs.hash(state),
            Value::Null => {}
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Tup(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Null => write!(f, "NULL"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

/// Numeric accumulator domain shared by `sum`/`avg`.
///
/// A sum over integers stays integral; any float promotes the whole
/// accumulation to floating point (mirroring SQL numeric widening).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    Int(i64),
    Float(f64),
}

// `add`/`mul` intentionally shadow the operator-trait names: callers use
// them as explicit widening combinators, and the `Ord`-less `f64` payload
// makes full operator impls misleading.
#[allow(clippy::should_implement_trait)]
impl Number {
    /// Additive identity.
    pub const ZERO: Number = Number::Int(0);

    /// Adds two numbers, widening to float when either side is a float.
    pub fn add(self, other: Number) -> Number {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => Number::Int(a.wrapping_add(b)),
            (a, b) => Number::Float(a.to_f64() + b.to_f64()),
        }
    }

    /// Multiplies two numbers, widening to float when either side is a float.
    pub fn mul(self, other: Number) -> Number {
        match (self, other) {
            (Number::Int(a), Number::Int(b)) => Number::Int(a.wrapping_mul(b)),
            (a, b) => Number::Float(a.to_f64() * b.to_f64()),
        }
    }

    /// Raises the number to a non-negative power.
    ///
    /// Integers use wrapping exponentiation by squaring — congruent
    /// mod 2^64 with the equivalent chain of [`Number::mul`] calls, so
    /// a factorised `product^count` matches a flat sequential product
    /// exactly. Floats use `powi`, which may round differently from a
    /// sequential multiply; float products are documented as
    /// approximate across engines.
    pub fn pow(self, exp: u64) -> Number {
        match self {
            Number::Int(base) => {
                let mut acc: i64 = 1;
                let mut base = base;
                let mut exp = exp;
                while exp > 0 {
                    if exp & 1 == 1 {
                        acc = acc.wrapping_mul(base);
                    }
                    base = base.wrapping_mul(base);
                    exp >>= 1;
                }
                Number::Int(acc)
            }
            Number::Float(f) => Number::Float(f.powi(exp.min(i32::MAX as u64) as i32)),
        }
    }

    /// Lossy float view, used by `avg` and by float-typed accumulations.
    pub fn to_f64(self) -> f64 {
        match self {
            Number::Int(i) => i as f64,
            Number::Float(f) => f,
        }
    }

    /// Converts back into a [`Value`].
    pub fn into_value(self) -> Value {
        match self {
            Number::Int(i) => Value::Int(i),
            Number::Float(f) => Value::Float(f),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn int_ordering() {
        assert!(Value::Int(1) < Value::Int(2));
        assert_eq!(Value::Int(5), Value::Int(5));
    }

    #[test]
    fn cross_variant_ordering_is_total() {
        let vals = [
            Value::Int(10),
            Value::Float(0.5),
            Value::str("abc"),
            Value::tup(vec![Value::Int(1)]),
            Value::Null,
        ];
        for (i, a) in vals.iter().enumerate() {
            for (j, b) in vals.iter().enumerate() {
                assert_eq!(a.cmp(b), i.cmp(&j), "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn float_total_order_handles_nan() {
        let nan = Value::Float(f64::NAN);
        let one = Value::Float(1.0);
        assert_eq!(nan.cmp(&nan), Ordering::Equal);
        assert!(one < nan);
    }

    #[test]
    fn hash_consistent_with_eq() {
        let a = Value::str("hello");
        let b = Value::str("hello");
        assert_eq!(a, b);
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn string_ordering_is_lexicographic() {
        assert!(Value::str("Capricciosa") < Value::str("Hawaii"));
        assert!(Value::str("Hawaii") < Value::str("Margherita"));
    }

    #[test]
    fn tuple_ordering_is_lexicographic() {
        let a = Value::tup(vec![Value::Int(1), Value::Int(9)]);
        let b = Value::tup(vec![Value::Int(2), Value::Int(0)]);
        assert!(a < b);
    }

    #[test]
    fn null_sorts_last_ascending_first_descending() {
        use crate::SortDir;
        // NULLS LAST under Asc, NULLS FIRST under Desc — the single rule
        // every ordering consumer inherits from `Ord`.
        for v in [Value::Int(i64::MAX), Value::str("zzz"), Value::Null] {
            assert!(v <= Value::Null, "{v:?} must not sort after NULL");
        }
        assert_eq!(Value::Null.cmp(&Value::Null), Ordering::Equal);
        assert_eq!(hash_of(&Value::Null), hash_of(&Value::Null));
        assert_eq!(
            SortDir::Desc.apply(Value::Int(1).cmp(&Value::Null)),
            Ordering::Greater,
            "descending puts NULL first"
        );
        assert!(Value::Null.is_null() && !Value::Int(0).is_null());
    }

    #[test]
    fn number_widening() {
        assert_eq!(Number::Int(2).add(Number::Int(3)), Number::Int(5));
        assert_eq!(Number::Int(2).mul(Number::Float(1.5)), Number::Float(3.0));
        assert_eq!(Number::ZERO.add(Number::Float(1.0)), Number::Float(1.0));
    }

    #[test]
    fn pow_matches_sequential_wrapping_product() {
        for base in [-7i64, 0, 1, 3, 1_000_003] {
            for exp in [0u64, 1, 2, 5, 17, 64] {
                let mut seq = Number::Int(1);
                for _ in 0..exp {
                    seq = seq.mul(Number::Int(base));
                }
                assert_eq!(Number::Int(base).pow(exp), seq, "{base}^{exp}");
            }
        }
        assert_eq!(Number::Float(2.0).pow(10), Number::Float(1024.0));
    }

    #[test]
    fn display_round_trip_smoke() {
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::str("x").to_string(), "x");
        assert_eq!(
            Value::tup(vec![Value::Int(1), Value::str("a")]).to_string(),
            "(1,a)"
        );
    }
}
