//! Tokeniser for the SQL subset.
//!
//! Keywords are case-insensitive; identifiers keep their case. String
//! literals use single quotes with `''` as the escape for a quote.

use crate::error::QueryError;

/// One lexical token.
#[derive(Clone, Debug, PartialEq)]
pub enum Token {
    /// Keyword, upper-cased (`SELECT`, `FROM`, …).
    Keyword(String),
    /// Identifier (attribute or relation name).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// String literal (quotes stripped, escapes resolved).
    Str(String),
    /// Punctuation and operators.
    Symbol(Sym),
}

/// Punctuation / operator symbols.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Sym {
    Comma,
    LParen,
    RParen,
    Star,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    Semicolon,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "GROUP", "BY", "HAVING", "ORDER", "LIMIT", "OFFSET", "AS", "AND",
    "ASC", "DESC", "SUM", "COUNT", "MIN", "MAX", "AVG", "NATURAL", "JOIN", "DISTINCT", "PRODUCT",
    "EXISTS", "FORALL", "TOP_K", "ROLLUP", "CUBE", "GROUPING", "SETS", "INSERT", "INTO", "VALUES",
    "DELETE", "NULL",
];

/// Tokenises `input`.
pub fn lex(input: &str) -> Result<Vec<Token>, QueryError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            ',' => {
                tokens.push(Token::Symbol(Sym::Comma));
                i += 1;
            }
            '(' => {
                tokens.push(Token::Symbol(Sym::LParen));
                i += 1;
            }
            ')' => {
                tokens.push(Token::Symbol(Sym::RParen));
                i += 1;
            }
            '*' => {
                tokens.push(Token::Symbol(Sym::Star));
                i += 1;
            }
            ';' => {
                tokens.push(Token::Symbol(Sym::Semicolon));
                i += 1;
            }
            '=' => {
                tokens.push(Token::Symbol(Sym::Eq));
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Le));
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Lt));
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ge));
                    i += 2;
                } else {
                    tokens.push(Token::Symbol(Sym::Gt));
                    i += 1;
                }
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token::Symbol(Sym::Ne));
                    i += 2;
                } else {
                    return Err(QueryError::Lex {
                        pos: i,
                        message: "expected `!=`".into(),
                    });
                }
            }
            '\'' => {
                let mut s = String::new();
                let mut j = i + 1;
                loop {
                    match bytes.get(j) {
                        None => {
                            return Err(QueryError::Lex {
                                pos: i,
                                message: "unterminated string literal".into(),
                            })
                        }
                        Some(b'\'') if bytes.get(j + 1) == Some(&b'\'') => {
                            s.push('\'');
                            j += 2;
                        }
                        Some(b'\'') => {
                            j += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            j += 1;
                        }
                    }
                }
                tokens.push(Token::Str(s));
                i = j;
            }
            '0'..='9' | '-' => {
                let start = i;
                if c == '-' {
                    i += 1;
                    if !matches!(bytes.get(i), Some(b'0'..=b'9')) {
                        return Err(QueryError::Lex {
                            pos: start,
                            message: "`-` must start a number".into(),
                        });
                    }
                }
                let mut is_float = false;
                while i < bytes.len() {
                    match bytes[i] {
                        b'0'..=b'9' => i += 1,
                        b'.' if !is_float => {
                            is_float = true;
                            i += 1;
                        }
                        _ => break,
                    }
                }
                let text = &input[start..i];
                if is_float {
                    let f: f64 = text.parse().map_err(|_| QueryError::Lex {
                        pos: start,
                        message: format!("bad float literal `{text}`"),
                    })?;
                    tokens.push(Token::Float(f));
                } else {
                    let n: i64 = text.parse().map_err(|_| QueryError::Lex {
                        pos: start,
                        message: format!("bad integer literal `{text}`"),
                    })?;
                    tokens.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                let word = &input[start..i];
                let upper = word.to_ascii_uppercase();
                if KEYWORDS.contains(&upper.as_str()) {
                    tokens.push(Token::Keyword(upper));
                } else {
                    tokens.push(Token::Ident(word.to_string()));
                }
            }
            other => {
                return Err(QueryError::Lex {
                    pos: i,
                    message: format!("unexpected character `{other}`"),
                })
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_are_case_insensitive() {
        let toks = lex("select Sum ( price )").unwrap();
        assert_eq!(toks[0], Token::Keyword("SELECT".into()));
        assert_eq!(toks[1], Token::Keyword("SUM".into()));
    }

    #[test]
    fn identifiers_keep_case() {
        let toks = lex("Orders").unwrap();
        assert_eq!(toks[0], Token::Ident("Orders".into()));
    }

    #[test]
    fn numbers_and_strings() {
        let toks = lex("42 -7 3.5 'it''s'").unwrap();
        assert_eq!(
            toks,
            vec![
                Token::Int(42),
                Token::Int(-7),
                Token::Float(3.5),
                Token::Str("it's".into())
            ]
        );
    }

    #[test]
    fn comparison_operators() {
        let toks = lex("= <> != < <= > >=").unwrap();
        let syms: Vec<Sym> = toks
            .into_iter()
            .map(|t| match t {
                Token::Symbol(s) => s,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(
            syms,
            vec![
                Sym::Eq,
                Sym::Ne,
                Sym::Ne,
                Sym::Lt,
                Sym::Le,
                Sym::Gt,
                Sym::Ge
            ]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(matches!(lex("'oops"), Err(QueryError::Lex { .. })));
    }

    #[test]
    fn stray_character_is_error() {
        assert!(matches!(lex("price @ 3"), Err(QueryError::Lex { .. })));
    }
}
