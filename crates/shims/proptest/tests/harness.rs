//! The shim harness itself must fail failing properties and replay
//! deterministically — otherwise a green workspace suite proves nothing.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn generated_values_respect_strategies(
        x in 2i64..7,
        (a, b) in (0u8..4, 10usize..=12),
        v in prop::collection::vec(0i64..3, 1..5),
        pick in prop::sample::select(vec!["r", "s", "t"]),
        opt in prop::option::of(0u32..2),
        flags in prop::collection::vec(any::<bool>(), 32),
        s in ".{0,12}",
    ) {
        prop_assert!((2..7).contains(&x));
        prop_assert!(a < 4 && (10..=12).contains(&b));
        prop_assert!(!v.is_empty() && v.len() < 5 && v.iter().all(|e| (0..3).contains(e)));
        prop_assert!(["r", "s", "t"].contains(&pick));
        prop_assert!(opt.is_none_or(|o| o < 2));
        prop_assert_eq!(flags.len(), 32);
        prop_assert!(s.chars().count() <= 12);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_fails_the_test(x in 0i64..10) {
        prop_assert!(x > 100, "x was {x}");
    }

    #[test]
    fn early_return_ok_is_accepted(x in 0i64..10) {
        if x < 100 {
            return Ok(());
        }
        prop_assert!(false, "unreachable for this strategy");
    }
}

#[test]
fn cases_replay_deterministically() {
    use proptest::strategy::Strategy;
    use proptest::test_runner::TestRng;

    let strat = (0i64..1000, 0i64..1000);
    let mut a = TestRng::replay("some_test", 3);
    let mut b = TestRng::replay("some_test", 3);
    assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    let mut c = TestRng::replay("some_test", 4);
    assert_ne!(
        (0i64..1_000_000_000).generate(&mut TestRng::replay("some_test", 3)),
        (0i64..1_000_000_000).generate(&mut c),
    );
}
