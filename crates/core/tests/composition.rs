//! Proposition 2 — composition rules for aggregation operators.
//!
//! For f-trees `U ⊇ V` and functions F, G ∈ {sum, count, min, max}:
//!
//! 1. `γ_F(U) ∘ γ_F(V) = γ_F(U)` — pre-aggregating a subset is absorbed;
//! 2. `γ_sumA(U) ∘ γ_count(V) = γ_sumA(U)` when `A ∉ V` — counting a
//!    subtree that does not hold the summed attribute is a valid partial
//!    step;
//! 3. `γ_F(U) ∘ γ_G(V) = γ_G(V) ∘ γ_F(U)` when `U ∩ V = ∅` — disjoint
//!    operators commute.
//!
//! Each law is checked on the Figure 1 factorisation by executing both
//! sides as operator sequences and comparing the flattened results.

use fdb_core::frep::FRep;
use fdb_core::ftree::{AggOp, FTree, NodeLabel};
use fdb_core::ops::{aggregate, AggTarget};
use fdb_relational::{AttrId, Catalog, Relation, Schema, Value};

struct Fixture {
    catalog: Catalog,
    rep: FRep,
    price: AttrId,
    item: AttrId,
    date: AttrId,
    customer: AttrId,
}

/// R = Orders ⋈ Pizzas ⋈ Items over T1, from Figure 1.
fn fixture() -> Fixture {
    let mut catalog = Catalog::new();
    let pizza = catalog.intern("pizza");
    let date = catalog.intern("date");
    let customer = catalog.intern("customer");
    let item = catalog.intern("item");
    let price = catalog.intern("price");
    let rows: Vec<(&str, i64, &str, &str, i64)> = vec![
        ("Capricciosa", 1, "Mario", "base", 6),
        ("Capricciosa", 1, "Mario", "ham", 1),
        ("Capricciosa", 1, "Mario", "mushrooms", 1),
        ("Capricciosa", 5, "Mario", "base", 6),
        ("Capricciosa", 5, "Mario", "ham", 1),
        ("Capricciosa", 5, "Mario", "mushrooms", 1),
        ("Hawaii", 5, "Lucia", "base", 6),
        ("Hawaii", 5, "Lucia", "ham", 1),
        ("Hawaii", 5, "Lucia", "pineapple", 2),
        ("Hawaii", 5, "Pietro", "base", 6),
        ("Hawaii", 5, "Pietro", "ham", 1),
        ("Hawaii", 5, "Pietro", "pineapple", 2),
        ("Margherita", 2, "Mario", "base", 6),
    ];
    let rel = Relation::from_rows(
        Schema::new(vec![pizza, date, customer, item, price]),
        rows.into_iter().map(|(p, d, cu, i, pr)| {
            vec![
                Value::str(p),
                Value::Int(d),
                Value::str(cu),
                Value::str(i),
                Value::Int(pr),
            ]
        }),
    );
    let mut t = FTree::new();
    let n_pizza = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
    let n_date = t.add_node(NodeLabel::Atomic(vec![date]), Some(n_pizza));
    t.add_node(NodeLabel::Atomic(vec![customer]), Some(n_date));
    let n_item = t.add_node(NodeLabel::Atomic(vec![item]), Some(n_pizza));
    t.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));
    t.add_dep([customer, date, pizza]);
    t.add_dep([pizza, item]);
    t.add_dep([item, price]);
    let rep = FRep::from_relation(&rel, t).unwrap();
    Fixture {
        catalog,
        rep,
        price,
        item,
        date,
        customer,
    }
}

/// Applies the final γ over the whole forest with the given function.
fn final_gamma(rep: FRep, func: AggOp, out: AttrId) -> FRep {
    let roots = rep.ftree().roots().to_vec();
    aggregate(
        rep,
        &AggTarget {
            parent: None,
            nodes: roots,
        },
        vec![func],
        vec![out],
    )
    .unwrap()
}

#[test]
fn law1_pre_aggregation_is_absorbed_sum() {
    // γ_sum(whole) ∘ γ_sum(item-subtree) == γ_sum(whole).
    let mut f = fixture();
    let out = f.catalog.intern("total");

    let direct = final_gamma(f.rep.clone(), AggOp::Sum(f.price), out);

    let item_node = f.rep.ftree().node_of_attr(f.item).unwrap();
    let partial_out = f.catalog.intern("partial");
    let pre = aggregate(
        f.rep.clone(),
        &AggTarget::subtree(f.rep.ftree(), item_node),
        vec![AggOp::Sum(f.price)],
        vec![partial_out],
    )
    .unwrap();
    let composed = final_gamma(pre, AggOp::Sum(f.price), out);

    assert_eq!(direct.flatten().canonical(), composed.flatten().canonical());
    assert_eq!(*direct.root(0).entry(0).value(), Value::Int(40));
}

#[test]
fn law1_pre_aggregation_is_absorbed_count() {
    let mut f = fixture();
    let out = f.catalog.intern("n");
    let direct = final_gamma(f.rep.clone(), AggOp::Count, out);

    // Pre-count the date subtree (under pizza).
    let date_node = f.rep.ftree().node_of_attr(f.date).unwrap();
    let partial = f.catalog.intern("partial_n");
    let pre = aggregate(
        f.rep.clone(),
        &AggTarget::subtree(f.rep.ftree(), date_node),
        vec![AggOp::Count],
        vec![partial],
    )
    .unwrap();
    let composed = final_gamma(pre, AggOp::Count, out);
    assert_eq!(direct.flatten().canonical(), composed.flatten().canonical());
    assert_eq!(*direct.root(0).entry(0).value(), Value::Int(13));
}

#[test]
fn law1_min_max_absorbed() {
    let mut f = fixture();
    for (func, expected) in [
        (AggOp::Min(f.price), Value::Int(1)),
        (AggOp::Max(f.price), Value::Int(6)),
    ] {
        let out = f.catalog.fresh("extremum");
        let direct = final_gamma(f.rep.clone(), func, out);
        let item_node = f.rep.ftree().node_of_attr(f.item).unwrap();
        let partial = f.catalog.fresh("pre_extremum");
        let pre = aggregate(
            f.rep.clone(),
            &AggTarget::subtree(f.rep.ftree(), item_node),
            vec![func],
            vec![partial],
        )
        .unwrap();
        let composed = final_gamma(pre, func, out);
        assert_eq!(*direct.root(0).entry(0).value(), expected);
        assert_eq!(direct.flatten().canonical(), composed.flatten().canonical());
    }
}

#[test]
fn law2_sum_after_count_on_disjoint_subtree() {
    // γ_sum(price)(whole) ∘ γ_count(date-subtree) == γ_sum(price)(whole):
    // price ∉ {date, customer}, so the count is a valid partial step and
    // the final sum multiplies through it.
    let mut f = fixture();
    let out = f.catalog.intern("total2");
    let direct = final_gamma(f.rep.clone(), AggOp::Sum(f.price), out);

    let date_node = f.rep.ftree().node_of_attr(f.date).unwrap();
    let partial = f.catalog.intern("count_dates");
    let pre = aggregate(
        f.rep.clone(),
        &AggTarget::subtree(f.rep.ftree(), date_node),
        vec![AggOp::Count],
        vec![partial],
    )
    .unwrap();
    let composed = final_gamma(pre, AggOp::Sum(f.price), out);
    assert_eq!(direct.flatten().canonical(), composed.flatten().canonical());
}

#[test]
fn law3_disjoint_operators_commute() {
    // γ_count(date-subtree) and γ_sum(price)(item-subtree) touch disjoint
    // subtrees: both orders give the same factorisation.
    let mut f = fixture();
    let cnt_out = f.catalog.intern("cnt");
    let sum_out = f.catalog.intern("sum");

    let apply_count = |rep: FRep| {
        let n = rep.ftree().node_of_attr(f.date).unwrap();
        aggregate(
            rep.clone(),
            &AggTarget::subtree(rep.ftree(), n),
            vec![AggOp::Count],
            vec![cnt_out],
        )
        .unwrap()
    };
    let apply_sum = |rep: FRep| {
        let n = rep.ftree().node_of_attr(f.item).unwrap();
        aggregate(
            rep.clone(),
            &AggTarget::subtree(rep.ftree(), n),
            vec![AggOp::Sum(f.price)],
            vec![sum_out],
        )
        .unwrap()
    };

    let ab = apply_sum(apply_count(f.rep.clone()));
    let ba = apply_count(apply_sum(f.rep.clone()));
    // Same represented relation; column order may differ, so align.
    let cols = ab.schema().attrs().to_vec();
    assert_eq!(
        ab.flatten().canonical(),
        ba.flatten().project_cols(&cols).canonical()
    );
    // And identical nesting structure up to sibling order.
    assert_eq!(ab.ftree().canonical_key(), ba.ftree().canonical_key());
}

#[test]
fn example7_full_pipeline_equivalence() {
    // Example 7: γ_sum(U) ∘ γ_count(date) ∘ γ_sum(item,price) == γ_sum(U)
    // where U is everything below customer — verified per customer group.
    let mut f = fixture();
    // Left side: partials then final (the Example 1 pipeline).
    let item_node = f.rep.ftree().node_of_attr(f.item).unwrap();
    let s1 = f.catalog.intern("sp");
    let with_partials = aggregate(
        f.rep.clone(),
        &AggTarget::subtree(f.rep.ftree(), item_node),
        vec![AggOp::Sum(f.price)],
        vec![s1],
    )
    .unwrap();
    // Restructure customer to the root for both sides.
    let lift = |rep: FRep| fdb_core::orderby::restructure_for_group(rep, &[f.customer]).unwrap();
    let with_partials = lift(with_partials);
    let date_node = with_partials.ftree().node_of_attr(f.date).unwrap();
    let c1 = f.catalog.intern("cd");
    let with_partials = aggregate(
        with_partials.clone(),
        &AggTarget::subtree(with_partials.ftree(), date_node),
        vec![AggOp::Count],
        vec![c1],
    )
    .unwrap();
    let rev1 = f.catalog.intern("rev_a");
    let cust_node = with_partials.ftree().node_of_attr(f.customer).unwrap();
    let below = with_partials.ftree().node(cust_node).children.clone();
    let lhs = aggregate(
        with_partials,
        &AggTarget {
            parent: Some(cust_node),
            nodes: below,
        },
        vec![AggOp::Sum(f.price)],
        vec![rev1],
    )
    .unwrap();

    // Right side: the single final operator, no partials.
    let plain = lift(f.rep.clone());
    let cust_node = plain.ftree().node_of_attr(f.customer).unwrap();
    let below = plain.ftree().node(cust_node).children.clone();
    let rev2 = f.catalog.intern("rev_b");
    let rhs = aggregate(
        plain,
        &AggTarget {
            parent: Some(cust_node),
            nodes: below,
        },
        vec![AggOp::Sum(f.price)],
        vec![rev2],
    )
    .unwrap();

    // The two sides name their output attribute differently (rev_a vs
    // rev_b); compare the tuple data, not the schemas.
    let tuples = |r: &Relation| -> Vec<Vec<Value>> {
        let mut rows: Vec<Vec<Value>> = r.rows().map(|row| row.to_vec()).collect();
        rows.sort();
        rows
    };
    let l = lhs.flatten();
    let r = rhs.flatten();
    assert_eq!(tuples(&l), tuples(&r));
    // Lucia 9, Mario 22, Pietro 9.
    let revs: Vec<i64> = l.rows().map(|row| row[1].as_int().unwrap()).collect();
    assert_eq!(revs, vec![9, 22, 9]);
}
