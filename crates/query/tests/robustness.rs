//! Parser robustness: arbitrary input must never panic — every outcome is
//! either a resolved query or a structured error — and valid queries
//! round-trip through `display` to an equivalent parse.

use fdb_query::parse;
use fdb_relational::{Catalog, Schema};
use proptest::prelude::*;
use std::collections::HashMap;

fn schemas() -> (Catalog, HashMap<String, Schema>) {
    let mut c = Catalog::new();
    let customer = c.intern("customer");
    let date = c.intern("date");
    let package = c.intern("package");
    let item = c.intern("item");
    let price = c.intern("price");
    let mut schemas = HashMap::new();
    schemas.insert(
        "Orders".to_string(),
        Schema::new(vec![customer, date, package]),
    );
    schemas.insert("Packages".to_string(), Schema::new(vec![package, item]));
    schemas.insert("Items".to_string(), Schema::new(vec![item, price]));
    (c, schemas)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    #[test]
    fn arbitrary_input_never_panics(input in ".{0,80}") {
        let (mut c, schemas) = schemas();
        let _ = parse(&input, &mut c, &schemas);
    }

    #[test]
    fn keyword_soup_never_panics(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "SELECT", "FROM", "WHERE", "GROUP", "BY", "ORDER", "HAVING",
                "LIMIT", "AND", "AS", "SUM", "COUNT", "MIN", "MAX", "AVG",
                "ASC", "DESC", "NATURAL", "JOIN", "DISTINCT",
                "customer", "price", "Items", "Orders", "*", "(", ")", ",",
                "=", "<", ">=", "<>", "5", "3.5", "'x'",
            ]),
            0..20,
        )
    ) {
        let (mut c, schemas) = schemas();
        let sql = words.join(" ");
        let _ = parse(&sql, &mut c, &schemas);
    }

    #[test]
    fn valid_queries_round_trip_through_display(
        agg_pick in 0usize..5,
        desc in any::<bool>(),
        limit in prop::option::of(0usize..100),
        with_where in any::<bool>(),
    ) {
        let (mut c, schemas) = schemas();
        let agg = ["SUM(price)", "COUNT(*)", "MIN(price)", "MAX(price)", "AVG(price)"][agg_pick];
        let mut sql = format!(
            "SELECT customer, {agg} AS out FROM Orders, Packages, Items"
        );
        if with_where {
            sql.push_str(" WHERE price >= 2");
        }
        sql.push_str(" GROUP BY customer ORDER BY customer");
        if desc {
            sql.push_str(" DESC");
        }
        if let Some(k) = limit {
            sql.push_str(&format!(" LIMIT {k}"));
        }
        let q1 = parse(&sql, &mut c, &schemas).expect("valid query parses");
        let rendered = q1.display(&c);
        let q2 = parse(&rendered, &mut c, &schemas)
            .unwrap_or_else(|e| panic!("rendered `{rendered}` must reparse: {e}"));
        prop_assert_eq!(q1, q2);
    }
}

#[test]
fn deeply_nested_garbage_is_rejected_gracefully() {
    let (mut c, schemas) = schemas();
    let sql = format!("SELECT {} FROM Items", "(".repeat(500));
    assert!(parse(&sql, &mut c, &schemas).is_err());
}

#[test]
fn long_conjunctions_parse() {
    let (mut c, schemas) = schemas();
    let conds: Vec<String> = (0..50).map(|i| format!("price <> {i}")).collect();
    let sql = format!("SELECT item FROM Items WHERE {}", conds.join(" AND "));
    let q = parse(&sql, &mut c, &schemas).unwrap();
    assert_eq!(q.predicates.len(), 50);
}
