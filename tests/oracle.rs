//! Property-based equivalence: the factorised engine must agree with the
//! relational baselines on randomly generated databases and queries, for
//! every plan flavour (greedy/exhaustive, consolidated or not, sort/hash
//! grouping, naive/eager aggregation) **and every worker-thread count**
//! of `common::thread_sweep()` — the parallel≡serial differential
//! oracle: `threads ∈ {1, 2, 4}` (plus `FDB_TEST_THREADS`) must produce
//! the same `Relation::canonical` on every database × query × flavour.
//! Each sweep additionally pins the staged pipeline executor
//! bit-identical to the legacy one-copy-per-operator path (see
//! `common::EnginePair::assert_all_agree`); the plan-level version of
//! that property, on random f-plans, lives in
//! `crates/core/tests/pipeline_fused.rs`.
//!
//! The query corpus covers joins of one to three relations, all five
//! aggregation functions, grouping by arbitrary subsets, WHERE ranges,
//! HAVING, and ordering.

mod common;

use common::EnginePair;
use fdb::relational::{Relation, Schema, Value};
use fdb::Catalog;
use proptest::prelude::*;

/// Builds the chain-join database R(a,b), S(b,c), T(c,d).
fn chain_db(r_rows: &[(i64, i64)], s_rows: &[(i64, i64)], t_rows: &[(i64, i64)]) -> EnginePair {
    let mut catalog = Catalog::new();
    let a = catalog.intern("a");
    let b = catalog.intern("b");
    let c = catalog.intern("c");
    let d = catalog.intern("d");
    let rel = |x, y, rows: &[(i64, i64)]| {
        Relation::from_rows(
            Schema::new(vec![x, y]),
            rows.iter()
                .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
        )
        .canonical()
    };
    let mut pair = EnginePair::new(catalog);
    pair.register("R", rel(a, b, r_rows));
    pair.register("S", rel(b, c, s_rows));
    pair.register("T", rel(c, d, t_rows));
    pair
}

/// The query corpus, parameterised by a selector. Each query is valid for
/// the chain schema above.
fn corpus() -> Vec<&'static str> {
    vec![
        // SPJ.
        "SELECT a, b FROM R",
        "SELECT b FROM R, S GROUP BY b",
        "SELECT a, c FROM R, S ORDER BY c DESC, a",
        "SELECT a, d FROM R, S, T",
        "SELECT a FROM R WHERE b >= 2 GROUP BY a",
        // Single-relation aggregates.
        "SELECT SUM(b) AS s FROM R",
        "SELECT a, COUNT(*) AS n FROM R GROUP BY a",
        "SELECT a, MIN(b) AS lo, MAX(b) AS hi FROM R GROUP BY a",
        "SELECT a, AVG(b) AS m FROM R GROUP BY a",
        // Two-way joins.
        "SELECT SUM(c) AS s FROM R, S",
        "SELECT a, SUM(c) AS s FROM R, S GROUP BY a",
        "SELECT b, COUNT(*) AS n FROM R, S GROUP BY b",
        "SELECT a, b, SUM(c) AS s FROM R, S GROUP BY a, b",
        "SELECT c, MIN(a) AS lo FROM R, S GROUP BY c",
        // Three-way joins.
        "SELECT SUM(d) AS s FROM R, S, T",
        "SELECT COUNT(*) AS n FROM R, S, T",
        "SELECT a, SUM(d) AS s FROM R, S, T GROUP BY a",
        "SELECT b, c, SUM(d) AS s FROM R, S, T GROUP BY b, c",
        "SELECT a, d, COUNT(*) AS n FROM R, S, T GROUP BY a, d",
        "SELECT a, AVG(d) AS m FROM R, S, T GROUP BY a",
        "SELECT c, MAX(a) AS hi FROM R, S, T GROUP BY c",
        // Aggregating a join attribute.
        "SELECT a, SUM(b) AS s FROM R, S GROUP BY a",
        "SELECT SUM(c) AS s FROM S, T",
        // WHERE + HAVING + ORDER BY combinations.
        "SELECT a, SUM(c) AS s FROM R, S WHERE b <> 1 GROUP BY a",
        "SELECT a, SUM(c) AS s FROM R, S GROUP BY a HAVING s >= 3",
        "SELECT a, SUM(c) AS s FROM R, S GROUP BY a ORDER BY s DESC, a",
        "SELECT a, COUNT(*) AS n FROM R, S, T WHERE d < 4 GROUP BY a \
         HAVING n > 1 ORDER BY n, a DESC",
        "SELECT b, AVG(d) AS m FROM S, T GROUP BY b ORDER BY b",
        // New aggregate surface (distinct/product/boolean/top-k).
        "SELECT COUNT(DISTINCT b) AS u FROM R",
        "SELECT a, COUNT(DISTINCT c) AS u FROM R, S GROUP BY a",
        "SELECT PRODUCT(b) AS p FROM R",
        "SELECT a, PRODUCT(c) AS p FROM R, S GROUP BY a",
        "SELECT a, EXISTS(c > 2) AS e, FORALL(c <= 4) AS f FROM R, S GROUP BY a",
        "SELECT c, EXISTS(a = 0) AS e FROM R, S, T GROUP BY c ORDER BY c DESC",
        "SELECT b, TOP_K(d, 3) AS t FROM S, T GROUP BY b",
        "SELECT a, TOP_K(c, 2) AS t FROM R, S GROUP BY a ORDER BY a",
        "SELECT a, COUNT(DISTINCT d) AS u FROM R, S, T GROUP BY a HAVING u >= 1",
        // OFFSET pagination (PG semantics: with or without LIMIT, either
        // clause order). ORDER BY keys cover every output column, so
        // rows tied on the keys are identical and the page is a
        // deterministic multiset for every strategy.
        "SELECT a, b FROM R ORDER BY a, b LIMIT 3 OFFSET 2",
        "SELECT a, c FROM R, S ORDER BY c DESC, a OFFSET 4",
        "SELECT a, d FROM R, S, T ORDER BY a, d DESC OFFSET 1 LIMIT 5",
        "SELECT a, SUM(c) AS s FROM R, S GROUP BY a ORDER BY s DESC, a LIMIT 2 OFFSET 2",
        "SELECT b, COUNT(*) AS n FROM R, S GROUP BY b ORDER BY n DESC, b OFFSET 1",
        "SELECT a, AVG(d) AS m FROM R, S, T GROUP BY a ORDER BY a LIMIT 2 OFFSET 100",
        // Grouping sets: ROLLUP / CUBE / explicit list. ORDER BY only
        // where the keys totally order the result (group columns; data
        // Ints never collide with the padding Nulls).
        "SELECT a, b, COUNT(*) AS n FROM R GROUP BY ROLLUP (a, b) ORDER BY a, b",
        "SELECT a, c, SUM(d) AS s FROM R, S, T GROUP BY CUBE (a, c)",
        "SELECT a, b, SUM(c) AS s FROM R, S GROUP BY GROUPING SETS ((a, b), (b), ())",
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        ..ProptestConfig::default()
    })]

    #[test]
    fn engines_agree_on_random_databases(
        r in prop::collection::vec((0i64..5, 0i64..5), 0..18),
        s in prop::collection::vec((0i64..5, 0i64..5), 0..18),
        t in prop::collection::vec((0i64..5, 0i64..5), 0..18),
        picks in prop::collection::vec(0usize..40, 4),
    ) {
        let queries = corpus();
        let mut pair = chain_db(&r, &s, &t);
        for pick in picks {
            pair.assert_all_agree(queries[pick % queries.len()]);
        }
    }

    #[test]
    fn factorise_flatten_round_trip(
        rows in prop::collection::vec((0i64..8, 0i64..8, 0i64..8), 0..30),
    ) {
        let mut catalog = Catalog::new();
        let x = catalog.intern("x");
        let y = catalog.intern("y");
        let z = catalog.intern("z");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y, z]),
            rows.iter().map(|&(u, v, w)| {
                vec![Value::Int(u), Value::Int(v), Value::Int(w)]
            }),
        ).canonical();
        let rep = fdb::core::frep::FRep::from_relation(
            &rel,
            fdb::core::FTree::path(&[x, y, z]),
        ).unwrap();
        prop_assert!(rep.check_invariants().is_ok());
        prop_assert_eq!(rep.flatten().canonical(), rel.clone());
        prop_assert_eq!(rep.tuple_count(), rel.len());
        // The trie never exceeds the flat singleton count.
        prop_assert!(rep.singleton_count() <= rel.len() * 3);
    }

    #[test]
    fn ordered_enumeration_is_sorted_on_random_data(
        rows in prop::collection::vec((0i64..6, 0i64..6, 0i64..6), 1..25),
        desc_mask in 0u8..8,
    ) {
        use fdb::relational::{SortDir, SortKey};
        let mut catalog = Catalog::new();
        let x = catalog.intern("x");
        let y = catalog.intern("y");
        let z = catalog.intern("z");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y, z]),
            rows.iter().map(|&(u, v, w)| {
                vec![Value::Int(u), Value::Int(v), Value::Int(w)]
            }),
        ).canonical();
        let rep = fdb::core::frep::FRep::from_relation(
            &rel,
            fdb::core::FTree::path(&[x, y, z]),
        ).unwrap();
        let dir = |bit: u8| if desc_mask & bit != 0 { SortDir::Desc } else { SortDir::Asc };
        let keys = vec![
            SortKey { attr: x, dir: dir(1) },
            SortKey { attr: y, dir: dir(2) },
            SortKey { attr: z, dir: dir(4) },
        ];
        let spec = fdb::core::enumerate::EnumSpec::ordered(rep.ftree(), &keys).unwrap();
        let it = fdb::core::enumerate::TupleIter::new(&rep, &spec).unwrap();
        let out = it.projected(&[x, y, z], None).unwrap();
        prop_assert_eq!(out.len(), rel.len());
        prop_assert!(out.is_sorted_by(&keys));
    }

    #[test]
    fn swap_preserves_data_on_random_relations(
        rows in prop::collection::vec((0i64..5, 0i64..5, 0i64..5), 1..25),
    ) {
        let mut catalog = Catalog::new();
        let x = catalog.intern("x");
        let y = catalog.intern("y");
        let z = catalog.intern("z");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y, z]),
            rows.iter().map(|&(u, v, w)| {
                vec![Value::Int(u), Value::Int(v), Value::Int(w)]
            }),
        ).canonical();
        let rep = fdb::core::frep::FRep::from_relation(
            &rel,
            fdb::core::FTree::path(&[x, y, z]),
        ).unwrap();
        // Swap y above x, then z above y: every step preserves ⟦E⟧.
        let nx = rep.ftree().node_of_attr(x).unwrap();
        let ny = rep.ftree().node_of_attr(y).unwrap();
        let swapped = fdb::core::ops::swap(rep, nx, ny).unwrap();
        prop_assert!(swapped.check_invariants().is_ok());
        prop_assert_eq!(
            swapped.flatten().project_cols(&[x, y, z]).canonical(),
            rel.clone()
        );
        let nz = swapped.ftree().node_of_attr(z).unwrap();
        let parent = swapped.ftree().node(nz).parent.unwrap();
        let swapped2 = fdb::core::ops::swap(swapped, parent, nz).unwrap();
        prop_assert!(swapped2.check_invariants().is_ok());
        prop_assert_eq!(
            swapped2.flatten().project_cols(&[x, y, z]).canonical(),
            rel
        );
    }

    #[test]
    fn size_bound_is_sound(
        rows in prop::collection::vec((0i64..6, 0i64..6), 1..30),
    ) {
        use fdb::core::optim::{tree_cost, Stats};
        let mut catalog = Catalog::new();
        let x = catalog.intern("x");
        let y = catalog.intern("y");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y]),
            rows.iter().map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
        ).canonical();
        let tree = fdb::core::FTree::path(&[x, y]);
        let rep = fdb::core::frep::FRep::from_relation(&rel, tree.clone()).unwrap();
        let mut stats = Stats::new();
        stats.add_relation([x, y], rel.len());
        prop_assert!(
            tree_cost(&tree, &stats) + 1e-6 >= rep.singleton_count() as f64,
            "bound {} < actual {}",
            tree_cost(&tree, &stats),
            rep.singleton_count()
        );
    }
}

#[test]
fn empty_database_everywhere() {
    let mut pair = chain_db(&[], &[], &[]);
    for sql in corpus() {
        let out = pair.assert_all_agree(sql);
        assert!(out.is_empty(), "`{sql}` on empty inputs");
    }
}

#[test]
fn single_tuple_database() {
    let mut pair = chain_db(&[(1, 1)], &[(1, 1)], &[(1, 1)]);
    for sql in corpus() {
        pair.assert_all_agree(sql);
    }
}

#[test]
fn skewed_database_one_hot_key() {
    // One b-value joins everything: stresses the swap regrouping and the
    // count multiplication paths.
    let r: Vec<(i64, i64)> = (0..10).map(|i| (i, 0)).collect();
    let s: Vec<(i64, i64)> = (0..10).map(|j| (0, j)).collect();
    let t: Vec<(i64, i64)> = (0..4).map(|k| (k, k)).collect();
    let mut pair = chain_db(&r, &s, &t);
    for sql in corpus() {
        pair.assert_all_agree(sql);
    }
}

#[test]
fn thread_sweep_on_larger_skewed_database() {
    // A bigger, heavily skewed database run directly against the engine
    // (not only through `assert_all_agree`): the parallel runs must match
    // the serial run for the whole corpus, including the exact order of
    // ordered results.
    use fdb::core::engine::RunOptions;
    let r: Vec<(i64, i64)> = (0..120).map(|i| (i % 13, i % 4)).collect();
    let s: Vec<(i64, i64)> = (0..150).map(|j| (j % 4, j % 17)).collect();
    let t: Vec<(i64, i64)> = (0..80).map(|k| (k % 17, k % 9)).collect();
    let mut pair = chain_db(&r, &s, &t);
    for sql in corpus() {
        let schemas = pair.fdb.schemas();
        let query = fdb::parse(sql, &mut pair.fdb.catalog, &schemas).unwrap();
        let task = query.to_task();
        let serial = pair
            .fdb
            .run(&task, RunOptions::default())
            .unwrap()
            .to_relation()
            .unwrap();
        for threads in common::thread_sweep() {
            if threads == 1 {
                continue;
            }
            let par = pair
                .fdb
                .run(&task, RunOptions::with_threads(threads))
                .unwrap()
                .to_relation()
                .unwrap();
            // Exact equality, not just canonical: parallelism must not
            // perturb enumeration or sort order.
            assert_eq!(par, serial, "`{sql}` threads={threads}");
        }
    }
}

#[test]
fn dangling_tuples_database() {
    // Join keys that never match: plenty of pruning.
    let r = vec![(1, 1), (2, 2), (3, 9)];
    let s = vec![(1, 5), (2, 5), (7, 5)];
    let t = vec![(5, 0), (6, 1)];
    let mut pair = chain_db(&r, &s, &t);
    for sql in corpus() {
        pair.assert_all_agree(sql);
    }
}
