//! Staged pipeline execution of f-plans.
//!
//! The legacy executor applies an f-plan one operator at a time, and
//! with the arena storage of [`crate::frep`] every operator is a full
//! arena→arena copy transform: a k-operator plan materialises k
//! complete intermediate representations, most of which is redundant
//! deep-copying of untouched subtrees. The paper's cost model (§5.1)
//! prices a plan by the representations it *produces*, not by how
//! often an engine recopies them — this module closes that gap.
//!
//! ## Pipeline IR
//!
//! [`segment`] splits a plan into [`Stage`]s:
//!
//! * a **fused** stage is a maximal run of operators that only rewrite
//!   along a root path (`SelectConst`, `Merge`, `Absorb`,
//!   `ProjectAway`, `Aggregate`, `Rename`);
//! * a **restructure** stage is a single `Swap` — the operator that
//!   rebuilds whole levels and therefore bounds fusion (the `product`
//!   splice happens before plan execution and is already a single
//!   table append).
//!
//! ## Execution
//!
//! [`execute_staged`] runs every operator **in place** on one shared
//! arena: each rewrite appends only its rewritten fragment and shares
//! untouched subtrees by id (see `ops::rewrite_at_inplace`),
//! so no operator materialises the representation. Within a fused
//! stage, runs of consecutive constant selections additionally compile
//! into a single composed filter walk
//! (`select::apply_filters_inplace`) — one arena pass no
//! matter how many predicates the stage carries. Superseded records
//! accumulate as unreachable garbage; at most one sharing-preserving
//! compaction pass per plan ([`crate::frep::FRep::compact`]) sheds
//! them at the end, and it only runs when dead records outnumber live
//! ones — an empty plan is a pure pass-through, and short plans whose
//! result is still mostly the input (a selection keeping most entries,
//! a rename) return the in-place arena directly, with no full copy
//! anywhere.
//!
//! Parallelism applies per stage: aggregation operators inside a fused
//! stage fan their per-group evaluations out to the `fdb-exec` pool
//! exactly as in the legacy path, so results are bit-identical for
//! every thread count *and* to the legacy executor — the differential
//! property `tests/pipeline_fused.rs` and the oracle suite pin.

use crate::error::Result;
use crate::frep::FRep;
use crate::ops;
use crate::plan::{apply_with, FOp, FPlan};
use fdb_relational::Catalog;
use std::fmt::Write as _;
use std::ops::Range;

/// What a stage does to the f-tree.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StageKind {
    /// Root-path rewrites only; executed as composed in-place rewrites.
    Fused,
    /// A single `Swap` — rebuilds levels, bounds fusion.
    Restructure,
}

/// One stage: a range of operator indices into [`FPlan::ops`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Stage {
    pub ops: Range<usize>,
    pub kind: StageKind,
}

impl Stage {
    /// Number of operators in the stage.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// True for operators that only rewrite along a root path and
/// therefore fuse into a stage.
fn fusible(op: &FOp) -> bool {
    !matches!(op, FOp::Swap { .. })
}

/// Segments a plan into fusible stages with `Swap` boundaries.
pub fn segment(plan: &FPlan) -> Vec<Stage> {
    let mut out = Vec::new();
    let mut run_start: Option<usize> = None;
    for (i, op) in plan.ops.iter().enumerate() {
        if fusible(op) {
            run_start.get_or_insert(i);
        } else {
            if let Some(s) = run_start.take() {
                out.push(Stage {
                    ops: s..i,
                    kind: StageKind::Fused,
                });
            }
            out.push(Stage {
                ops: i..i + 1,
                kind: StageKind::Restructure,
            });
        }
    }
    if let Some(s) = run_start {
        out.push(Stage {
            ops: s..plan.len(),
            kind: StageKind::Fused,
        });
    }
    out
}

/// One line summarising the stage grouping, e.g.
/// `1-3 fused | 4 restructure | 5-6 fused`.
pub fn render_stages(stages: &[Stage]) -> String {
    let mut out = String::new();
    for (i, s) in stages.iter().enumerate() {
        if i > 0 {
            out.push_str(" | ");
        }
        if s.len() == 1 {
            let _ = write!(out, "{}", s.ops.start + 1);
        } else {
            let _ = write!(out, "{}-{}", s.ops.start + 1, s.ops.end);
        }
        match s.kind {
            StageKind::Fused => out.push_str(" fused"),
            StageKind::Restructure => out.push_str(" restructure"),
        }
    }
    out
}

/// Per-stage rendering of a plan: the operator list annotated with the
/// stage each operator belongs to (used by `explain` and the plan
/// explorer example).
pub fn display_staged(plan: &FPlan, catalog: &Catalog) -> String {
    let stages = segment(plan);
    let mut out = String::new();
    let _ = writeln!(out, "stages: {}", render_stages(&stages));
    let ops_text = plan.display(catalog);
    for (i, line) in ops_text.lines().enumerate() {
        let stage = stages.iter().position(|s| s.ops.contains(&i));
        match stage {
            Some(si) => {
                let _ = writeln!(out, "  [stage {}] {}", si + 1, line.trim_start());
            }
            None => {
                let _ = writeln!(out, "  {line}");
            }
        }
    }
    out
}

/// Execution report of one plan run (see [`execute_staged`] /
/// [`execute_per_op`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Operators executed.
    pub operators: usize,
    /// Stages (for the per-operator executor: one stage per operator).
    pub stages: usize,
    /// Bytes of intermediate representation data allocated over the
    /// plan run (size-based, no allocator slack — [`FRep::data_bytes`]).
    /// The legacy executor materialises one full arena per operator, so
    /// it accumulates the size of every intermediate; the staged
    /// executor accumulates only its in-place appends plus the final
    /// compaction copy. `0` for an empty plan (no intermediates exist)
    /// and for pure tree edits (`Rename`, label-shrink projection).
    pub intermediate_bytes: usize,
    /// Untouched fragments shared by id instead of deep-copied.
    pub copies_avoided: u64,
    /// Whether the final per-plan compaction pass ran.
    pub compacted: bool,
}

/// Applies one operator via its in-place rewrite.
pub fn apply_inplace_with(rep: FRep, op: &FOp, threads: usize) -> Result<FRep> {
    match op {
        FOp::SelectConst { attr, op, value } => ops::select_const_inplace(rep, *attr, *op, value),
        FOp::Merge { a, b } => ops::merge_inplace(rep, *a, *b),
        FOp::Absorb { anc, desc } => ops::absorb_inplace(rep, *anc, *desc),
        FOp::Swap { parent, child } => ops::swap_inplace(rep, *parent, *child),
        FOp::Aggregate {
            parent,
            targets,
            funcs,
            outputs,
        } => ops::aggregate_par_inplace(
            rep,
            &ops::AggTarget {
                parent: *parent,
                nodes: targets.clone(),
            },
            funcs.clone(),
            outputs.clone(),
            threads,
        ),
        FOp::ProjectAway { attr } => ops::project_away_inplace(rep, *attr),
        FOp::Rename { from, to } => ops::rename(rep, *from, *to),
    }
}

/// Executes a plan through the staged pipeline: one shared arena, every
/// operator in place, consecutive selections fused into one walk, one
/// compaction pass at the end (skipped for zero/one-stage plans).
pub fn execute_staged(plan: &FPlan, rep: FRep, threads: usize) -> Result<(FRep, ExecStats)> {
    let stages = segment(plan);
    let mut stats = ExecStats {
        operators: plan.len(),
        stages: stages.len(),
        ..ExecStats::default()
    };
    if stages.is_empty() {
        // Zero-stage pass-through: not even a byte is appended.
        return Ok((rep, stats));
    }
    let counter_base = rep.stats_counter_base();
    let mut rep = rep;
    let mut bytes_before = rep.data_bytes();
    for stage in &stages {
        match stage.kind {
            StageKind::Restructure => {
                rep = apply_inplace_with(rep, &plan.ops[stage.ops.start], threads)?;
            }
            StageKind::Fused => {
                let mut i = stage.ops.start;
                while i < stage.ops.end {
                    // Fuse a maximal run of constant selections into one
                    // walk (a run of one is just `select_const_inplace`).
                    let mut filters: Vec<_> = Vec::new();
                    while i < stage.ops.end {
                        let FOp::SelectConst { attr, op, value } = &plan.ops[i] else {
                            break;
                        };
                        filters.push((*attr, *op, value.clone()));
                        i += 1;
                    }
                    if !filters.is_empty() {
                        rep = ops::select::apply_filters_inplace(rep, &filters)?;
                    } else {
                        rep = apply_inplace_with(rep, &plan.ops[i], threads)?;
                        i += 1;
                    }
                }
            }
        }
        // Intermediate allocation of the stage: what the in-place
        // rewrites appended (the arena only grows within a stage; the
        // rare root-level-aggregate-of-empty shortcut replaces the
        // arena by a smaller one, hence the saturation).
        let bytes_after = rep.data_bytes();
        stats.intermediate_bytes += bytes_after.saturating_sub(bytes_before);
        bytes_before = bytes_after;
    }
    if rep.garbage_dominated() {
        // The one full arena pass of the plan: shed the superseded
        // fragments while preserving sharing. Plans whose arena is
        // still mostly live data (short plans, selections that keep
        // most entries, pure tree edits) skip it — no copy at all —
        // since the garbage they carry is smaller than the copy would
        // be.
        rep = rep.compact();
        stats.compacted = true;
        stats.intermediate_bytes += rep.data_bytes();
    }
    stats.copies_avoided = rep.stats_counter_base().saturating_sub(counter_base);
    Ok((rep, stats))
}

/// Executes a plan operator by operator through the legacy copy
/// transforms — the reference path the differential suites compare
/// against, and the `per-op` arm of the ablation benchmark.
pub fn execute_per_op(plan: &FPlan, rep: FRep, threads: usize) -> Result<(FRep, ExecStats)> {
    let mut stats = ExecStats {
        operators: plan.len(),
        stages: plan.len(),
        ..ExecStats::default()
    };
    let mut rep = rep;
    for op in &plan.ops {
        // Pure tree edits materialise nothing; every other legacy
        // operator produces a complete fresh arena.
        let tree_only =
            match op {
                FOp::Rename { .. } => true,
                FOp::ProjectAway { attr } => rep.ftree().node_of_attr(*attr).is_some_and(|n| {
                    match &rep.ftree().node(n).label {
                        crate::ftree::NodeLabel::Atomic(attrs) => attrs.len() > 1,
                        crate::ftree::NodeLabel::Agg(_) => false,
                    }
                }),
                _ => false,
            };
        rep = apply_with(rep, op, threads)?;
        if !tree_only {
            stats.intermediate_bytes += rep.data_bytes();
        }
    }
    Ok((rep, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ftree::{AggOp, FTree};
    use fdb_relational::{Catalog, CmpOp, Relation, Schema, Value};

    fn rep_abc() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let x = c.intern("x");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b, x]),
            (0..24).map(|i| {
                vec![
                    Value::Int(i % 4),
                    Value::Int((i * 7) % 5),
                    Value::Int(i % 3),
                ]
            }),
        )
        .canonical();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b, x])).unwrap();
        (c, rep)
    }

    fn sample_plan(c: &mut Catalog, rep: &FRep) -> FPlan {
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let na = rep.ftree().node_of_attr(a).unwrap();
        let nb = rep.ftree().node_of_attr(b).unwrap();
        let out = c.intern("n");
        let mut plan = FPlan::new();
        plan.push(FOp::SelectConst {
            attr: a,
            op: CmpOp::Le,
            value: Value::Int(2),
        });
        plan.push(FOp::SelectConst {
            attr: b,
            op: CmpOp::Ne,
            value: Value::Int(1),
        });
        plan.push(FOp::Swap {
            parent: na,
            child: nb,
        });
        plan.push(FOp::Aggregate {
            parent: Some(nb),
            targets: vec![na],
            funcs: vec![AggOp::Count],
            outputs: vec![out],
        });
        plan
    }

    #[test]
    fn segmentation_groups_runs_and_boundaries() {
        let (mut c, rep) = rep_abc();
        let plan = sample_plan(&mut c, &rep);
        let stages = segment(&plan);
        assert_eq!(stages.len(), 3);
        assert_eq!(
            stages[0],
            Stage {
                ops: 0..2,
                kind: StageKind::Fused
            }
        );
        assert_eq!(
            stages[1],
            Stage {
                ops: 2..3,
                kind: StageKind::Restructure
            }
        );
        assert_eq!(
            stages[2],
            Stage {
                ops: 3..4,
                kind: StageKind::Fused
            }
        );
        assert_eq!(
            render_stages(&stages),
            "1-2 fused | 3 restructure | 4 fused"
        );
        let text = display_staged(&plan, &c);
        assert!(text.contains("stages: 1-2 fused"), "{text}");
        assert!(text.contains("[stage 2]"), "{text}");
    }

    #[test]
    fn staged_matches_per_op_and_compacts() {
        let (mut c, rep) = rep_abc();
        let plan = sample_plan(&mut c, &rep);
        let (legacy, legacy_stats) = execute_per_op(&plan, rep.clone(), 1).unwrap();
        for threads in [1, 2, 4] {
            let (fused, stats) = execute_staged(&plan, rep.clone(), threads).unwrap();
            assert!(fused.same_data(&legacy), "threads={threads}");
            assert_eq!(
                fused.ftree().canonical_key(),
                legacy.ftree().canonical_key()
            );
            assert!(stats.compacted);
            assert!(stats.copies_avoided > 0);
            assert!(
                stats.intermediate_bytes < legacy_stats.intermediate_bytes,
                "staged {} >= per-op {}",
                stats.intermediate_bytes,
                legacy_stats.intermediate_bytes
            );
        }
    }

    #[test]
    fn empty_plan_is_a_pass_through() {
        let (_, rep) = rep_abc();
        let before = rep.stats();
        let (out, stats) = execute_staged(&FPlan::new(), rep, 1).unwrap();
        assert_eq!(stats, ExecStats::default());
        assert_eq!(out.stats(), before); // no appends, no compaction
    }

    #[test]
    fn single_stage_plan_skips_compaction() {
        let (c, rep) = rep_abc();
        let a = c.lookup("a").unwrap();
        let mut plan = FPlan::new();
        plan.push(FOp::SelectConst {
            attr: a,
            op: CmpOp::Lt,
            value: Value::Int(3),
        });
        let (out, stats) = execute_staged(&plan, rep.clone(), 1).unwrap();
        assert!(!stats.compacted);
        let (legacy, _) = execute_per_op(&plan, rep, 1).unwrap();
        assert!(out.same_data(&legacy));
    }

    #[test]
    fn fused_filter_run_matches_sequential_selects() {
        let (c, rep) = rep_abc();
        let a = c.lookup("a").unwrap();
        let x = c.lookup("x").unwrap();
        let mut plan = FPlan::new();
        for (attr, op, v) in [(a, CmpOp::Ge, 1), (x, CmpOp::Ne, 0), (a, CmpOp::Le, 2)] {
            plan.push(FOp::SelectConst {
                attr,
                op,
                value: Value::Int(v),
            });
        }
        let (fused, _) = execute_staged(&plan, rep.clone(), 1).unwrap();
        let (legacy, _) = execute_per_op(&plan, rep, 1).unwrap();
        assert!(fused.same_data(&legacy));
        assert_eq!(fused.flatten().canonical(), legacy.flatten().canonical());
    }
}
