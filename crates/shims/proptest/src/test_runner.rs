//! The case runner: configuration, per-case RNG, and failure reporting.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Mirror of `proptest::test_runner::Config` (the fields this workspace
/// sets; the rest exist so `..Config::default()` keeps working if more
/// are added upstream-style).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on rejected (filtered-out) cases before giving up.
    pub max_global_rejects: u32,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property does not hold.
    Fail(String),
    /// The inputs were rejected (e.g. by `prop_assume!`); try another case.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }

    pub fn reject(message: impl Into<String>) -> Self {
        TestCaseError::Reject(message.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// The RNG handed to strategies. Deterministic per (test name, case).
#[derive(Clone, Debug)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    fn for_case(test_name: &str, case: u64) -> Self {
        let mut hasher = DefaultHasher::new();
        test_name.hash(&mut hasher);
        let seed = hasher.finish() ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TestRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Explicit reconstruction, for replaying a reported failure.
    pub fn replay(test_name: &str, case: u64) -> Self {
        TestRng::for_case(test_name, case)
    }
}

impl rand::RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Drives `config.cases` generated cases through a property closure.
#[derive(Debug)]
pub struct TestRunner {
    config: Config,
    name: String,
}

impl TestRunner {
    pub fn new(config: Config, name: &str) -> Self {
        TestRunner {
            config,
            name: name.to_string(),
        }
    }

    /// Runs the property; panics (test failure) on the first failing case.
    pub fn run_cases(
        &mut self,
        mut property: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        let mut passed = 0u32;
        let mut rejected = 0u32;
        let mut case = 0u64;
        while passed < self.config.cases {
            let mut rng = TestRng::for_case(&self.name, case);
            match property(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    assert!(
                        rejected <= self.config.max_global_rejects,
                        "proptest shim: too many rejected cases in `{}`",
                        self.name
                    );
                }
                Err(TestCaseError::Fail(message)) => panic!(
                    "proptest shim: property `{}` failed at case {case}\n\
                     (replay with TestRng::replay({:?}, {case}))\n{message}",
                    self.name, self.name
                ),
            }
            case += 1;
        }
    }
}
