//! Recursive-descent parser for the SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! query     := SELECT [DISTINCT] items FROM tables
//!              [WHERE conj] [GROUP BY grouping] [HAVING conj]
//!              [ORDER BY keys] [LIMIT int] [OFFSET int] [';']
//!              -- LIMIT and OFFSET may appear in either order,
//!              -- and each may appear alone (PostgreSQL semantics)
//! items     := '*' | item (',' item)*
//! item      := agg [AS ident] | ident
//! agg       := (SUM|MIN|MAX|AVG|PRODUCT) '(' ident ')'
//!            | COUNT '(' ('*' | [DISTINCT] ident) ')'
//!            | (EXISTS|FORALL) '(' ident cmp int ')'
//!            | TOP_K '(' ident ',' int ')'
//! grouping  := attrs
//!            | (ROLLUP|CUBE) '(' attrs ')'
//!            | GROUPING SETS '(' set (',' set)* ')'
//! set       := '(' [attrs] ')'
//! tables    := ident ((',' | NATURAL JOIN) ident)*
//! conj      := cond (AND cond)*
//! cond      := operand cmp operand        -- at least one side an attribute
//! keys      := ident [ASC|DESC] (',' ident [ASC|DESC])*
//! ```
//!
//! A bare `SELECT DISTINCT` is a no-op on select-project-join queries (the
//! engine's projection already deduplicates) but is rejected on aggregate
//! queries, where silently ignoring it would change results.
//!
//! Attribute names are resolved against the natural join of the `FROM`
//! schemas and interned into the shared catalog; the result is a fully
//! resolved [`Query`].

use crate::ast::{DeleteStmt, InsertStmt, Query, SelectItem, Statement};
use crate::error::QueryError;
use crate::lexer::{lex, Sym, Token};
use fdb_relational::{
    AggFunc, AggSpec, AttrId, Catalog, CmpOp, Predicate, Schema, SortDir, SortKey, Value,
};
use std::collections::HashMap;

/// Parses `sql` against the registered `schemas`, interning names into
/// `catalog`.
pub fn parse(
    sql: &str,
    catalog: &mut Catalog,
    schemas: &HashMap<String, Schema>,
) -> Result<Query, QueryError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        schemas,
    };
    let q = p.query()?;
    p.finish()?;
    validate(&q, p.catalog)?;
    Ok(q)
}

/// Parses one statement — a `SELECT` query or an `INSERT`/`DELETE`
/// write — against the registered `schemas`. Grammar of the writes:
///
/// ```text
/// insert  := INSERT INTO ident ['(' ident (',' ident)* ')']
///            VALUES tuple (',' tuple)* [';']
/// tuple   := '(' literal (',' literal)* ')'
/// literal := int | float | string | NULL
/// delete  := DELETE FROM ident [WHERE conj] [';']
/// ```
///
/// `INSERT` tuples are validated against the target schema (explicit
/// column lists must cover it exactly) and reordered into schema order;
/// `DELETE` predicates resolve against the target table's schema alone.
pub fn parse_statement(
    sql: &str,
    catalog: &mut Catalog,
    schemas: &HashMap<String, Schema>,
) -> Result<Statement, QueryError> {
    let tokens = lex(sql)?;
    let mut p = Parser {
        tokens,
        pos: 0,
        catalog,
        schemas,
    };
    let stmt = match p.peek() {
        Some(Token::Keyword(k)) if k == "INSERT" => Statement::Insert(p.insert_stmt()?),
        Some(Token::Keyword(k)) if k == "DELETE" => Statement::Delete(p.delete_stmt()?),
        _ => {
            let q = p.query()?;
            p.finish()?;
            validate(&q, p.catalog)?;
            return Ok(Statement::Select(q));
        }
    };
    p.finish()?;
    Ok(stmt)
}

struct Parser<'a> {
    tokens: Vec<Token>,
    pos: usize,
    catalog: &'a mut Catalog,
    schemas: &'a HashMap<String, Schema>,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), Some(Token::Keyword(k)) if k == kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, sym: Sym) -> bool {
        if matches!(self.peek(), Some(Token::Symbol(s)) if *s == sym) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), QueryError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(QueryError::parse(
                self.pos,
                format!("expected `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_symbol(&mut self, sym: Sym, what: &str) -> Result<(), QueryError> {
        if self.eat_symbol(sym) {
            Ok(())
        } else {
            Err(QueryError::parse(
                self.pos,
                format!("expected {what}, found {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self, what: &str) -> Result<String, QueryError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected {what}, found {other:?}"),
            )),
        }
    }

    fn finish(&mut self) -> Result<(), QueryError> {
        let _ = self.eat_symbol(Sym::Semicolon);
        if let Some(t) = self.peek() {
            return Err(QueryError::parse(
                self.pos,
                format!("trailing input starting at {t:?}"),
            ));
        }
        Ok(())
    }

    fn query(&mut self) -> Result<Query, QueryError> {
        self.expect_keyword("SELECT")?;
        let distinct = self.eat_keyword("DISTINCT");

        // Select items are parsed unresolved first: resolution needs the
        // FROM schemas, which come later in the text.
        let raw_items = self.raw_select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.tables()?;
        let joined = self.joined_schema(&from)?;

        let select = self.resolve_items(raw_items, &joined)?;
        if distinct && select.iter().any(|i| matches!(i, SelectItem::Agg(_))) {
            // SPJ projection is set-semantics already, so DISTINCT is only a
            // no-op there. With aggregates it would have to deduplicate
            // *inputs*, which the engines do not do — swallowing it silently
            // returns bag-semantics COUNT/SUM/AVG for a set-semantics query.
            return Err(QueryError::Invalid(
                "SELECT DISTINCT cannot be combined with aggregates; \
                 use COUNT(DISTINCT attr) for distinct counting"
                    .into(),
            ));
        }

        let mut predicates = Vec::new();
        if self.eat_keyword("WHERE") {
            predicates = self.conjunction(&joined)?;
        }
        let mut group_by = Vec::new();
        let mut grouping_sets: Vec<Vec<AttrId>> = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            if self.eat_keyword("ROLLUP") {
                let attrs = self.paren_attr_list(&joined, false)?;
                // ROLLUP(a, b) = GROUPING SETS ((a, b), (a), ()).
                grouping_sets = (0..=attrs.len())
                    .rev()
                    .map(|n| attrs[..n].to_vec())
                    .collect();
                group_by = attrs;
            } else if self.eat_keyword("CUBE") {
                let attrs = self.paren_attr_list(&joined, false)?;
                if attrs.len() > 10 {
                    return Err(QueryError::Invalid(
                        "CUBE over more than 10 attributes (2^n grouping sets)".into(),
                    ));
                }
                // CUBE(a, b) = all subsets, from the full set down to ().
                let n = attrs.len();
                grouping_sets = (0..1usize << n)
                    .rev()
                    .map(|mask| {
                        attrs
                            .iter()
                            .enumerate()
                            .filter(|(i, _)| mask & (1 << (n - 1 - i)) != 0)
                            .map(|(_, &a)| a)
                            .collect()
                    })
                    .collect();
                group_by = attrs;
            } else if self.eat_keyword("GROUPING") {
                self.expect_keyword("SETS")?;
                self.expect_symbol(Sym::LParen, "`(`")?;
                loop {
                    let set = self.paren_attr_list(&joined, true)?;
                    for &a in &set {
                        if !group_by.contains(&a) {
                            group_by.push(a);
                        }
                    }
                    grouping_sets.push(set);
                    if !self.eat_symbol(Sym::Comma) {
                        break;
                    }
                }
                self.expect_symbol(Sym::RParen, "`)`")?;
            } else {
                loop {
                    let name = self.ident("group-by attribute")?;
                    group_by.push(self.resolve_attr(&name, &joined)?);
                    if !self.eat_symbol(Sym::Comma) {
                        break;
                    }
                }
            }
        }
        let mut having = Vec::new();
        if self.eat_keyword("HAVING") {
            // HAVING conditions range over the *output* schema: group-by
            // attributes and aggregate aliases. Inline aggregate syntax is
            // allowed when an identical aggregate appears in SELECT (the
            // paper adds having-aggregates to the aggregation operator;
            // here they must be listed, which keeps outputs explicit).
            having = self.having_conjunction(&select, &joined)?;
        }
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let name = self.ident("order-by attribute")?;
                let attr = self.resolve_output(&name, &select, &joined)?;
                let dir = if self.eat_keyword("DESC") {
                    SortDir::Desc
                } else {
                    let _ = self.eat_keyword("ASC");
                    SortDir::Asc
                };
                order_by.push(SortKey { attr, dir });
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = 0;
        let (mut saw_limit, mut saw_offset) = (false, false);
        loop {
            if !saw_limit && self.eat_keyword("LIMIT") {
                saw_limit = true;
                limit = Some(self.clause_count("LIMIT")?);
            } else if !saw_offset && self.eat_keyword("OFFSET") {
                saw_offset = true;
                offset = self.clause_count("OFFSET")?;
            } else {
                break;
            }
        }
        Ok(Query {
            select,
            from,
            predicates,
            group_by,
            grouping_sets,
            having,
            order_by,
            limit,
            offset,
        })
    }

    /// Parses the row-count operand of `LIMIT`/`OFFSET`: a single
    /// non-negative integer literal. Negative and non-integer literals
    /// get a clause-specific message instead of a generic parse failure.
    fn clause_count(&mut self, clause: &str) -> Result<usize, QueryError> {
        match self.next() {
            Some(Token::Int(n)) if n >= 0 => Ok(n as usize),
            other => Err(QueryError::parse(
                self.pos,
                format!("{clause} expects a non-negative integer, found {other:?}"),
            )),
        }
    }

    /// Parses a parenthesised attribute list; `allow_empty` permits `()`
    /// (the grand-total grouping set).
    fn paren_attr_list(
        &mut self,
        joined: &Schema,
        allow_empty: bool,
    ) -> Result<Vec<AttrId>, QueryError> {
        self.expect_symbol(Sym::LParen, "`(`")?;
        let mut attrs = Vec::new();
        if allow_empty && self.eat_symbol(Sym::RParen) {
            return Ok(attrs);
        }
        loop {
            let name = self.ident("grouping attribute")?;
            attrs.push(self.resolve_attr(&name, joined)?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        self.expect_symbol(Sym::RParen, "`)`")?;
        Ok(attrs)
    }

    fn raw_select_items(&mut self) -> Result<RawItems, QueryError> {
        if self.eat_symbol(Sym::Star) {
            return Ok(RawItems::Star);
        }
        let mut items = Vec::new();
        loop {
            items.push(self.raw_item()?);
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(RawItems::List(items))
    }

    fn raw_item(&mut self) -> Result<RawItem, QueryError> {
        if let Some(Token::Keyword(k)) = self.peek() {
            if let Some(kind) = AggKind::from_keyword(k) {
                self.pos += 1;
                let arg = self.agg_args(kind)?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident("alias")?)
                } else {
                    None
                };
                return Ok(RawItem::Agg { kind, arg, alias });
            }
        }
        let name = self.ident("select item")?;
        Ok(RawItem::Attr(name))
    }

    /// Parses the parenthesised argument list of an aggregate call. Each
    /// kind owns its shape: `COUNT(*|[DISTINCT] a)`, `EXISTS/FORALL(a θ c)`,
    /// `TOP_K(a, k)`, everything else `F(a)`.
    fn agg_args(&mut self, kind: AggKind) -> Result<RawAgg, QueryError> {
        self.expect_symbol(Sym::LParen, "`(`")?;
        let arg = match kind {
            AggKind::Count => {
                if self.eat_symbol(Sym::Star) {
                    RawAgg::Star
                } else if self.eat_keyword("DISTINCT") {
                    RawAgg::Distinct(self.ident("aggregated attribute")?)
                } else {
                    RawAgg::Attr(self.ident("aggregated attribute")?)
                }
            }
            AggKind::Exists | AggKind::Forall => {
                let attr = self.ident("predicate attribute")?;
                let op = self.cmp_op()?;
                let rhs = match self.next() {
                    Some(Token::Int(n)) => n,
                    other => {
                        return Err(QueryError::parse(
                            self.pos,
                            format!("EXISTS/FORALL expect an integer constant, found {other:?}"),
                        ))
                    }
                };
                RawAgg::Pred(attr, op, rhs)
            }
            AggKind::TopK => {
                let attr = self.ident("aggregated attribute")?;
                self.expect_symbol(Sym::Comma, "`,`")?;
                let k = match self.next() {
                    Some(Token::Int(n)) if n >= 1 => n as usize,
                    other => {
                        return Err(QueryError::parse(
                            self.pos,
                            format!("TOP_K expects a positive integer k, found {other:?}"),
                        ))
                    }
                };
                RawAgg::TopK(attr, k)
            }
            _ => RawAgg::Attr(self.ident("aggregated attribute")?),
        };
        self.expect_symbol(Sym::RParen, "`)`")?;
        Ok(arg)
    }

    /// Lowers a parsed aggregate call to an [`AggFunc`], resolving its
    /// attribute. With `joined` the attribute must be in the FROM schema
    /// (SELECT position); without, catalog existence suffices (HAVING, where
    /// a match against SELECT is enforced by the caller).
    fn raw_agg_func(
        &mut self,
        kind: AggKind,
        arg: RawAgg,
        joined: Option<&Schema>,
    ) -> Result<AggFunc, QueryError> {
        let resolve = |p: &mut Self, name: &str| -> Result<AttrId, QueryError> {
            match joined {
                Some(j) => p.resolve_attr(name, j),
                None => p
                    .catalog
                    .lookup(name)
                    .ok_or_else(|| QueryError::Unresolved(format!("attribute `{name}`"))),
            }
        };
        Ok(match (kind, arg) {
            (AggKind::Count, RawAgg::Star) => AggFunc::Count,
            // COUNT(a): no NULLs in stored relations, so it equals COUNT(*)
            // (documented deviation).
            (AggKind::Count, RawAgg::Attr(name)) => {
                let _ = resolve(self, &name)?;
                AggFunc::Count
            }
            (AggKind::Count, RawAgg::Distinct(name)) => {
                AggFunc::CountDistinct(resolve(self, &name)?)
            }
            (AggKind::Sum, RawAgg::Attr(name)) => AggFunc::Sum(resolve(self, &name)?),
            (AggKind::Min, RawAgg::Attr(name)) => AggFunc::Min(resolve(self, &name)?),
            (AggKind::Max, RawAgg::Attr(name)) => AggFunc::Max(resolve(self, &name)?),
            (AggKind::Avg, RawAgg::Attr(name)) => AggFunc::Avg(resolve(self, &name)?),
            (AggKind::Product, RawAgg::Attr(name)) => AggFunc::Product(resolve(self, &name)?),
            (AggKind::Exists, RawAgg::Pred(name, op, rhs)) => {
                AggFunc::Exists(resolve(self, &name)?, op, rhs)
            }
            (AggKind::Forall, RawAgg::Pred(name, op, rhs)) => {
                AggFunc::Forall(resolve(self, &name)?, op, rhs)
            }
            (AggKind::TopK, RawAgg::TopK(name, k)) => AggFunc::TopK(resolve(self, &name)?, k),
            // agg_args only produces shapes matching the kind.
            _ => unreachable!("aggregate argument shape does not match its kind"),
        })
    }

    fn tables(&mut self) -> Result<Vec<String>, QueryError> {
        let mut tables = vec![self.ident("relation name")?];
        loop {
            if self.eat_symbol(Sym::Comma) {
                tables.push(self.ident("relation name")?);
            } else if self.eat_keyword("NATURAL") {
                self.expect_keyword("JOIN")?;
                tables.push(self.ident("relation name")?);
            } else {
                break;
            }
        }
        Ok(tables)
    }

    /// `INSERT INTO r ['(' cols ')'] VALUES (…), …` — tuples come back
    /// reordered into `r`'s schema order.
    fn insert_stmt(&mut self) -> Result<InsertStmt, QueryError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident("table name")?;
        let schema = self
            .schemas
            .get(&table)
            .ok_or_else(|| QueryError::Unresolved(format!("relation `{table}`")))?
            .clone();
        // Optional explicit column list: a permutation covering the
        // schema exactly (no defaults, so partial lists are rejected).
        let perm: Option<Vec<usize>> = if self.eat_symbol(Sym::LParen) {
            let mut positions = Vec::new();
            loop {
                let name = self.ident("column name")?;
                let pos = self
                    .catalog
                    .lookup(&name)
                    .and_then(|id| schema.position(id))
                    .ok_or_else(|| {
                        QueryError::Unresolved(format!("column `{name}` of relation `{table}`"))
                    })?;
                if positions.contains(&pos) {
                    return Err(QueryError::Invalid(format!(
                        "column `{name}` listed twice in INSERT"
                    )));
                }
                positions.push(pos);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen, "`)`")?;
            if positions.len() != schema.arity() {
                return Err(QueryError::Invalid(format!(
                    "INSERT column list covers {} of `{table}`'s {} columns \
                     (partial inserts are not supported)",
                    positions.len(),
                    schema.arity()
                )));
            }
            Some(positions)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol(Sym::LParen, "`(`")?;
            let mut tuple = Vec::new();
            loop {
                tuple.push(self.literal()?);
                if !self.eat_symbol(Sym::Comma) {
                    break;
                }
            }
            self.expect_symbol(Sym::RParen, "`)`")?;
            if tuple.len() != schema.arity() {
                return Err(QueryError::Invalid(format!(
                    "VALUES tuple has {} values, `{table}` has {} columns",
                    tuple.len(),
                    schema.arity()
                )));
            }
            if let Some(perm) = &perm {
                let mut ordered = vec![Value::Null; tuple.len()];
                for (v, &pos) in tuple.into_iter().zip(perm) {
                    ordered[pos] = v;
                }
                rows.push(ordered);
            } else {
                rows.push(tuple);
            }
            if !self.eat_symbol(Sym::Comma) {
                break;
            }
        }
        Ok(InsertStmt { table, rows })
    }

    /// `DELETE FROM r [WHERE conj]`.
    fn delete_stmt(&mut self) -> Result<DeleteStmt, QueryError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident("table name")?;
        let schema = self
            .schemas
            .get(&table)
            .ok_or_else(|| QueryError::Unresolved(format!("relation `{table}`")))?
            .clone();
        let predicates = if self.eat_keyword("WHERE") {
            self.conjunction(&schema)?
        } else {
            Vec::new()
        };
        Ok(DeleteStmt { table, predicates })
    }

    /// One `VALUES` literal: int, float, string or NULL.
    fn literal(&mut self) -> Result<Value, QueryError> {
        match self.next() {
            Some(Token::Int(n)) => Ok(Value::Int(n)),
            Some(Token::Float(f)) => Ok(Value::Float(f)),
            Some(Token::Str(s)) => Ok(Value::str(&s)),
            Some(Token::Keyword(k)) if k == "NULL" => Ok(Value::Null),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected a literal value, found {other:?}"),
            )),
        }
    }

    /// Natural-join output schema of the FROM list: attributes of the first
    /// input followed by the new attributes of each subsequent input.
    fn joined_schema(&mut self, from: &[String]) -> Result<Schema, QueryError> {
        let mut attrs: Vec<AttrId> = Vec::new();
        for name in from {
            let schema = self
                .schemas
                .get(name)
                .ok_or_else(|| QueryError::Unresolved(format!("relation `{name}`")))?;
            for &a in schema.attrs() {
                if !attrs.contains(&a) {
                    attrs.push(a);
                }
            }
        }
        Ok(Schema::new(attrs))
    }

    fn resolve_attr(&mut self, name: &str, joined: &Schema) -> Result<AttrId, QueryError> {
        let id = self
            .catalog
            .lookup(name)
            .ok_or_else(|| QueryError::Unresolved(format!("attribute `{name}`")))?;
        if joined.contains(id) {
            Ok(id)
        } else {
            Err(QueryError::Unresolved(format!(
                "attribute `{name}` is not in the FROM schema"
            )))
        }
    }

    /// Resolves an ORDER BY / HAVING identifier against the output schema:
    /// either a select item's output (alias) or a joined attribute that the
    /// query exposes.
    fn resolve_output(
        &mut self,
        name: &str,
        select: &[SelectItem],
        joined: &Schema,
    ) -> Result<AttrId, QueryError> {
        if let Some(id) = self.catalog.lookup(name) {
            if select.iter().any(|i| i.output() == id) {
                return Ok(id);
            }
            // Plain attribute ordering on SPJ queries.
            if joined.contains(id) && select.iter().any(|i| i.output() == id) {
                return Ok(id);
            }
        }
        Err(QueryError::Unresolved(format!(
            "`{name}` is not an output attribute of the query"
        )))
    }

    fn resolve_items(
        &mut self,
        raw: RawItems,
        joined: &Schema,
    ) -> Result<Vec<SelectItem>, QueryError> {
        match raw {
            RawItems::Star => Ok(joined
                .attrs()
                .iter()
                .map(|&a| SelectItem::Attr(a))
                .collect()),
            RawItems::List(items) => items
                .into_iter()
                .map(|item| match item {
                    RawItem::Attr(name) => Ok(SelectItem::Attr(self.resolve_attr(&name, joined)?)),
                    RawItem::Agg { kind, arg, alias } => {
                        let func = self.raw_agg_func(kind, arg, Some(joined))?;
                        let output = match alias {
                            Some(alias) => self.catalog.intern(&alias),
                            None => {
                                let base = func.derived_name(self.catalog);
                                self.catalog.fresh(&base)
                            }
                        };
                        Ok(SelectItem::Agg(AggSpec::new(func, output)))
                    }
                })
                .collect(),
        }
    }

    fn conjunction(&mut self, joined: &Schema) -> Result<Vec<Predicate>, QueryError> {
        let mut preds = Vec::new();
        loop {
            preds.push(self.condition(joined)?);
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(preds)
    }

    fn condition(&mut self, joined: &Schema) -> Result<Predicate, QueryError> {
        let lhs = self.operand()?;
        let op = self.cmp_op()?;
        let rhs = self.operand()?;
        self.build_predicate(lhs, op, rhs, joined, |p, name, j| p.resolve_attr(name, j))
    }

    fn having_conjunction(
        &mut self,
        select: &[SelectItem],
        joined: &Schema,
    ) -> Result<Vec<Predicate>, QueryError> {
        let mut preds = Vec::new();
        loop {
            let lhs = self.having_operand(select)?;
            let op = self.cmp_op()?;
            let rhs = self.having_operand(select)?;
            preds.push(self.build_predicate(lhs, op, rhs, joined, |p, name, _| {
                let select_outputs: Vec<AttrId> = Vec::new();
                let _ = select_outputs;
                p.catalog
                    .lookup(name)
                    .filter(|id| select.iter().any(|i| i.output() == *id))
                    .ok_or_else(|| {
                        QueryError::Unresolved(format!(
                            "`{name}` is not an output attribute (HAVING ranges over outputs)"
                        ))
                    })
            })?);
            if !self.eat_keyword("AND") {
                break;
            }
        }
        Ok(preds)
    }

    /// HAVING may use inline aggregate syntax when the same aggregate is
    /// listed in SELECT; it then refers to that output column.
    fn having_operand(&mut self, select: &[SelectItem]) -> Result<Operand, QueryError> {
        if let Some(Token::Keyword(k)) = self.peek() {
            if let Some(kind) = AggKind::from_keyword(k) {
                self.pos += 1;
                let arg = self.agg_args(kind)?;
                let func = self.raw_agg_func(kind, arg, None)?;
                let matching = select.iter().find_map(|i| match i {
                    SelectItem::Agg(s) if s.func == func => Some(s.output),
                    _ => None,
                });
                return match matching {
                    Some(out) => Ok(Operand::ResolvedAttr(out)),
                    None => Err(QueryError::Invalid(
                        "HAVING aggregate must also appear in SELECT".into(),
                    )),
                };
            }
        }
        self.operand()
    }

    fn operand(&mut self) -> Result<Operand, QueryError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(Operand::Attr(name)),
            Some(Token::Int(n)) => Ok(Operand::Const(Value::Int(n))),
            Some(Token::Float(f)) => Ok(Operand::Const(Value::Float(f))),
            Some(Token::Str(s)) => Ok(Operand::Const(Value::str(s))),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected attribute or literal, found {other:?}"),
            )),
        }
    }

    fn cmp_op(&mut self) -> Result<CmpOp, QueryError> {
        match self.next() {
            Some(Token::Symbol(Sym::Eq)) => Ok(CmpOp::Eq),
            Some(Token::Symbol(Sym::Ne)) => Ok(CmpOp::Ne),
            Some(Token::Symbol(Sym::Lt)) => Ok(CmpOp::Lt),
            Some(Token::Symbol(Sym::Le)) => Ok(CmpOp::Le),
            Some(Token::Symbol(Sym::Gt)) => Ok(CmpOp::Gt),
            Some(Token::Symbol(Sym::Ge)) => Ok(CmpOp::Ge),
            other => Err(QueryError::parse(
                self.pos,
                format!("expected comparison operator, found {other:?}"),
            )),
        }
    }

    fn build_predicate(
        &mut self,
        lhs: Operand,
        op: CmpOp,
        rhs: Operand,
        joined: &Schema,
        resolve: impl Fn(&mut Self, &str, &Schema) -> Result<AttrId, QueryError>,
    ) -> Result<Predicate, QueryError> {
        match (lhs, rhs) {
            (Operand::Attr(a), Operand::Attr(b)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                let ia = resolve(self, &a, joined)?;
                let ib = resolve(self, &b, joined)?;
                Ok(Predicate::AttrEq(ia, ib))
            }
            (Operand::ResolvedAttr(a), Operand::ResolvedAttr(b)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                Ok(Predicate::AttrEq(a, b))
            }
            (Operand::Attr(a), Operand::Const(c)) => {
                Ok(Predicate::AttrCmp(resolve(self, &a, joined)?, op, c))
            }
            (Operand::ResolvedAttr(a), Operand::Const(c)) => Ok(Predicate::AttrCmp(a, op, c)),
            (Operand::Const(c), Operand::Attr(a)) => Ok(Predicate::AttrCmp(
                resolve(self, &a, joined)?,
                mirror(op),
                c,
            )),
            (Operand::Const(c), Operand::ResolvedAttr(a)) => {
                Ok(Predicate::AttrCmp(a, mirror(op), c))
            }
            (Operand::Attr(a), Operand::ResolvedAttr(b))
            | (Operand::ResolvedAttr(b), Operand::Attr(a)) => {
                if op != CmpOp::Eq {
                    return Err(QueryError::Invalid(
                        "attribute-to-attribute conditions must use `=` (§2)".into(),
                    ));
                }
                let ia = resolve(self, &a, joined)?;
                Ok(Predicate::AttrEq(ia, b))
            }
            (Operand::Const(_), Operand::Const(_)) => Err(QueryError::Invalid(
                "conditions must mention at least one attribute".into(),
            )),
        }
    }
}

/// Flips a comparison when the constant was written on the left.
fn mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
        CmpOp::Eq | CmpOp::Ne => op,
    }
}

enum RawItems {
    Star,
    List(Vec<RawItem>),
}

enum RawItem {
    Attr(String),
    Agg {
        kind: AggKind,
        arg: RawAgg,
        alias: Option<String>,
    },
}

/// Unresolved aggregate argument, shaped by [`Parser::agg_args`].
enum RawAgg {
    /// `COUNT(*)`.
    Star,
    /// `F(a)`.
    Attr(String),
    /// `COUNT(DISTINCT a)`.
    Distinct(String),
    /// `EXISTS/FORALL(a θ c)`.
    Pred(String, CmpOp, i64),
    /// `TOP_K(a, k)`.
    TopK(String, usize),
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum AggKind {
    Sum,
    Count,
    Min,
    Max,
    Avg,
    Product,
    Exists,
    Forall,
    TopK,
}

impl AggKind {
    fn from_keyword(k: &str) -> Option<AggKind> {
        match k {
            "SUM" => Some(AggKind::Sum),
            "COUNT" => Some(AggKind::Count),
            "MIN" => Some(AggKind::Min),
            "MAX" => Some(AggKind::Max),
            "AVG" => Some(AggKind::Avg),
            "PRODUCT" => Some(AggKind::Product),
            "EXISTS" => Some(AggKind::Exists),
            "FORALL" => Some(AggKind::Forall),
            "TOP_K" => Some(AggKind::TopK),
            _ => None,
        }
    }
}

enum Operand {
    Attr(String),
    ResolvedAttr(AttrId),
    Const(Value),
}

/// Semantic checks after parsing.
fn validate(q: &Query, catalog: &Catalog) -> Result<(), QueryError> {
    if !q.grouping_sets.is_empty() && !q.is_aggregate() {
        return Err(QueryError::Invalid(
            "ROLLUP/CUBE/GROUPING SETS require at least one aggregate".into(),
        ));
    }
    if q.is_aggregate() {
        for item in &q.select {
            if let SelectItem::Attr(a) = item {
                if !q.group_by.contains(a) {
                    return Err(QueryError::Invalid(format!(
                        "attribute `{}` must appear in GROUP BY",
                        catalog.name(*a)
                    )));
                }
            }
        }
    } else if !q.having.is_empty() {
        return Err(QueryError::Invalid(
            "HAVING requires aggregates or GROUP BY".into(),
        ));
    }
    // Every group-by attribute should be exposed, so downstream operators
    // (ordering, having) stay within the output schema.
    for g in &q.group_by {
        if q.is_aggregate() && !q.select.iter().any(|i| i.output() == *g) {
            return Err(QueryError::Invalid(format!(
                "GROUP BY attribute `{}` must be selected",
                catalog.name(*g)
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Catalog, HashMap<String, Schema>) {
        let mut c = Catalog::new();
        let customer = c.intern("customer");
        let date = c.intern("date");
        let package = c.intern("package");
        let item = c.intern("item");
        let price = c.intern("price");
        let mut schemas = HashMap::new();
        schemas.insert(
            "Orders".to_string(),
            Schema::new(vec![customer, date, package]),
        );
        schemas.insert("Packages".to_string(), Schema::new(vec![package, item]));
        schemas.insert("Items".to_string(), Schema::new(vec![item, price]));
        (c, schemas)
    }

    #[test]
    fn parses_q2_revenue_per_customer() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue \
             FROM Orders, Packages, Items GROUP BY customer",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.from, vec!["Orders", "Packages", "Items"]);
        assert_eq!(q.group_by.len(), 1);
        let aggs = q.aggregates();
        assert_eq!(aggs.len(), 1);
        assert_eq!(c.name(aggs[0].output), "revenue");
        assert!(matches!(aggs[0].func, AggFunc::Sum(_)));
    }

    #[test]
    fn parses_natural_join_syntax() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT package FROM Orders NATURAL JOIN Packages GROUP BY package",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.from, vec!["Orders", "Packages"]);
    }

    #[test]
    fn star_expands_to_joined_schema() {
        let (mut c, schemas) = setup();
        let q = parse("SELECT * FROM Packages, Items", &mut c, &schemas).unwrap();
        let names: Vec<&str> = q.output_attrs().iter().map(|&a| c.name(a)).collect();
        assert_eq!(names, vec!["package", "item", "price"]);
    }

    #[test]
    fn where_with_constants_and_equalities() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT item FROM Items WHERE price >= 2 AND 6 > price AND item = item",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.predicates.len(), 3);
        assert!(matches!(
            q.predicates[1],
            Predicate::AttrCmp(_, CmpOp::Lt, _)
        ));
    }

    #[test]
    fn order_by_desc_and_limit() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer ORDER BY revenue DESC LIMIT 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.order_by.len(), 1);
        assert_eq!(q.order_by[0].dir, SortDir::Desc);
        assert_eq!(q.limit, Some(10));
        assert_eq!(q.offset, 0);
    }

    #[test]
    fn offset_with_limit_both_orders() {
        let (mut c, schemas) = setup();
        for sql in [
            "SELECT item FROM Items ORDER BY item LIMIT 5 OFFSET 20",
            "SELECT item FROM Items ORDER BY item OFFSET 20 LIMIT 5",
        ] {
            let q = parse(sql, &mut c, &schemas).unwrap();
            assert_eq!(q.limit, Some(5), "{sql}");
            assert_eq!(q.offset, 20, "{sql}");
            let task = q.to_task();
            assert_eq!(task.limit, Some(5));
            assert_eq!(task.offset, 20);
        }
    }

    #[test]
    fn bare_offset_without_limit() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT item FROM Items ORDER BY item OFFSET 3",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.limit, None);
        assert_eq!(q.offset, 3);
        assert!(q.display(&c).contains("OFFSET 3"));
    }

    #[test]
    fn offset_rejects_negative_and_non_integer() {
        let (mut c, schemas) = setup();
        for bad in [
            "SELECT item FROM Items OFFSET -1",
            "SELECT item FROM Items OFFSET 1.5",
            "SELECT item FROM Items OFFSET banana",
            "SELECT item FROM Items LIMIT 2 OFFSET -7",
        ] {
            let err = parse(bad, &mut c, &schemas);
            match err {
                Err(QueryError::Parse { ref message, .. }) => {
                    assert!(
                        message.contains("OFFSET expects a non-negative integer"),
                        "{bad}: {message}"
                    );
                }
                other => panic!("{bad}: expected parse error, got {other:?}"),
            }
        }
        // Duplicate clauses stay rejected as trailing input.
        assert!(parse("SELECT item FROM Items OFFSET 1 OFFSET 2", &mut c, &schemas).is_err());
        assert!(parse(
            "SELECT item FROM Items LIMIT 1 OFFSET 2 LIMIT 3",
            &mut c,
            &schemas
        )
        .is_err());
    }

    #[test]
    fn having_references_selected_aggregate() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING revenue > 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.having.len(), 1);
        // Inline aggregate syntax resolves to the same column.
        let q2 = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING SUM(price) > 10",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.having, q2.having);
    }

    #[test]
    fn having_aggregate_not_in_select_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
             GROUP BY customer HAVING MIN(price) > 1",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Invalid(_))));
    }

    #[test]
    fn ungrouped_attribute_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) FROM Orders, Packages, Items GROUP BY date",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Invalid(_))));
    }

    #[test]
    fn unknown_relation_is_unresolved() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT x FROM Nope", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn unknown_attribute_is_unresolved() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT nope FROM Items", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn attribute_outside_from_is_unresolved() {
        let (mut c, schemas) = setup();
        // `customer` exists in the catalog but not in Items' schema.
        let err = parse("SELECT customer FROM Items", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn count_star_and_count_attr() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT COUNT(*) AS n, COUNT(item) AS m FROM Items",
            &mut c,
            &schemas,
        )
        .unwrap();
        let aggs = q.aggregates();
        assert_eq!(aggs.len(), 2);
        assert!(matches!(aggs[0].func, AggFunc::Count));
        assert!(matches!(aggs[1].func, AggFunc::Count));
    }

    #[test]
    fn parses_new_aggregates() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, COUNT(DISTINCT item) AS kinds, PRODUCT(price) AS p, \
             EXISTS(price > 10) AS big, FORALL(price >= 0) AS sane, TOP_K(price, 3) AS top \
             FROM Orders, Packages, Items GROUP BY customer",
            &mut c,
            &schemas,
        )
        .unwrap();
        let aggs = q.aggregates();
        assert_eq!(aggs.len(), 5);
        assert!(matches!(aggs[0].func, AggFunc::CountDistinct(_)));
        assert!(matches!(aggs[1].func, AggFunc::Product(_)));
        assert!(matches!(aggs[2].func, AggFunc::Exists(_, CmpOp::Gt, 10)));
        assert!(matches!(aggs[3].func, AggFunc::Forall(_, CmpOp::Ge, 0)));
        assert!(matches!(aggs[4].func, AggFunc::TopK(_, 3)));
    }

    #[test]
    fn select_distinct_with_aggregates_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT DISTINCT customer, COUNT(*) AS n FROM Orders GROUP BY customer",
            &mut c,
            &schemas,
        );
        match err {
            Err(QueryError::Invalid(msg)) => assert!(msg.contains("COUNT(DISTINCT")),
            other => panic!("expected Invalid, got {other:?}"),
        }
        // Bare DISTINCT on SPJ queries stays accepted (it is a no-op).
        assert!(parse("SELECT DISTINCT item FROM Items", &mut c, &schemas).is_ok());
    }

    #[test]
    fn top_k_requires_positive_k() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT TOP_K(price, 0) AS t FROM Items", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Parse { .. })));
    }

    #[test]
    fn rollup_expands_to_prefix_sets() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, date, COUNT(*) AS n FROM Orders \
             GROUP BY ROLLUP (customer, date)",
            &mut c,
            &schemas,
        )
        .unwrap();
        let customer = c.lookup("customer").unwrap();
        let date = c.lookup("date").unwrap();
        assert_eq!(q.group_by, vec![customer, date]);
        assert_eq!(
            q.grouping_sets,
            vec![vec![customer, date], vec![customer], vec![]]
        );
    }

    #[test]
    fn cube_expands_to_all_subsets() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, date, SUM(package) AS s FROM Orders \
             GROUP BY CUBE (customer, date)",
            &mut c,
            &schemas,
        )
        .unwrap();
        let customer = c.lookup("customer").unwrap();
        let date = c.lookup("date").unwrap();
        assert_eq!(
            q.grouping_sets,
            vec![vec![customer, date], vec![customer], vec![date], vec![]]
        );
    }

    #[test]
    fn grouping_sets_with_grand_total() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, date, COUNT(*) AS n FROM Orders \
             GROUP BY GROUPING SETS ((customer, date), (customer), ())",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.grouping_sets.len(), 3);
        assert!(q.grouping_sets[2].is_empty());
        assert_eq!(q.group_by.len(), 2);
        let task = q.to_task();
        assert_eq!(task.grouping_sets.len(), 3);
    }

    #[test]
    fn grouping_sets_without_aggregates_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer FROM Orders GROUP BY ROLLUP (customer)",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Invalid(_))));
    }

    #[test]
    fn having_inline_new_aggregates_resolve_to_select_outputs() {
        let (mut c, schemas) = setup();
        let q = parse(
            "SELECT customer, COUNT(DISTINCT item) AS kinds FROM Orders, Packages, Items \
             GROUP BY customer HAVING COUNT(DISTINCT item) > 1",
            &mut c,
            &schemas,
        )
        .unwrap();
        assert_eq!(q.having.len(), 1);
        let kinds = c.lookup("kinds").unwrap();
        assert!(matches!(q.having[0], Predicate::AttrCmp(a, CmpOp::Gt, _) if a == kinds));
    }

    #[test]
    fn order_by_non_output_is_rejected() {
        let (mut c, schemas) = setup();
        let err = parse(
            "SELECT customer, SUM(price) AS r FROM Orders, Packages, Items \
             GROUP BY customer ORDER BY date",
            &mut c,
            &schemas,
        );
        assert!(matches!(err, Err(QueryError::Unresolved(_))));
    }

    #[test]
    fn trailing_tokens_rejected() {
        let (mut c, schemas) = setup();
        let err = parse("SELECT item FROM Items garbage", &mut c, &schemas);
        assert!(matches!(err, Err(QueryError::Parse { .. })));
    }

    #[test]
    fn lowering_round_trip_display() {
        let (mut c, schemas) = setup();
        let sql = "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
                   GROUP BY customer ORDER BY revenue DESC LIMIT 3";
        let q = parse(sql, &mut c, &schemas).unwrap();
        let shown = q.display(&c);
        assert!(shown.contains("GROUP BY customer"));
        assert!(shown.contains("ORDER BY revenue DESC"));
        assert!(shown.contains("LIMIT 3"));
        let task = q.to_task();
        assert_eq!(task.inputs.len(), 3);
        assert_eq!(task.limit, Some(3));
    }

    #[test]
    fn statement_dispatches_selects_to_the_query_path() {
        let (mut c, schemas) = setup();
        let stmt = parse_statement("SELECT item FROM Items", &mut c, &schemas).unwrap();
        assert!(matches!(stmt, Statement::Select(_)));
    }

    #[test]
    fn insert_parses_values_in_schema_order() {
        let (mut c, schemas) = setup();
        let stmt = parse_statement(
            "INSERT INTO Items VALUES ('ham', 1), ('brie', 3)",
            &mut c,
            &schemas,
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected Insert")
        };
        assert_eq!(ins.table, "Items");
        assert_eq!(
            ins.rows,
            vec![
                vec![Value::str("ham"), Value::Int(1)],
                vec![Value::str("brie"), Value::Int(3)],
            ]
        );
    }

    #[test]
    fn insert_column_list_reorders_into_schema_order() {
        let (mut c, schemas) = setup();
        let stmt = parse_statement(
            "INSERT INTO Items (price, item) VALUES (2, 'olive'), (4.5, 'truffle')",
            &mut c,
            &schemas,
        )
        .unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected Insert")
        };
        // Schema order is (item, price) regardless of the listed order.
        assert_eq!(ins.rows[0], vec![Value::str("olive"), Value::Int(2)]);
        assert_eq!(ins.rows[1], vec![Value::str("truffle"), Value::Float(4.5)]);
    }

    #[test]
    fn insert_accepts_null_literals() {
        let (mut c, schemas) = setup();
        let stmt =
            parse_statement("INSERT INTO Items VALUES ('x', NULL)", &mut c, &schemas).unwrap();
        let Statement::Insert(ins) = stmt else {
            panic!("expected Insert")
        };
        assert_eq!(ins.rows[0][1], Value::Null);
    }

    #[test]
    fn insert_rejects_bad_shapes() {
        let (mut c, schemas) = setup();
        // Unknown table.
        assert!(matches!(
            parse_statement("INSERT INTO Nope VALUES (1)", &mut c, &schemas),
            Err(QueryError::Unresolved(_))
        ));
        // Wrong tuple arity.
        assert!(parse_statement("INSERT INTO Items VALUES ('x')", &mut c, &schemas).is_err());
        // Partial column list: partial inserts are not supported.
        assert!(
            parse_statement("INSERT INTO Items (item) VALUES ('x')", &mut c, &schemas).is_err()
        );
        // Duplicate column in the list.
        assert!(parse_statement(
            "INSERT INTO Items (item, item) VALUES ('x', 'y')",
            &mut c,
            &schemas
        )
        .is_err());
        // Unknown column name.
        assert!(parse_statement(
            "INSERT INTO Items (item, weight) VALUES ('x', 1)",
            &mut c,
            &schemas
        )
        .is_err());
        // Trailing garbage.
        assert!(parse_statement("INSERT INTO Items VALUES ('x', 1) ha", &mut c, &schemas).is_err());
    }

    #[test]
    fn delete_parses_where_conjunction_over_the_table_schema() {
        let (mut c, schemas) = setup();
        let stmt = parse_statement(
            "DELETE FROM Items WHERE item = 'ham' AND price > 1",
            &mut c,
            &schemas,
        )
        .unwrap();
        let Statement::Delete(del) = stmt else {
            panic!("expected Delete")
        };
        assert_eq!(del.table, "Items");
        assert_eq!(del.predicates.len(), 2);

        // No WHERE clause: delete everything.
        let stmt = parse_statement("DELETE FROM Items", &mut c, &schemas).unwrap();
        let Statement::Delete(del) = stmt else {
            panic!("expected Delete")
        };
        assert!(del.predicates.is_empty());
    }

    #[test]
    fn delete_rejects_unknown_table_and_foreign_attrs() {
        let (mut c, schemas) = setup();
        assert!(matches!(
            parse_statement("DELETE FROM Nope", &mut c, &schemas),
            Err(QueryError::Unresolved(_))
        ));
        // `customer` is not in Items' schema: predicates resolve against
        // the target table only.
        assert!(parse_statement(
            "DELETE FROM Items WHERE customer = 'Mario'",
            &mut c,
            &schemas
        )
        .is_err());
    }
}
