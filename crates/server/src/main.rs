//! `fdb-server` binary: serve a dataset over the line protocol.
//!
//! ```text
//! fdb-server [--addr HOST:PORT] [--workers N] [--deadline-ms N]
//!            [--cache N] [--dataset pizzeria|orders] [--scale S]
//!            [--load NAME PATH]...
//! ```
//!
//! Defaults: `--addr 127.0.0.1:7437`, the pizzeria dataset, 16 workers,
//! a 10 s per-request deadline, a 64-entry plan cache. `--dataset
//! orders --scale S` serves the paper's synthetic Orders/Packages/Items
//! database instead; `--load` registers serialised `fdbv1` views on top.
//! Runs until killed (or until stdin reaches EOF when piped).

use fdb::workload::orders::OrdersConfig;
use fdb::{Catalog, Db, FdbEngine};
use fdb_server::{spawn, ServerOptions};
use std::time::Duration;

struct Args {
    addr: String,
    workers: usize,
    deadline_ms: u64,
    cache: usize,
    dataset: String,
    scale: u32,
    loads: Vec<(String, String)>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7437".to_string(),
        workers: 0,
        deadline_ms: 10_000,
        cache: 64,
        dataset: "pizzeria".to_string(),
        scale: 1,
        loads: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} requires a value"));
        match flag.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?;
            }
            "--deadline-ms" => {
                args.deadline_ms = value("--deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--deadline-ms: {e}"))?;
            }
            "--cache" => {
                args.cache = value("--cache")?
                    .parse()
                    .map_err(|e| format!("--cache: {e}"))?;
            }
            "--dataset" => args.dataset = value("--dataset")?,
            "--scale" => {
                args.scale = value("--scale")?
                    .parse()
                    .map_err(|e| format!("--scale: {e}"))?;
            }
            "--load" => {
                let name = value("--load")?;
                let path = value("--load")?;
                args.loads.push((name, path));
            }
            "--help" | "-h" => {
                return Err("usage: fdb-server [--addr HOST:PORT] [--workers N] \
                     [--deadline-ms N] [--cache N] [--dataset pizzeria|orders] \
                     [--scale S] [--load NAME PATH]..."
                    .to_string())
            }
            other => return Err(format!("unknown flag `{other}` (try --help)")),
        }
    }
    Ok(args)
}

fn build_db(args: &Args) -> Result<Db, String> {
    let mut catalog = Catalog::new();
    let db = match args.dataset.as_str() {
        "pizzeria" => {
            let data = fdb::workload::pizzeria::pizzeria(&mut catalog);
            let mut engine = FdbEngine::new(catalog);
            engine.register_relation("Orders", data.orders);
            engine.register_relation("Pizzas", data.pizzas);
            engine.register_relation("Items", data.items);
            Db::from_engine(engine)
        }
        "orders" => {
            let cfg = OrdersConfig::at_scale(args.scale);
            let data = fdb::workload::orders::generate(&mut catalog, &cfg);
            let mut engine = FdbEngine::new(catalog);
            engine.register_relation("Orders", data.orders);
            engine.register_relation("Packages", data.packages);
            engine.register_relation("Items", data.items);
            Db::from_engine(engine)
        }
        other => return Err(format!("unknown dataset `{other}` (pizzeria|orders)")),
    };
    for (name, path) in &args.loads {
        let file = std::fs::File::open(path).map_err(|e| format!("--load {name}: {e}"))?;
        db.load_view(name.clone(), std::io::BufReader::new(file))
            .map_err(|e| format!("--load {name}: {e}"))?;
    }
    Ok(db)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    let db = match build_db(&args) {
        Ok(db) => db,
        Err(msg) => {
            eprintln!("fdb-server: {msg}");
            std::process::exit(1);
        }
    };
    let deadline = if args.deadline_ms == 0 {
        None
    } else {
        Some(Duration::from_millis(args.deadline_ms))
    };
    let opts = ServerOptions::new()
        .workers(args.workers)
        .deadline(deadline)
        .cache_capacity(args.cache);
    let mut handle = match spawn(db, &args.addr, opts) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("fdb-server: bind {}: {e}", args.addr);
            std::process::exit(1);
        }
    };
    // Announce the bound address on stdout so harnesses using port 0
    // can discover it.
    println!("fdb-server listening on {}", handle.addr());
    // Serve until the process is killed, or — when stdin is a pipe —
    // until the parent closes it (lets test harnesses stop us cleanly).
    let mut sink = String::new();
    loop {
        sink.clear();
        match std::io::BufRead::read_line(&mut std::io::stdin().lock(), &mut sink) {
            Ok(0) => break,
            Ok(_) => continue,
            Err(_) => break,
        }
    }
    handle.shutdown();
}
