//! Factorised representations over f-trees (Definition 1), stored in a
//! flat **arena**.
//!
//! A factorisation over an f-tree is stored in its canonical grouped form:
//! for a node `n` with children `c1…ck`, the data under one group is
//! `⋃_a (⟨n:a⟩ × E1(a) × … × Ek(a))` — a union of entries, each holding
//! the singleton value and one child union per child of `n`.
//!
//! ## Physical layout
//!
//! The nesting structure is *not* a tree of heap-allocated nodes. One
//! [`Arena`] per representation holds four flat tables:
//!
//! * `unions`  — one 12-byte record per union: its f-tree node and the
//!   range of its entries in the entry table ([`UnionId`] addresses);
//! * `entries` — one 12-byte record per entry (= per singleton): the
//!   index of its value in the per-node column and the range of its
//!   child unions in the kid table;
//! * `kids`    — child [`UnionId`]s, one contiguous range per entry;
//! * `cols`    — per f-tree node, a columnar buffer of the values of
//!   every singleton tagged with that node.
//!
//! A union's entries and an entry's children are therefore index
//! *ranges*, not owned vectors: traversal is array indexing, and
//! constructing or transforming a representation is append-only table
//! building with no per-node allocation. Traversal goes through the
//! cheap copyable cursors [`UnionRef`]/[`EntryRef`]; operators consume
//! the input arena and emit a fresh one (see [`crate::ops`]).
//!
//! The nested [`Union`]/[`Entry`] structs survive as a *builder-side*
//! convenience for callers that assemble factorisations by hand (data
//! generators, tests); [`FRep::new`] freezes them into an arena.
//!
//! Invariants maintained by every operator:
//! * entries of every union are sorted by **strictly ascending** value
//!   (§4.1: "singletons within each union are kept sorted");
//! * an entry's kid range is parallel to the f-tree's child list;
//! * unions are non-empty everywhere except at the roots (empty unions are
//!   pruned bottom-up, so emptiness is only representable at the top).

use crate::error::{FdbError, Result};
use crate::ftree::{FTree, NodeId, NodeLabel};
use fdb_relational::{AttrId, Catalog, Relation, Schema, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------
// Arena storage
// ---------------------------------------------------------------------

/// Index of a union in an [`Arena`]'s union table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct UnionId(pub u32);

/// Index of an entry in an [`Arena`]'s entry table.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(pub u32);

/// One union: the f-tree node it ranges over and its entry range.
#[derive(Clone, Copy, Debug)]
pub(crate) struct UnionRec {
    pub(crate) node: NodeId,
    /// First entry in [`Arena::entries`].
    pub(crate) start: u32,
    /// Number of entries.
    pub(crate) len: u32,
}

/// One entry (singleton occurrence): value index into the node's column
/// and the kid range.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EntryRec {
    /// Index into `cols[node]` of the owning union's node.
    pub(crate) val: u32,
    /// First kid in [`Arena::kids`].
    pub(crate) kids_start: u32,
    /// Number of child unions (= arity of the f-tree node's child list).
    pub(crate) kids_len: u32,
}

/// An entry under construction: value already pushed to the node column,
/// kids already pushed to the kid table.
#[derive(Clone, Copy, Debug)]
pub(crate) struct EntrySpec {
    val: u32,
    kids_start: u32,
    kids_len: u32,
}

impl EntrySpec {
    /// Re-emits an existing entry record verbatim — the delta-update
    /// spine rewrite ([`crate::update`]) carries every untouched entry
    /// of a rewritten union over by id: same value index, same kid
    /// range, zero copies.
    pub(crate) fn from_rec(r: EntryRec) -> EntrySpec {
        EntrySpec {
            val: r.val,
            kids_start: r.kids_start,
            kids_len: r.kids_len,
        }
    }
}

/// Flat storage for one factorised representation (see module docs).
#[derive(Clone, Debug, Default)]
pub struct Arena {
    unions: Vec<UnionRec>,
    entries: Vec<EntryRec>,
    kids: Vec<UnionId>,
    /// Per f-tree node id: the values of every entry tagged with it.
    cols: Vec<Vec<Value>>,
    /// Untouched fragments *shared* by id (instead of deep-copied) by
    /// the in-place operators of the staged pipeline executor — see
    /// [`crate::pipeline`]. Purely diagnostic; carried through
    /// [`Arena::append`] and compaction.
    copies_avoided: u64,
}

impl Arena {
    /// Appends `v` to `node`'s column; returns its index therein.
    pub(crate) fn push_value(&mut self, node: NodeId, v: Value) -> u32 {
        let n = node.0 as usize;
        if self.cols.len() <= n {
            self.cols.resize_with(n + 1, Vec::new);
        }
        let col = &mut self.cols[n];
        col.push(v);
        (col.len() - 1) as u32
    }

    /// Appends a kid list; returns an [`EntrySpec`] once paired with a
    /// value via [`Arena::entry`].
    pub(crate) fn push_kids(&mut self, kids: &[UnionId]) -> (u32, u32) {
        let start = self.kids.len() as u32;
        self.kids.extend_from_slice(kids);
        (start, kids.len() as u32)
    }

    /// Builds one entry spec: pushes the value and the kid list.
    pub(crate) fn entry(&mut self, node: NodeId, value: Value, kids: &[UnionId]) -> EntrySpec {
        let (kids_start, kids_len) = self.push_kids(kids);
        let val = self.push_value(node, value);
        EntrySpec {
            val,
            kids_start,
            kids_len,
        }
    }

    /// Builds one entry spec *reusing* an existing value index of the
    /// owning node's column — the in-place rewrites re-emit entries of
    /// the same node within the same arena, so the singleton value need
    /// not be cloned or re-pushed.
    pub(crate) fn entry_shared_val(&mut self, val: u32, kids: &[UnionId]) -> EntrySpec {
        let (kids_start, kids_len) = self.push_kids(kids);
        EntrySpec {
            val,
            kids_start,
            kids_len,
        }
    }

    /// Appends a union with the given entries (laid out contiguously in
    /// the entry table, in slice order).
    pub(crate) fn push_union(&mut self, node: NodeId, entries: &[EntrySpec]) -> UnionId {
        let start = self.entries.len() as u32;
        for s in entries {
            self.entries.push(EntryRec {
                val: s.val,
                kids_start: s.kids_start,
                kids_len: s.kids_len,
            });
        }
        self.unions.push(UnionRec {
            node,
            start,
            len: entries.len() as u32,
        });
        UnionId((self.unions.len() - 1) as u32)
    }

    /// An empty union for `node` (representable only at the roots).
    pub(crate) fn empty_union(&mut self, node: NodeId) -> UnionId {
        self.push_union(node, &[])
    }

    /// Retags a union's f-tree node (empty-root normalisation).
    pub(crate) fn set_union_node(&mut self, id: UnionId, node: NodeId) {
        self.unions[id.0 as usize].node = node;
    }

    /// Cursor over union `id`.
    pub(crate) fn union(&self, id: UnionId) -> UnionRef<'_> {
        UnionRef { arena: self, id }
    }

    pub(crate) fn union_len(&self, id: UnionId) -> usize {
        self.unions[id.0 as usize].len as usize
    }

    // -----------------------------------------------------------------
    // Index-based record access — the in-place rewrites of the staged
    // pipeline executor read and append to the *same* arena, so they
    // cannot hold `UnionRef` cursors (which borrow the arena) across
    // appends. Records are `Copy`; reads through `&self` reborrows of a
    // `&mut Arena` are always safe because the tables are append-only.
    // -----------------------------------------------------------------

    /// The record of union `id`.
    pub(crate) fn urec(&self, id: UnionId) -> UnionRec {
        self.unions[id.0 as usize]
    }

    /// The record of the entry at absolute index `i` in the entry table.
    pub(crate) fn erec(&self, i: u32) -> EntryRec {
        self.entries[i as usize]
    }

    /// The kid at absolute index `k` in the kid table.
    pub(crate) fn kid_at(&self, k: u32) -> UnionId {
        self.kids[k as usize]
    }

    /// The value at index `val` of `node`'s column.
    pub(crate) fn value_at(&self, node: NodeId, val: u32) -> &Value {
        &self.cols[node.0 as usize][val as usize]
    }

    /// Binary search of union `uid` for `v`; returns the *absolute*
    /// entry-table index of the match (entries are sorted ascending).
    pub(crate) fn find_entry(&self, uid: UnionId, v: &Value) -> Option<u32> {
        let rec = self.unions[uid.0 as usize];
        if rec.len == 0 {
            return None;
        }
        let col = &self.cols[rec.node.0 as usize];
        let range = &self.entries[rec.start as usize..(rec.start + rec.len) as usize];
        range
            .binary_search_by(|e| col[e.val as usize].cmp(v))
            .ok()
            .map(|i| rec.start + i as u32)
    }

    /// Binary search of union `uid` for `v` with the insertion point on
    /// a miss: `Ok(abs)` is the *absolute* entry-table index of the
    /// match, `Err(phys)` the *physical* position within the union
    /// where `v` would keep the entries strictly ascending. The delta
    /// insert ([`crate::update`]) splices a fresh entry run there.
    pub(crate) fn search_entry(&self, uid: UnionId, v: &Value) -> std::result::Result<u32, u32> {
        let rec = self.unions[uid.0 as usize];
        if rec.len == 0 {
            // Empty root of an empty representation; its node may not
            // even have a value column yet.
            return Err(0);
        }
        let col = &self.cols[rec.node.0 as usize];
        let range = &self.entries[rec.start as usize..(rec.start + rec.len) as usize];
        range
            .binary_search_by(|e| col[e.val as usize].cmp(v))
            .map(|i| rec.start + i as u32)
            .map_err(|i| i as u32)
    }

    /// Physical entry records reachable from `roots`, counting shared
    /// unions once (iterative walk with a visited set — O(live), used
    /// by the staged executor to decide whether compaction pays off).
    pub(crate) fn live_entry_count(&self, roots: &[UnionId]) -> usize {
        let mut seen = vec![false; self.unions.len()];
        let mut stack: Vec<UnionId> = roots.to_vec();
        let mut live = 0usize;
        while let Some(uid) = stack.pop() {
            let seen_slot = &mut seen[uid.0 as usize];
            if *seen_slot {
                continue;
            }
            *seen_slot = true;
            let u = self.unions[uid.0 as usize];
            live += u.len as usize;
            for i in u.start..u.start + u.len {
                let e = self.entries[i as usize];
                for k in e.kids_start..e.kids_start + e.kids_len {
                    stack.push(self.kids[k as usize]);
                }
            }
        }
        live
    }

    /// Records `n` fragments shared by id instead of deep-copied.
    pub(crate) fn note_shared(&mut self, n: u64) {
        self.copies_avoided += n;
    }

    /// Total fragments shared by id instead of deep-copied so far.
    pub(crate) fn copies_avoided(&self) -> u64 {
        self.copies_avoided
    }

    /// Copies the live data reachable from `roots` into a fresh arena,
    /// **preserving sharing**: a union referenced from several parents
    /// (the in-place `swap`/`rewrite` operators share untouched
    /// fragments by id) is copied exactly once and re-referenced. This
    /// is the single per-plan "garbage collection" pass of the staged
    /// executor — everything unreachable (superseded path spines of the
    /// in-place rewrites) is shed.
    pub(crate) fn compact(&self, roots: &[UnionId]) -> (Arena, Vec<UnionId>) {
        let mut dst = Arena {
            copies_avoided: self.copies_avoided,
            ..Arena::default()
        };
        // Flat memo table indexed by source union id (u32::MAX = not
        // yet copied): O(1) sharing detection without hashing.
        let mut memo: Vec<u32> = vec![u32::MAX; self.unions.len()];
        let mut kid_scratch: Vec<UnionId> = Vec::new();
        let mut spec_scratch: Vec<EntrySpec> = Vec::new();
        let new_roots = roots
            .iter()
            .map(|&r| self.compact_rec(r, &mut dst, &mut memo, &mut kid_scratch, &mut spec_scratch))
            .collect();
        (dst, new_roots)
    }

    fn compact_rec(
        &self,
        uid: UnionId,
        dst: &mut Arena,
        memo: &mut Vec<u32>,
        kid_scratch: &mut Vec<UnionId>,
        spec_scratch: &mut Vec<EntrySpec>,
    ) -> UnionId {
        let m = memo[uid.0 as usize];
        if m != u32::MAX {
            return UnionId(m);
        }
        let rec = self.unions[uid.0 as usize];
        let spec_base = spec_scratch.len();
        for i in rec.start..rec.start + rec.len {
            let e = self.entries[i as usize];
            let kid_base = kid_scratch.len();
            for k in e.kids_start..e.kids_start + e.kids_len {
                let cid =
                    self.compact_rec(self.kids[k as usize], dst, memo, kid_scratch, spec_scratch);
                kid_scratch.push(cid);
            }
            let value = self.cols[rec.node.0 as usize][e.val as usize].clone();
            let spec = dst.entry(rec.node, value, &kid_scratch[kid_base..]);
            kid_scratch.truncate(kid_base);
            spec_scratch.push(spec);
        }
        let out = dst.push_union(rec.node, &spec_scratch[spec_base..]);
        spec_scratch.truncate(spec_base);
        memo[uid.0 as usize] = out.0;
        out
    }

    /// Deep-copies union `src_id` from `src` into `self`: a record-wise
    /// walk over the source tables that appends one union/entry record
    /// per copied node and clones each value (`Arc` payloads make value
    /// clones cheap). Wholesale arena splicing is [`Arena::append`].
    pub(crate) fn copy_union_from(&mut self, src: &Arena, src_id: UnionId) -> UnionId {
        let mut kid_scratch: Vec<UnionId> = Vec::new();
        let mut spec_scratch: Vec<EntrySpec> = Vec::new();
        self.copy_union_rec(src, src_id, &mut kid_scratch, &mut spec_scratch)
    }

    fn copy_union_rec(
        &mut self,
        src: &Arena,
        src_id: UnionId,
        kid_scratch: &mut Vec<UnionId>,
        spec_scratch: &mut Vec<EntrySpec>,
    ) -> UnionId {
        let rec = src.unions[src_id.0 as usize];
        let node = rec.node;
        let spec_base = spec_scratch.len();
        for i in rec.start..rec.start + rec.len {
            let e = src.entries[i as usize];
            let kid_base = kid_scratch.len();
            for k in e.kids_start..e.kids_start + e.kids_len {
                let cid = self.copy_union_rec(src, src.kids[k as usize], kid_scratch, spec_scratch);
                kid_scratch.push(cid);
            }
            let value = src.cols[node.0 as usize][e.val as usize].clone();
            let spec = self.entry(node, value, &kid_scratch[kid_base..]);
            kid_scratch.truncate(kid_base);
            spec_scratch.push(spec);
        }
        let out = self.push_union(node, &spec_scratch[spec_base..]);
        spec_scratch.truncate(spec_base);
        out
    }

    /// Appends another arena wholesale, shifting its f-tree node ids by
    /// `node_offset`; returns the [`UnionId`] offset to add to `sub` ids.
    ///
    /// Every entry reachable from a union of `sub` is re-based exactly
    /// once (each live entry belongs to exactly one union); unreachable
    /// garbage keeps stale value indices but is never read.
    pub(crate) fn append(&mut self, sub: Arena, node_offset: u32) -> u32 {
        let union_base = self.unions.len() as u32;
        let entry_base = self.entries.len() as u32;
        let kid_base = self.kids.len() as u32;
        let want = sub.cols.len() + node_offset as usize;
        if self.cols.len() < want {
            self.cols.resize_with(want, Vec::new);
        }
        let col_base: Vec<u32> = (0..sub.cols.len())
            .map(|n| self.cols[n + node_offset as usize].len() as u32)
            .collect();
        for (n, col) in sub.cols.into_iter().enumerate() {
            self.cols[n + node_offset as usize].extend(col);
        }
        for k in sub.kids {
            self.kids.push(UnionId(k.0 + union_base));
        }
        for e in &sub.entries {
            self.entries.push(EntryRec {
                val: e.val,
                kids_start: e.kids_start + kid_base,
                kids_len: e.kids_len,
            });
        }
        for u in &sub.unions {
            for i in u.start..u.start + u.len {
                self.entries[(entry_base + i) as usize].val += col_base[u.node.0 as usize];
            }
            self.unions.push(UnionRec {
                node: NodeId(u.node.0 + node_offset),
                start: u.start + entry_base,
                len: u.len,
            });
        }
        self.copies_avoided += sub.copies_avoided;
        union_base
    }

    /// Physical footprint in bytes, capacity-aware: table capacities plus
    /// the heap behind every stored [`Value`].
    fn bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.unions.capacity() * std::mem::size_of::<UnionRec>()
            + self.entries.capacity() * std::mem::size_of::<EntryRec>()
            + self.kids.capacity() * std::mem::size_of::<UnionId>()
            + self.cols.capacity() * std::mem::size_of::<Vec<Value>>();
        for col in &self.cols {
            total += col.capacity() * std::mem::size_of::<Value>();
            for v in col {
                total += value_heap_bytes(v);
            }
        }
        total
    }

    /// Size-based footprint in bytes: stored records plus the inline
    /// size of every stored value, ignoring unused vector capacity and
    /// value heap payloads. Computed in O(#nodes) — table lengths only
    /// — so the executors can difference it at every stage boundary to
    /// account *intermediate allocation* without a full arena walk
    /// (allocator rounding and `Arc`-shared string payloads would only
    /// obscure how many records an operator actually materialised).
    fn bytes_used(&self) -> usize {
        let mut total = std::mem::size_of::<Self>()
            + self.unions.len() * std::mem::size_of::<UnionRec>()
            + self.entries.len() * std::mem::size_of::<EntryRec>()
            + self.kids.len() * std::mem::size_of::<UnionId>()
            + self.cols.len() * std::mem::size_of::<Vec<Value>>();
        for col in &self.cols {
            total += col.len() * std::mem::size_of::<Value>();
        }
        total
    }

    fn value_count(&self) -> usize {
        self.cols.iter().map(Vec::len).sum()
    }
}

/// Estimated heap allocation behind one value (`Arc` payloads; shared
/// `Arc`s are counted at every holder — an upper bound on the footprint).
fn value_heap_bytes(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Float(_) | Value::Null => 0,
        // Arc<str>: payload + strong/weak counts.
        Value::Str(s) => s.len() + 16,
        Value::Tup(vs) => {
            16 + vs.len() * std::mem::size_of::<Value>()
                + vs.iter().map(value_heap_bytes).sum::<usize>()
        }
    }
}

// ---------------------------------------------------------------------
// Count annotations (direct ordered access)
// ---------------------------------------------------------------------

/// Per-entry subtree tuple counts — the annotated-access layer that makes
/// the i-th tuple of a sort-order-realising f-tree reachable without
/// enumerating past it (direct access in the sense of Eldar, Carmeli &
/// Kimelfeld).
///
/// Layout: two parallel columnar buffers keyed by the arena's absolute
/// indices. `entry_prefix[e]` is the *inclusive* prefix sum, within the
/// owning union's entry range, of subtree tuple counts (the number of
/// tuples an entry's subtree represents = the product of its child-union
/// totals; a leaf entry counts 1). `union_total[u]` is the sum over the
/// union's entries — the tuple count of the whole subtree hanging off
/// that union.
///
/// Built in one bottom-up pass over the unions reachable from the roots,
/// memoised per [`UnionId`] so DAG-shared fragments are counted once and
/// share their annotation (unreachable garbage records keep count 0).
/// Counts saturate at `u64::MAX`; a saturated representation has more
/// tuples than any addressable offset, so seeks still terminate (they
/// simply stay inside the first astronomically-large block).
#[derive(Debug)]
pub(crate) struct CountIndex {
    entry_prefix: Vec<u64>,
    union_total: Vec<u64>,
}

impl CountIndex {
    /// Tuple count of the subtree hanging off union `u`.
    pub(crate) fn total(&self, u: UnionId) -> u64 {
        self.union_total[u.0 as usize]
    }

    /// Inclusive prefix sum at absolute entry index `e` (within the
    /// owning union's entry range, in physical = ascending-value order).
    pub(crate) fn prefix_incl(&self, e: u32) -> u64 {
        self.entry_prefix[e as usize]
    }

    /// Number of tuples enumerated before logical position `l` of a
    /// union (direction-aware: `Desc` walks the physical entries
    /// backwards, so the cumulative count counts from the high end).
    pub(crate) fn cum_before(&self, rec: UnionRec, l: usize, dir: fdb_relational::SortDir) -> u64 {
        match dir {
            fdb_relational::SortDir::Asc => {
                if l == 0 {
                    0
                } else {
                    self.prefix_incl(rec.start + (l as u32 - 1))
                }
            }
            fdb_relational::SortDir::Desc => {
                // Logical position l is physical len−1−l; everything at
                // higher physical positions was already enumerated.
                let phys = rec.len as usize - 1 - l;
                let total = if rec.len == 0 {
                    0
                } else {
                    self.prefix_incl(rec.start + rec.len - 1)
                };
                total.saturating_sub(self.prefix_incl(rec.start + phys as u32))
            }
        }
    }

    /// Subtree tuple count of the physical entry at offset `phys` within
    /// `rec`'s range (difference of adjacent prefix sums).
    pub(crate) fn entry_count_at(&self, rec: UnionRec, phys: usize) -> u64 {
        let abs = rec.start + phys as u32;
        let incl = self.prefix_incl(abs);
        if phys == 0 {
            incl
        } else {
            incl.saturating_sub(self.prefix_incl(abs - 1))
        }
    }
}

impl Arena {
    /// One bottom-up pass computing [`CountIndex`] for everything
    /// reachable from `roots`. Iterative post-order with a per-union
    /// memo: shared fragments (the staged executor's DAG rewrites) are
    /// visited once.
    pub(crate) fn build_counts(&self, roots: &[UnionId]) -> CountIndex {
        let mut entry_prefix = vec![0u64; self.entries.len()];
        let mut union_total = vec![0u64; self.unions.len()];
        let mut computed = vec![false; self.unions.len()];
        enum Phase {
            Enter(UnionId),
            Exit(UnionId),
        }
        let mut stack: Vec<Phase> = roots.iter().rev().map(|&r| Phase::Enter(r)).collect();
        while let Some(p) = stack.pop() {
            match p {
                Phase::Enter(uid) => {
                    if computed[uid.0 as usize] {
                        continue;
                    }
                    stack.push(Phase::Exit(uid));
                    let u = self.unions[uid.0 as usize];
                    for i in u.start..u.start + u.len {
                        let e = self.entries[i as usize];
                        for k in e.kids_start..e.kids_start + e.kids_len {
                            stack.push(Phase::Enter(self.kids[k as usize]));
                        }
                    }
                }
                Phase::Exit(uid) => {
                    if computed[uid.0 as usize] {
                        continue;
                    }
                    let u = self.unions[uid.0 as usize];
                    let mut running = 0u64;
                    for i in u.start..u.start + u.len {
                        let e = self.entries[i as usize];
                        let mut cnt = 1u64;
                        for k in e.kids_start..e.kids_start + e.kids_len {
                            let kid = self.kids[k as usize];
                            debug_assert!(computed[kid.0 as usize]);
                            cnt = cnt.saturating_mul(union_total[kid.0 as usize]);
                        }
                        running = running.saturating_add(cnt);
                        entry_prefix[i as usize] = running;
                    }
                    union_total[uid.0 as usize] = running;
                    computed[uid.0 as usize] = true;
                }
            }
        }
        CountIndex {
            entry_prefix,
            union_total,
        }
    }
}

// ---------------------------------------------------------------------
// Traversal cursors
// ---------------------------------------------------------------------

/// Cheap copyable cursor over one union in an arena.
#[derive(Clone, Copy, Debug)]
pub struct UnionRef<'a> {
    arena: &'a Arena,
    id: UnionId,
}

impl<'a> UnionRef<'a> {
    pub fn id(&self) -> UnionId {
        self.id
    }

    fn rec(&self) -> UnionRec {
        self.arena.unions[self.id.0 as usize]
    }

    /// The f-tree node this union ranges over.
    pub fn node(&self) -> NodeId {
        self.rec().node
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.rec().len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.rec().len == 0
    }

    /// The `i`-th entry (entries are sorted by strictly ascending value).
    pub fn entry(&self, i: usize) -> EntryRef<'a> {
        let rec = self.rec();
        debug_assert!(i < rec.len as usize);
        EntryRef {
            arena: self.arena,
            node: rec.node,
            id: EntryId(rec.start + i as u32),
        }
    }

    /// Iterates the entries in order.
    pub fn entries(&self) -> impl ExactSizeIterator<Item = EntryRef<'a>> + 'a {
        let rec = self.rec();
        let arena = self.arena;
        (rec.start..rec.start + rec.len).map(move |i| EntryRef {
            arena,
            node: rec.node,
            id: EntryId(i),
        })
    }

    /// The entries' values as one contiguous slice of the node's value
    /// column, when the entries reference back-to-back column positions
    /// — true for freshly built unions, whose values are pushed in
    /// entry order. Rewrites that share or reorder values return
    /// `None`, and callers fall back to per-entry cursors. The slice is
    /// what the `fdb_core::agg` leaf kernels iterate.
    pub fn contiguous_values(&self) -> Option<&'a [Value]> {
        let rec = self.rec();
        let n = rec.len as usize;
        let start = rec.start as usize;
        let ents = &self.arena.entries[start..start + n];
        let Some(first) = ents.first() else {
            return Some(&[]);
        };
        let base = first.val as usize;
        if ents
            .iter()
            .enumerate()
            .any(|(i, e)| e.val as usize != base + i)
        {
            return None;
        }
        Some(&self.arena.cols[rec.node.0 as usize][base..base + n])
    }

    /// Binary search for an entry by value.
    pub fn find(&self, value: &Value) -> Option<usize> {
        let rec = self.rec();
        let col = &self.arena.cols[rec.node.0 as usize];
        let range = &self.arena.entries[rec.start as usize..(rec.start + rec.len) as usize];
        range
            .binary_search_by(|e| col[e.val as usize].cmp(value))
            .ok()
    }

    /// Number of singletons in this union and all its descendants
    /// (iterative walk over the index tables).
    pub fn singleton_count(&self) -> usize {
        let arena = self.arena;
        let mut total = 0usize;
        let mut stack: Vec<UnionId> = vec![self.id];
        while let Some(uid) = stack.pop() {
            let u = arena.unions[uid.0 as usize];
            total += u.len as usize;
            for i in u.start..u.start + u.len {
                let e = arena.entries[i as usize];
                for k in e.kids_start..e.kids_start + e.kids_len {
                    stack.push(arena.kids[k as usize]);
                }
            }
        }
        total
    }

    pub(crate) fn arena(&self) -> &'a Arena {
        self.arena
    }
}

/// Structural equality: same node, values and (recursively) children.
/// Arena-internal id layout is irrelevant.
impl PartialEq for UnionRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        if self.node() != other.node() || self.len() != other.len() {
            return false;
        }
        self.entries().zip(other.entries()).all(|(a, b)| {
            a.value() == b.value()
                && a.child_count() == b.child_count()
                && a.children().zip(b.children()).all(|(x, y)| x == y)
        })
    }
}

/// Cheap copyable cursor over one entry.
#[derive(Clone, Copy, Debug)]
pub struct EntryRef<'a> {
    arena: &'a Arena,
    /// Node of the owning union (locates the value column).
    node: NodeId,
    id: EntryId,
}

impl<'a> EntryRef<'a> {
    fn rec(&self) -> EntryRec {
        self.arena.entries[self.id.0 as usize]
    }

    /// The singleton value.
    pub fn value(&self) -> &'a Value {
        &self.arena.cols[self.node.0 as usize][self.rec().val as usize]
    }

    /// Number of child unions (f-tree child arity).
    pub fn child_count(&self) -> usize {
        self.rec().kids_len as usize
    }

    /// The `k`-th child union, in f-tree child order.
    pub fn child(&self, k: usize) -> UnionRef<'a> {
        UnionRef {
            arena: self.arena,
            id: self.child_id(k),
        }
    }

    /// The `k`-th child union's id.
    pub fn child_id(&self, k: usize) -> UnionId {
        let rec = self.rec();
        debug_assert!(k < rec.kids_len as usize);
        self.arena.kids[(rec.kids_start + k as u32) as usize]
    }

    /// Iterates the child unions in order.
    pub fn children(&self) -> impl ExactSizeIterator<Item = UnionRef<'a>> + 'a {
        let rec = self.rec();
        let arena = self.arena;
        (rec.kids_start..rec.kids_start + rec.kids_len).map(move |k| UnionRef {
            arena,
            id: arena.kids[k as usize],
        })
    }

    /// Iterates the child union ids in order.
    pub fn child_ids(&self) -> impl ExactSizeIterator<Item = UnionId> + 'a {
        let rec = self.rec();
        let arena = self.arena;
        (rec.kids_start..rec.kids_start + rec.kids_len).map(move |k| arena.kids[k as usize])
    }

    pub(crate) fn arena(&self) -> &'a Arena {
        self.arena
    }
}

// ---------------------------------------------------------------------
// Builder-side nested form
// ---------------------------------------------------------------------

/// One singleton value plus the factorisations of the child subtrees
/// (builder-side nested form; storage is the [`Arena`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    pub value: Value,
    /// One union per child of this entry's node, in f-tree child order.
    pub children: Vec<Union>,
}

/// A union of singleton-rooted products for one f-tree node
/// (builder-side nested form; storage is the [`Arena`]).
#[derive(Clone, Debug, PartialEq)]
pub struct Union {
    /// The f-tree node this union ranges over.
    pub node: NodeId,
    /// Entries sorted by strictly ascending value.
    pub entries: Vec<Entry>,
}

impl Union {
    /// An empty union for `node`.
    pub fn empty(node: NodeId) -> Self {
        Union {
            node,
            entries: Vec::new(),
        }
    }
}

/// Freezes a nested union into the arena.
fn freeze_union(arena: &mut Arena, u: Union) -> UnionId {
    let Union { node, entries } = u;
    let mut specs = Vec::with_capacity(entries.len());
    for Entry { value, children } in entries {
        let mut kid_ids = Vec::with_capacity(children.len());
        for c in children {
            kid_ids.push(freeze_union(arena, c));
        }
        specs.push(arena.entry(node, value, &kid_ids));
    }
    arena.push_union(node, &specs)
}

// ---------------------------------------------------------------------
// FRep
// ---------------------------------------------------------------------

/// Size report for a factorised representation (see [`FRep::stats`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FRepStats {
    /// Singletons reachable from the roots — the paper's size measure.
    pub singletons: usize,
    /// Union records in the arena (including unreachable leftovers of
    /// pruning operators).
    pub unions: usize,
    /// Entry records in the arena.
    pub entries: usize,
    /// Values across all node columns.
    pub values: usize,
    /// Physical arena footprint in bytes, capacity-aware.
    pub bytes: usize,
    /// Deep copies of untouched fragments avoided by the in-place
    /// staged-pipeline rewrites that produced this representation
    /// (0 for freshly built or legacy copy-transformed ones).
    pub copies_avoided: u64,
}

/// A factorised representation: an f-tree plus one arena-stored union
/// per root.
#[derive(Clone, Debug)]
pub struct FRep {
    ftree: FTree,
    arena: Arena,
    roots: Vec<UnionId>,
    /// Lazily built, memoised count annotations (see [`CountIndex`]).
    /// Cloning an `FRep` (or sharing it behind an `Arc`) shares the
    /// computed index; every structural transformation rebuilds the
    /// representation through [`FRep::from_arena`] and therefore starts
    /// from an empty cell — the invalidation rule is "new arena parts,
    /// new cell", with no manual bookkeeping.
    counts: OnceLock<Arc<CountIndex>>,
}

impl FRep {
    /// Wraps pre-built arena parts (crate-internal; operators use this).
    ///
    /// Empty root unions are re-tagged to the (possibly restructured)
    /// f-tree's root ids: an operator on an empty relation changes the
    /// tree but has no entries to carry the new node ids.
    pub(crate) fn from_arena(ftree: FTree, mut arena: Arena, roots: Vec<UnionId>) -> Self {
        let root_ids: Vec<NodeId> = ftree.roots().to_vec();
        for (&u, &rid) in roots.iter().zip(&root_ids) {
            if arena.union_len(u) == 0 && arena.urec(u).node != rid {
                arena.set_union_node(u, rid);
            }
        }
        FRep {
            ftree,
            arena,
            roots,
            counts: OnceLock::new(),
        }
    }

    /// Builds a representation from externally constructed nested unions,
    /// validating the structural invariants (sorted distinct entries,
    /// child arity, correct node tags, no empty inner unions).
    ///
    /// This is the constructor for callers that assemble factorisations
    /// directly — e.g. data generators that know the grouping structure
    /// and can emit the factorised form in linear time. Unlike the
    /// operator-internal constructor, no empty-root re-tagging happens
    /// before validation: a root union tagged with the wrong node is an
    /// error here, not something to paper over.
    pub fn new(ftree: FTree, roots: Vec<Union>) -> Result<FRep> {
        let mut arena = Arena::default();
        let root_ids = roots
            .into_iter()
            .map(|u| freeze_union(&mut arena, u))
            .collect();
        let rep = FRep {
            ftree,
            arena,
            roots: root_ids,
            counts: OnceLock::new(),
        };
        rep.check_invariants()?;
        Ok(rep)
    }

    /// The empty relation over `ftree`'s schema.
    pub fn empty(ftree: FTree) -> Self {
        let mut arena = Arena::default();
        let roots = ftree
            .roots()
            .iter()
            .map(|&r| arena.empty_union(r))
            .collect();
        FRep {
            ftree,
            arena,
            roots,
            counts: OnceLock::new(),
        }
    }

    /// Builds the factorisation of `rel` over `ftree` by recursive grouping.
    ///
    /// Every f-tree node must be an atomic single-attribute node and the
    /// exposed attributes must be exactly `rel`'s schema. For a *path*
    /// f-tree the result always represents `rel` exactly (a sorted trie);
    /// for branching f-trees it represents `rel` exactly iff `rel`
    /// satisfies the join dependencies the branching asserts (Prop. 1) —
    /// `debug_assert`ed here, and guaranteed by construction when the
    /// f-plan operators build the branching themselves.
    pub fn from_relation(rel: &Relation, ftree: FTree) -> Result<FRep> {
        Self::from_relation_with(rel, ftree, 1)
    }

    /// [`FRep::from_relation`] with construction partitioned over the
    /// leading union: the root-level grouping is computed once, then the
    /// child factorisations of the root entries are built into per-chunk
    /// sub-arenas on up to `threads` workers and spliced back in order.
    /// Grouping is order-deterministic (`BTreeMap`), so the result is
    /// structurally identical for every thread count; `threads <= 1` is
    /// exactly the serial build.
    pub fn from_relation_with(rel: &Relation, ftree: FTree, threads: usize) -> Result<FRep> {
        let mut col_of: BTreeMap<AttrId, usize> = BTreeMap::new();
        for n in ftree.live_nodes() {
            match &ftree.node(n).label {
                NodeLabel::Atomic(attrs) if attrs.len() == 1 => {
                    let pos = rel.schema().position(attrs[0]).ok_or_else(|| {
                        FdbError::Unresolved(format!(
                            "f-tree attribute {} missing from relation schema",
                            attrs[0]
                        ))
                    })?;
                    col_of.insert(attrs[0], pos);
                }
                _ => {
                    return Err(FdbError::InvalidOperator(
                        "from_relation needs single-attribute atomic nodes".into(),
                    ))
                }
            }
        }
        if col_of.len() != rel.arity() {
            return Err(FdbError::Unresolved(
                "f-tree does not cover the relation schema".into(),
            ));
        }
        let all_rows: Vec<usize> = (0..rel.len()).collect();
        let mut arena = Arena::default();
        let roots = ftree
            .roots()
            .iter()
            .map(|&r| build_union_par(rel, &ftree, r, &all_rows, &col_of, threads, &mut arena))
            .collect();
        let rep = FRep {
            ftree,
            arena,
            roots,
            counts: OnceLock::new(),
        };
        debug_assert!(rep.check_invariants().is_ok());
        Ok(rep)
    }

    /// The nesting structure.
    pub fn ftree(&self) -> &FTree {
        &self.ftree
    }

    pub(crate) fn ftree_mut(&mut self) -> &mut FTree {
        &mut self.ftree
    }

    /// Root union ids, parallel to `ftree().roots()`.
    pub fn root_ids(&self) -> &[UnionId] {
        &self.roots
    }

    /// Number of root unions.
    pub fn root_count(&self) -> usize {
        self.roots.len()
    }

    /// Cursor over the `i`-th root union.
    pub fn root(&self, i: usize) -> UnionRef<'_> {
        self.arena.union(self.roots[i])
    }

    /// Cursors over the root unions, parallel to `ftree().roots()`.
    pub fn root_unions(&self) -> impl ExactSizeIterator<Item = UnionRef<'_>> + '_ {
        self.roots.iter().map(|&r| self.arena.union(r))
    }

    /// Cursor over an arbitrary union id of this representation.
    pub fn union(&self, id: UnionId) -> UnionRef<'_> {
        self.arena.union(id)
    }

    /// Decomposes into parts (crate-internal).
    pub(crate) fn into_arena_parts(self) -> (FTree, Arena, Vec<UnionId>) {
        (self.ftree, self.arena, self.roots)
    }

    /// Split borrow for the delta mutators ([`crate::update`]): the
    /// f-tree read-only, the arena and root list writable. Drops any
    /// memoised count index first — a wrapper obtained by cloning an
    /// `Arc`-shared snapshot carries the snapshot's (possibly built)
    /// `OnceLock`, and a mutation must never leave a pre-mutation
    /// index behind. The snapshot itself keeps its own copy.
    pub(crate) fn update_parts(&mut self) -> (&FTree, &mut Arena, &mut Vec<UnionId>) {
        self.counts.take();
        (&self.ftree, &mut self.arena, &mut self.roots)
    }

    /// True when a count index is currently memoised (test hook for the
    /// staleness-invariant suite).
    pub fn has_count_index(&self) -> bool {
        self.counts.get().is_some()
    }

    /// Shared borrow of the arena (crate-internal; read-only walks).
    pub(crate) fn arena_ref(&self) -> &Arena {
        &self.arena
    }

    /// True if the represented relation is empty.
    pub fn is_empty(&self) -> bool {
        self.roots.iter().any(|&u| self.arena.union_len(u) == 0)
    }

    /// Total number of singletons — the paper's size measure for
    /// factorisations (§6 reports sizes in singletons). Counts only
    /// entries reachable from the roots.
    pub fn singleton_count(&self) -> usize {
        self.root_unions().map(|u| u.singleton_count()).sum()
    }

    /// The count annotations, built on first use and memoised for the
    /// lifetime of this representation: `Arc`-shared snapshots compute
    /// the index once and every clone reads the same buffers.
    pub(crate) fn count_index(&self) -> &Arc<CountIndex> {
        self.counts
            .get_or_init(|| Arc::new(self.arena.build_counts(&self.roots)))
    }

    /// Number of tuples in the represented relation. Served from the
    /// memoised `CountIndex` when one has been built (O(#roots));
    /// otherwise a quick recursive walk — cheap relative to enumeration,
    /// and avoiding the index's whole-arena allocation for one-off calls.
    pub fn tuple_count(&self) -> usize {
        if self.is_empty() {
            return 0;
        }
        if let Some(c) = self.counts.get() {
            let n: u128 = self
                .roots
                .iter()
                .map(|&r| c.total(r) as u128)
                .fold(1u128, u128::saturating_mul);
            return n.min(usize::MAX as u128) as usize;
        }
        self.root_unions().map(|u| count_tuples(&u)).product()
    }

    /// Size report: logical singleton count plus the arena's physical
    /// table sizes and byte footprint (capacity-aware).
    pub fn stats(&self) -> FRepStats {
        FRepStats {
            singletons: self.singleton_count(),
            unions: self.arena.unions.len(),
            entries: self.arena.entries.len(),
            values: self.arena.value_count(),
            bytes: self.memory_bytes(),
            copies_avoided: self.arena.copies_avoided(),
        }
    }

    /// Copies the live data into a fresh arena, shedding everything
    /// unreachable from the roots while **preserving sharing** (a
    /// union referenced from several parents is copied once, via a
    /// flat memo table): this is the one full arena pass the staged
    /// pipeline executor performs per plan, in place of the legacy
    /// one-copy-per-operator transforms.
    pub fn compact(self) -> FRep {
        let (tree, arena, roots) = self.into_arena_parts();
        let (arena, roots) = arena.compact(&roots);
        FRep::from_arena(tree, arena, roots)
    }

    /// Physical arena footprint in bytes (capacity-aware: counts table
    /// capacities and the heap behind every stored value).
    pub fn memory_bytes(&self) -> usize {
        self.arena.bytes()
    }

    /// Size-based arena footprint in bytes: stored records only, no
    /// allocator slack or value heap payloads, computed in O(#nodes)
    /// (see [`FRep::memory_bytes`] for the full capacity-aware figure).
    /// The executors difference this at stage boundaries to account
    /// intermediate allocation.
    pub fn data_bytes(&self) -> usize {
        self.arena.bytes_used()
    }

    /// Raw copies-avoided counter of the arena — executors snapshot it
    /// before and after a run to report the per-plan delta.
    pub(crate) fn stats_counter_base(&self) -> u64 {
        self.arena.copies_avoided()
    }

    /// True when most physical entry records are unreachable garbage
    /// (superseded by in-place rewrites): the staged executor's cue
    /// that a compaction pass pays for itself.
    pub(crate) fn garbage_dominated(&self) -> bool {
        let live = self.arena.live_entry_count(&self.roots);
        self.arena.entries.len() > 2 * live
    }

    /// Structural data equality: same root unions (node, values, shape),
    /// ignoring arena-internal id layout. The f-trees are compared via
    /// their root lists implicitly; callers wanting full equivalence
    /// should also compare [`FRep::ftree`].
    pub fn same_data(&self, other: &FRep) -> bool {
        self.roots.len() == other.roots.len()
            && self
                .root_unions()
                .zip(other.root_unions())
                .all(|(a, b)| a == b)
    }

    /// Output schema in f-tree pre-order: every atomic class contributes
    /// all its attributes, every aggregate node its output columns.
    pub fn schema(&self) -> Schema {
        Schema::new(self.ftree.all_attrs())
    }

    /// Flattens into a relation laid out per [`FRep::schema`].
    ///
    /// This is the `FDB` (flat output) mode of the experiments; `FDB f/o`
    /// keeps the `FRep`.
    pub fn flatten(&self) -> Relation {
        let schema = self.schema();
        let mut out = Relation::empty(schema);
        self.for_each_tuple(|row| {
            out.push_row(row);
        });
        out
    }

    /// Invokes `f` once per represented tuple, laid out per
    /// [`FRep::schema`]. Implemented as an iterative cursor walk (the
    /// odometer of [`crate::enumerate`]) — no recursion over the data.
    pub fn for_each_tuple(&self, mut f: impl FnMut(&[Value])) {
        let spec = crate::enumerate::EnumSpec::all_preorder(&self.ftree);
        let mut it = crate::enumerate::TupleIter::new(self, &spec)
            .expect("pre-order visit sequence is parent-first");
        while let Some(row) = it.next_row() {
            f(row);
        }
    }

    /// Structural invariant check (used by tests and `debug_assert`s).
    pub fn check_invariants(&self) -> Result<()> {
        if self.roots.len() != self.ftree.roots().len() {
            return Err(FdbError::InvalidOperator(
                "root union count mismatch".into(),
            ));
        }
        for (u, &r) in self.root_unions().zip(self.ftree.roots()) {
            self.check_union(u, r, true)?;
        }
        Ok(())
    }

    fn check_union(&self, u: UnionRef<'_>, node: NodeId, at_root: bool) -> Result<()> {
        if u.node() != node {
            return Err(FdbError::InvalidOperator(format!(
                "union node {:?} does not match f-tree node {:?}",
                u.node(),
                node
            )));
        }
        if !at_root && u.is_empty() {
            return Err(FdbError::InvalidOperator(
                "empty union below the roots".into(),
            ));
        }
        let children = &self.ftree.node(node).children;
        let mut prev: Option<&Value> = None;
        for e in u.entries() {
            if let Some(p) = prev {
                if p >= e.value() {
                    return Err(FdbError::InvalidOperator(format!(
                        "union entries not strictly ascending at {node:?}"
                    )));
                }
            }
            prev = Some(e.value());
            if e.child_count() != children.len() {
                return Err(FdbError::InvalidOperator(format!(
                    "entry has {} child unions, f-tree node has {} children",
                    e.child_count(),
                    children.len()
                )));
            }
            for (cu, &cn) in e.children().zip(children) {
                self.check_union(cu, cn, false)?;
            }
        }
        Ok(())
    }

    /// Renders the factorisation in the paper's nested notation.
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, u) in self.root_unions().enumerate() {
            if i > 0 {
                out.push_str(" × ");
            }
            self.display_union(u, catalog, &mut out);
        }
        out
    }

    fn display_union(&self, u: UnionRef<'_>, catalog: &Catalog, out: &mut String) {
        if u.len() != 1 {
            out.push('(');
        }
        for (i, e) in u.entries().enumerate() {
            if i > 0 {
                out.push_str(" ∪ ");
            }
            let label = &self.ftree.node(u.node()).label;
            let name = match label {
                NodeLabel::Atomic(attrs) => catalog.name(attrs[0]).to_string(),
                NodeLabel::Agg(l) => {
                    let fs: Vec<String> = l.funcs.iter().map(|f| f.display(catalog)).collect();
                    fs.join(",")
                }
            };
            let _ = write!(out, "⟨{name}:{}⟩", e.value());
            for cu in e.children() {
                out.push_str(" × ");
                self.display_union(cu, catalog, out);
            }
        }
        if u.len() != 1 {
            out.push(')');
        }
    }
}

/// Extracts the output value of `attr` from an entry of `label`.
pub fn value_for_attr(label: &NodeLabel, value: &Value, attr: AttrId) -> Option<Value> {
    match label {
        NodeLabel::Atomic(attrs) => attrs.contains(&attr).then(|| value.clone()),
        NodeLabel::Agg(l) => {
            let i = l.outputs.iter().position(|&o| o == attr)?;
            if l.arity() == 1 {
                Some(value.clone())
            } else {
                value.as_tup().map(|t| t[i].clone())
            }
        }
    }
}

fn count_tuples(u: &UnionRef<'_>) -> usize {
    u.entries()
        .map(|e| e.children().map(|c| count_tuples(&c)).product::<usize>())
        .sum()
}

// ---------------------------------------------------------------------
// Construction from relations
// ---------------------------------------------------------------------

/// Builds one union serially into `arena`, reusing shared scratch
/// buffers so the hot path allocates only the grouping map per level.
fn build_union(
    rel: &Relation,
    ftree: &FTree,
    node: NodeId,
    rows: &[usize],
    col_of: &BTreeMap<AttrId, usize>,
    arena: &mut Arena,
    kid_scratch: &mut Vec<UnionId>,
    spec_scratch: &mut Vec<EntrySpec>,
) -> UnionId {
    let (col, children) = node_shape(ftree, node, col_of);
    let groups = group_rows(rel, col, rows);
    let spec_base = spec_scratch.len();
    for (value, group) in groups {
        let kid_base = kid_scratch.len();
        for &c in children {
            let cid = build_union(
                rel,
                ftree,
                c,
                &group,
                col_of,
                arena,
                kid_scratch,
                spec_scratch,
            );
            kid_scratch.push(cid);
        }
        let spec = arena.entry(node, value, &kid_scratch[kid_base..]);
        kid_scratch.truncate(kid_base);
        spec_scratch.push(spec);
    }
    let out = arena.push_union(node, &spec_scratch[spec_base..]);
    spec_scratch.truncate(spec_base);
    out
}

fn node_shape<'t>(
    ftree: &'t FTree,
    node: NodeId,
    col_of: &BTreeMap<AttrId, usize>,
) -> (usize, &'t [NodeId]) {
    let attr = match &ftree.node(node).label {
        NodeLabel::Atomic(attrs) => attrs[0],
        NodeLabel::Agg(_) => unreachable!("checked by from_relation"),
    };
    (col_of[&attr], &ftree.node(node).children)
}

fn group_rows(rel: &Relation, col: usize, rows: &[usize]) -> BTreeMap<Value, Vec<usize>> {
    let mut groups: BTreeMap<Value, Vec<usize>> = BTreeMap::new();
    for &r in rows {
        groups.entry(rel.row(r)[col].clone()).or_default().push(r);
    }
    groups
}

/// Builds one union, fanning chunks of the leading union's groups out to
/// `threads` workers, each building a private sub-arena that is spliced
/// back in group order. Recursive builds below the top level stay serial
/// — the root fan-out already exposes all the parallelism the data has.
fn build_union_par(
    rel: &Relation,
    ftree: &FTree,
    node: NodeId,
    rows: &[usize],
    col_of: &BTreeMap<AttrId, usize>,
    threads: usize,
    arena: &mut Arena,
) -> UnionId {
    let (col, children) = node_shape(ftree, node, col_of);
    if threads <= 1 || children.is_empty() {
        let mut kid_scratch = Vec::new();
        let mut spec_scratch = Vec::new();
        return build_union(
            rel,
            ftree,
            node,
            rows,
            col_of,
            arena,
            &mut kid_scratch,
            &mut spec_scratch,
        );
    }
    let groups: Vec<(Value, Vec<usize>)> = group_rows(rel, col, rows).into_iter().collect();
    // Morsel-granularity chunks (~4× threads): a giant group occupies
    // its worker for one small chunk while the rest are stolen, instead
    // of serialising a whole static 1/threads share behind it.
    let chunks = fdb_exec::split_morsels(groups, threads);
    /// One worker's output: its private arena plus, per group, the value
    /// and the child union ids within that arena.
    type ChunkBuild = (Arena, Vec<(Value, Vec<UnionId>)>);
    let built: Vec<ChunkBuild> = fdb_exec::parallel_map(threads, chunks, |chunk| {
        let mut sub = Arena::default();
        let mut kid_scratch = Vec::new();
        let mut spec_scratch = Vec::new();
        let mut entries = Vec::with_capacity(chunk.len());
        for (value, group) in chunk {
            let kids: Vec<UnionId> = children
                .iter()
                .map(|&c| {
                    build_union(
                        rel,
                        ftree,
                        c,
                        &group,
                        col_of,
                        &mut sub,
                        &mut kid_scratch,
                        &mut spec_scratch,
                    )
                })
                .collect();
            entries.push((value, kids));
        }
        (sub, entries)
    });
    let mut specs = Vec::new();
    for (sub, entries) in built {
        let off = arena.append(sub, 0);
        for (value, kids) in entries {
            let ids: Vec<UnionId> = kids.iter().map(|k| UnionId(k.0 + off)).collect();
            specs.push(arena.entry(node, value, &ids));
        }
    }
    arena.push_union(node, &specs)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-column relation of Example 3.
    fn example3() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let a = c.intern("A");
        let b = c.intern("B");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (1, 3), (2, 1), (2, 2), (2, 3)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        (c, rel)
    }

    #[test]
    fn path_factorisation_round_trips() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let t = FTree::path(&[a, b]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        rep.check_invariants().unwrap();
        assert_eq!(rep.flatten().canonical(), rel.canonical());
        assert_eq!(rep.tuple_count(), 6);
        // Trie: 2 A-singletons + 2×3 B-singletons.
        assert_eq!(rep.singleton_count(), 8);
    }

    #[test]
    fn count_index_totals_agree_with_tuple_count() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let slow = rep.tuple_count(); // counts lazily, index not built yet
        let idx = rep.count_index();
        let fast: u64 = rep.root_ids().iter().map(|&r| idx.total(r)).product();
        assert_eq!(fast as usize, slow);
        assert_eq!(rep.tuple_count(), slow); // fast path agrees
    }

    #[test]
    fn count_index_is_memoised_and_shared_by_clones() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let first = Arc::as_ptr(rep.count_index());
        assert_eq!(first, Arc::as_ptr(rep.count_index()));
        let cloned = rep.clone();
        assert_eq!(first, Arc::as_ptr(cloned.count_index()));
    }

    #[test]
    fn count_index_per_entry_prefixes() {
        // Forest {A} {B}: each of A's 2 entries covers 1 tuple of its own
        // union; same for B's 3. cum_before walks them in either
        // direction.
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let idx = rep.count_index().clone();
        let roots = rep.root_ids().to_vec();
        let arena = rep.arena_ref();
        let totals: Vec<u64> = roots.iter().map(|&r| idx.total(r)).collect();
        assert_eq!(totals.iter().product::<u64>(), 6);
        for &r in &roots {
            let rec = arena.urec(r);
            let len = rec.len as usize;
            for dir in [fdb_relational::SortDir::Asc, fdb_relational::SortDir::Desc] {
                assert_eq!(idx.cum_before(rec, 0, dir), 0);
                for l in 1..len {
                    // Every entry here covers exactly one tuple.
                    assert_eq!(idx.cum_before(rec, l, dir), l as u64);
                }
            }
            for phys in 0..len {
                assert_eq!(idx.entry_count_at(rec, phys), 1);
            }
        }
    }

    #[test]
    fn independent_branches_factorise_succinctly() {
        // Example 3: A and B are independent, so the forest {A} {B}
        // represents R with 2 + 3 = 5 singletons instead of 12.
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        assert_eq!(rep.singleton_count(), 5);
        assert_eq!(rep.flatten().canonical(), rel.canonical());
    }

    #[test]
    fn parallel_construction_matches_serial() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let z = c.intern("z");
        let rel = Relation::from_rows(
            Schema::new(vec![x, y, z]),
            (0..120).map(|i| {
                vec![
                    Value::Int(i % 11),
                    Value::Int((i * 3) % 7),
                    Value::Int(i % 5),
                ]
            }),
        )
        .canonical();
        let serial = FRep::from_relation(&rel, FTree::path(&[x, y, z])).unwrap();
        for threads in [2, 3, 4, 8] {
            let par = FRep::from_relation_with(&rel, FTree::path(&[x, y, z]), threads).unwrap();
            par.check_invariants().unwrap();
            assert!(par.same_data(&serial), "threads={threads}");
        }
    }

    #[test]
    fn empty_relation_representation() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let empty = Relation::empty(rel.schema().clone());
        let rep = FRep::from_relation(&empty, FTree::path(&[a, b])).unwrap();
        assert!(rep.is_empty());
        assert_eq!(rep.tuple_count(), 0);
        assert_eq!(rep.singleton_count(), 0);
        assert!(rep.flatten().is_empty());
    }

    #[test]
    fn branching_tree_with_valid_join_dependency() {
        // pizza → {date, item}: valid when date and item are independent
        // given pizza.
        let mut c = Catalog::new();
        let pizza = c.intern("pizza");
        let date = c.intern("date");
        let item = c.intern("item");
        let rel = Relation::from_rows(
            Schema::new(vec![pizza, date, item]),
            [
                ("Hawaii", 1, "base"),
                ("Hawaii", 1, "ham"),
                ("Hawaii", 2, "base"),
                ("Hawaii", 2, "ham"),
                ("Margherita", 1, "base"),
            ]
            .into_iter()
            .map(|(p, d, i)| vec![Value::str(p), Value::Int(d), Value::str(i)]),
        );
        let mut t = FTree::new();
        let np = t.add_node(NodeLabel::Atomic(vec![pizza]), None);
        t.add_node(NodeLabel::Atomic(vec![date]), Some(np));
        t.add_node(NodeLabel::Atomic(vec![item]), Some(np));
        t.add_dep([pizza, date]);
        t.add_dep([pizza, item]);
        let rep = FRep::from_relation(&rel, t).unwrap();
        assert_eq!(rep.flatten().canonical(), rel.canonical());
        // 2 pizzas + (2 dates + 2 items) + (1 date + 1 item).
        assert_eq!(rep.singleton_count(), 8);
    }

    #[test]
    fn sortedness_invariant_detected() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        // Rebuild by hand with the order corrupted: `new` must reject it.
        let mut t2 = FTree::new();
        let na = t2.add_node(NodeLabel::Atomic(vec![a]), None);
        let bad = Union {
            node: na,
            entries: vec![
                Entry {
                    value: Value::Int(2),
                    children: vec![],
                },
                Entry {
                    value: Value::Int(1),
                    children: vec![],
                },
            ],
        };
        assert!(FRep::new(t2, vec![bad]).is_err());
        let _ = rep;
    }

    #[test]
    fn find_binary_search() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let u = rep.root(0);
        assert_eq!(u.find(&Value::Int(2)), Some(1));
        assert_eq!(u.find(&Value::Int(9)), None);
    }

    #[test]
    fn display_uses_paper_notation() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let mut t = FTree::new();
        t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(NodeLabel::Atomic(vec![b]), None);
        let rep = FRep::from_relation(&rel, t).unwrap();
        let s = rep.display(&c);
        assert!(s.contains("⟨A:1⟩ ∪ ⟨A:2⟩"));
        assert!(s.contains('×'));
    }

    #[test]
    fn flatten_layout_matches_schema() {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let rel = Relation::from_rows(
            Schema::new(vec![y, x]), // note: relation order differs
            [(10, 1), (20, 2)]
                .into_iter()
                .map(|(b, a)| vec![Value::Int(b), Value::Int(a)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[x, y])).unwrap();
        let schema = rep.schema();
        assert_eq!(schema.attrs(), &[x, y]);
        let flat = rep.flatten();
        assert_eq!(flat.row(0), &[Value::Int(1), Value::Int(10)]);
    }

    #[test]
    fn stats_report_physical_footprint() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let s = rep.stats();
        assert_eq!(s.singletons, 8);
        assert_eq!(s.entries, 8); // freshly built: no garbage
        assert_eq!(s.values, 8);
        assert_eq!(s.unions, 3); // A-union + two B-unions
        assert!(s.bytes >= 8 * (std::mem::size_of::<Value>() + 12));
        assert_eq!(rep.memory_bytes(), s.bytes);
    }

    #[test]
    fn arena_append_rebases_ids_and_columns() {
        let (c, rel) = example3();
        let a = c.lookup("A").unwrap();
        let b = c.lookup("B").unwrap();
        let one = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let two = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        let (_, mut arena, mut roots) = one.into_arena_parts();
        let (tree2, sub, sub_roots) = two.into_arena_parts();
        let off = arena.append(sub, 0);
        roots.extend(sub_roots.iter().map(|r| UnionId(r.0 + off)));
        // Both copies must still flatten to the same data.
        let u0 = arena.union(roots[0]);
        let u1 = arena.union(roots[1]);
        assert!(u0 == u1);
        assert_eq!(u1.singleton_count(), 8);
        let _ = tree2;
    }
}
