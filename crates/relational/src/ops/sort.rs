//! Ordering and limit: the `oG` and `λk` operators (§2).

use crate::relation::{Relation, SortKey};

/// Returns `rel` sorted lexicographically by `keys` (stable).
pub fn order_by(rel: &Relation, keys: &[SortKey]) -> Relation {
    let mut out = rel.clone();
    out.sort_by_keys(keys);
    out
}

/// [`order_by`] using the parallel stable sort; identical output for
/// every thread count.
pub fn order_by_par(rel: &Relation, keys: &[SortKey], threads: usize) -> Relation {
    let mut out = rel.clone();
    out.sort_by_keys_par(keys, threads);
    out
}

/// Returns the first `k` tuples in the relation's current order (`λk`).
pub fn limit(rel: &Relation, k: usize) -> Relation {
    let mut out = Relation::empty(rel.schema().clone());
    for row in rel.rows().take(k) {
        out.push_row(row);
    }
    out
}

/// One page of the relation's current order: skip the first `skip`
/// tuples, then keep at most `k` (`k = None` keeps everything after the
/// skip — PostgreSQL's bare `OFFSET`).
///
/// This is the relational ground-truth twin of the factorised engine's
/// pagination strategies: whatever strategy FDB picks (direct access,
/// (m+k)-heap, collect-sort-cut), its output must be byte-identical to a
/// stable sort followed by this operator.
pub fn page(rel: &Relation, skip: usize, k: Option<usize>) -> Relation {
    let mut out = Relation::empty(rel.schema().clone());
    let it = rel.rows().skip(skip);
    match k {
        Some(k) => {
            for row in it.take(k) {
                out.push_row(row);
            }
        }
        None => {
            for row in it {
                out.push_row(row);
            }
        }
    }
    out
}

/// `λk ∘ oG` fused: the first `k` tuples in sorted order.
///
/// Kept as full-sort-then-cut on purpose: this mirrors what the relational
/// engines in the paper do for `ORDER BY … LIMIT k` (Fig. 8 shows they pay
/// the full sort), whereas FDB answers the same query with restructuring
/// plus constant-delay enumeration.
pub fn top_k(rel: &Relation, keys: &[SortKey], k: usize) -> Relation {
    limit(&order_by(rel, keys), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::schema::Schema;
    use crate::value::Value;

    fn sample() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(3, 1), (1, 2), (2, 3), (1, 1)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        (c, rel)
    }

    #[test]
    fn order_by_multiple_keys() {
        let (c, rel) = sample();
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let out = order_by(&rel, &[SortKey::asc(a), SortKey::asc(b)]);
        let rows: Vec<(i64, i64)> = out
            .rows()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 1), (1, 2), (2, 3), (3, 1)]);
    }

    #[test]
    fn descending_order() {
        let (c, rel) = sample();
        let a = c.lookup("a").unwrap();
        let out = order_by(&rel, &[SortKey::desc(a)]);
        let firsts: Vec<i64> = out.rows().map(|r| r[0].as_int().unwrap()).collect();
        assert_eq!(firsts, vec![3, 2, 1, 1]);
    }

    #[test]
    fn limit_truncates() {
        let (_, rel) = sample();
        assert_eq!(limit(&rel, 2).len(), 2);
        assert_eq!(limit(&rel, 99).len(), 4);
        assert_eq!(limit(&rel, 0).len(), 0);
    }

    #[test]
    fn page_skips_then_truncates() {
        let (_, rel) = sample();
        assert_eq!(page(&rel, 0, Some(2)).len(), 2);
        assert_eq!(page(&rel, 1, Some(2)).len(), 2);
        assert_eq!(page(&rel, 3, Some(5)).len(), 1);
        assert_eq!(page(&rel, 4, Some(1)).len(), 0);
        assert_eq!(page(&rel, 99, None).len(), 0);
        assert_eq!(page(&rel, 1, None).len(), 3);
        // page(skip=0, Some(k)) ≡ limit(k)
        assert_eq!(
            page(&rel, 0, Some(3)).canonical(),
            limit(&rel, 3).canonical()
        );
        // The kept rows really are the middle of the input order.
        let mid = page(&rel, 1, Some(2));
        let want: Vec<Vec<Value>> = rel.rows().skip(1).take(2).map(|r| r.to_vec()).collect();
        let got: Vec<Vec<Value>> = mid.rows().map(|r| r.to_vec()).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn top_k_is_sorted_prefix() {
        let (c, rel) = sample();
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let out = top_k(&rel, &[SortKey::asc(a), SortKey::asc(b)], 2);
        let rows: Vec<(i64, i64)> = out
            .rows()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 1), (1, 2)]);
    }
}
