//! `any::<T>()` — canonical strategies for plain types.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::RngCore;

/// Types with a canonical strategy.
pub trait Arbitrary: Sized {
    type Strategy: Strategy<Value = Self>;

    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `A`.
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

/// Strategy generating any value of a primitive type from raw bits.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Strategy for AnyPrimitive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }

        impl Arbitrary for $ty {
            type Strategy = AnyPrimitive<$ty>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive::default()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}

impl Strategy for AnyPrimitive<char> {
    type Value = char;

    fn generate(&self, rng: &mut TestRng) -> char {
        crate::string::pattern(".{1,1}")
            .generate(rng)
            .chars()
            .next()
            .unwrap_or('a')
    }
}

impl Arbitrary for char {
    type Strategy = AnyPrimitive<char>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive::default()
    }
}
