//! Figure 6 — AGG queries on flat input, no materialised view
//! (Experiment 2).
//!
//! Every engine starts from the three base relations. FDB factorises on
//! the fly (product + merge selections + partial aggregation); the
//! relational baselines run both their own lazy plans and the manually
//! optimised eager-aggregation plans ("man" in the paper, automated here
//! by the Yan–Larson planner).
//!
//! `cargo run --release -p fdb-bench --bin fig6 -- --scale 4`

use fdb_bench::queries::flat_input_agg_queries;
use fdb_bench::{median_secs, Args, BenchSetup};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(2, 2);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Figure 6: AGG queries on flat input (no materialised view) at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: false,
        threads: args.threads,
    }
    .build();
    let attrs = env.attrs;
    let queries = flat_input_agg_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    for q in &queries {
        let (n, t) = median_secs(args.repeats, || env.run_fdb_fo(&q.task));
        emit.row("6", scale, q.name, "FDB f/o", t, &format!("singletons={n}"));
        let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
        emit.row("6", scale, q.name, "FDB", t, &format!("rows={n}"));
        for (engine, strategy) in [
            ("RDB sort", GroupStrategy::Sort),
            ("RDB hash", GroupStrategy::Hash),
        ] {
            let (n, t) = median_secs(args.repeats, || {
                env.run_rdb(&q.task, strategy, PlanMode::Naive)
            });
            emit.row("6", scale, q.name, engine, t, &format!("rows={n}"));
            let (n, t) = median_secs(args.repeats, || {
                env.run_rdb(&q.task, strategy, PlanMode::Eager)
            });
            emit.row(
                "6",
                scale,
                q.name,
                &format!("{engine} man"),
                t,
                &format!("rows={n}"),
            );
        }
    }
    emit.finish();
}
