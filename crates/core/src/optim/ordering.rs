//! Cost-based choice among the physical `ORDER BY` strategies.
//!
//! Three ways exist to produce ordered (and LIMIT-truncated) output from
//! a factorisation:
//!
//! 1. **restructure + stream** — swap until Theorem 2 holds, then
//!    enumerate with constant delay (§4.2). Pays the swaps' intermediate
//!    representations up front; streaming `k` rows afterwards is free.
//! 2. **collect-sort-cut** — enumerate the unrestructured result into a
//!    flat relation, stable-sort, truncate. Pays `O(N · log N)` time and
//!    `O(N)` memory in the *flat* result size `N`.
//! 3. **heap top-k** ([`crate::topk`]) — fold the unordered enumeration
//!    through a size-`k` heap. Pays `O(N · log k)` time and `O(k)`
//!    memory; needs a LIMIT to be meaningful.
//!
//! The chooser prices each strategy in the paper's currency — the size
//! bounds of the representations a plan materialises ([`tree_cost`]) plus
//! the enumeration-side work — and picks the cheapest. Estimates use only
//! the f-tree and the base-relation [`Stats`], so the choice is
//! deterministic across executors and thread counts (a property the
//! differential suites rely on).

use crate::ftree::{FTree, NodeLabel};
use crate::optim::cost::{tree_cost, Stats};
use crate::plan::{apply_to_tree, FPlan};
use fdb_relational::AttrId;

/// Which physical ordering strategy the cost model selects.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum OrderChoice {
    /// Realise the order in the factorisation and stream (Theorem 2).
    Stream,
    /// Bounded-heap top-k over the unrestructured enumeration.
    Heap,
    /// Materialise, stable-sort, truncate.
    Sort,
}

/// Everything the chooser looks at.
#[derive(Clone, Copy, Debug)]
pub struct OrderCostInputs {
    /// Cost of the plan that realises the order in-tree ([`plan_cost`]),
    /// or `None` when no such plan exists (e.g. ordering by a derived
    /// `avg` column, or consolidation failed).
    pub stream_plan_cost: Option<f64>,
    /// Cost of the plan that leaves the order unrealised.
    pub unordered_plan_cost: f64,
    /// Estimated enumerated rows of the unordered plan ([`estimate_rows`]).
    pub est_rows: f64,
    /// The LIMIT, if any.
    pub k: Option<usize>,
    /// Output row width in columns (weights the per-row materialisation).
    pub row_width: usize,
}

/// Picks the cheapest strategy. Without a LIMIT the in-tree realisation
/// always wins when it exists (the full output must be produced anyway,
/// and streaming it sorted beats an extra `O(N · log N)` sort); with a
/// LIMIT the swap overhead competes against `N · log k` heap work and
/// `N · log N + N` sort work.
pub fn choose_order_strategy(inputs: &OrderCostInputs) -> OrderChoice {
    let w = inputs.row_width.max(1) as f64;
    let lg = |x: f64| x.max(2.0).log2();
    let n = inputs.est_rows.max(1.0);
    let Some(k) = inputs.k else {
        return match inputs.stream_plan_cost {
            Some(_) => OrderChoice::Stream,
            None => OrderChoice::Sort,
        };
    };
    let kf = (k as f64).min(n);
    // Each enumerated row costs its width (the emit into the row buffer)
    // before the heap can reject it or the sort can store it — charging
    // only the comparison term would overprice a swap (one materialised
    // record ≈ one emitted value, in the size-bound currency) and push
    // the chooser to a heap pass even when streaming after one cheap
    // swap is several times faster end to end.
    let heap = inputs.unordered_plan_cost + n * (lg(kf + 1.0) + w) + kf * w;
    let sort = inputs.unordered_plan_cost + n * (lg(n) + w) + n * w;
    let flat = if heap <= sort {
        (OrderChoice::Heap, heap)
    } else {
        (OrderChoice::Sort, sort)
    };
    match inputs.stream_plan_cost {
        Some(cs) if cs + kf * w <= flat.1 => OrderChoice::Stream,
        _ => flat.0,
    }
}

/// Prices a plan by the representations it materialises: the sum of the
/// f-tree size bound after every operator (the paper's §5.1 metric, also
/// used by the greedy-vs-exhaustive ablation).
pub fn plan_cost(tree0: &FTree, plan: &FPlan, stats: &Stats) -> f64 {
    let mut tree = tree0.clone();
    let mut total = 0.0;
    for op in &plan.ops {
        if apply_to_tree(&mut tree, op).is_err() {
            // A plan that cannot even be simulated prices as unusable.
            return f64::MAX;
        }
        total += tree_cost(&tree, stats);
    }
    total
}

/// Estimated number of enumerated output rows for a result over `tree`:
/// the tight flat-size bound from the fractional edge cover of the
/// relevant attribute classes — the group-by classes for grouped
/// aggregates (one row per group), all atomic classes otherwise.
pub fn estimate_rows(tree: &FTree, stats: &Stats, group_by: &[AttrId], is_aggregate: bool) -> f64 {
    if is_aggregate && group_by.is_empty() {
        return 1.0;
    }
    let mut classes: Vec<Vec<AttrId>> = Vec::new();
    if is_aggregate {
        let mut nodes = Vec::new();
        for &g in group_by {
            match tree.node_of_attr(g) {
                Some(n) if !nodes.contains(&n) => {
                    nodes.push(n);
                    if let NodeLabel::Atomic(class) = &tree.node(n).label {
                        classes.push(class.clone());
                    } else {
                        classes.push(vec![g]);
                    }
                }
                Some(_) => {}
                // Defensive: an attribute the plan lost prices as its own
                // singleton class.
                None => classes.push(vec![g]),
            }
        }
    } else {
        for n in tree.live_nodes() {
            if let NodeLabel::Atomic(class) = &tree.node(n).label {
                classes.push(class.clone());
            }
        }
    }
    stats.bound_for_classes(&classes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(stream: Option<f64>, unordered: f64, n: f64, k: Option<usize>) -> OrderCostInputs {
        OrderCostInputs {
            stream_plan_cost: stream,
            unordered_plan_cost: unordered,
            est_rows: n,
            k,
            row_width: 3,
        }
    }

    #[test]
    fn no_limit_prefers_stream_when_realisable() {
        assert_eq!(
            choose_order_strategy(&inputs(Some(1e9), 1.0, 1e6, None)),
            OrderChoice::Stream
        );
        assert_eq!(
            choose_order_strategy(&inputs(None, 1.0, 1e6, None)),
            OrderChoice::Sort
        );
    }

    #[test]
    fn expensive_restructuring_loses_to_heap_under_limit() {
        // Swaps would materialise ~100x the unordered plan: with a small
        // k the heap pass over N rows is far cheaper.
        let choice = choose_order_strategy(&inputs(Some(1e8), 1e6, 1e5, Some(10)));
        assert_eq!(choice, OrderChoice::Heap);
    }

    #[test]
    fn free_realisation_beats_heap_under_limit() {
        // The order is already realised (no extra swaps: equal plan
        // costs): streaming k rows beats an N-row heap pass.
        let choice = choose_order_strategy(&inputs(Some(1e4), 1e4, 1e5, Some(10)));
        assert_eq!(choice, OrderChoice::Stream);
    }

    #[test]
    fn heap_beats_sort_whenever_k_is_small() {
        for n in [10.0, 1e3, 1e6] {
            let choice = choose_order_strategy(&inputs(None, 0.0, n, Some(5)));
            assert_eq!(choice, OrderChoice::Heap, "n={n}");
        }
    }

    #[test]
    fn estimate_rows_bounds_groups() {
        use fdb_relational::AttrId;
        let a = AttrId(0);
        let b = AttrId(1);
        let mut stats = Stats::new();
        stats.add_relation([a, b], 100);
        let tree = FTree::path(&[a, b]);
        // Grouping by `a`: at most 100 groups.
        let g = estimate_rows(&tree, &stats, &[a], true);
        assert!((g - 100.0).abs() < 1e-6, "got {g}");
        // Full aggregation: one row.
        assert_eq!(estimate_rows(&tree, &stats, &[], true), 1.0);
        // SPJ: the flat bound.
        assert!(estimate_rows(&tree, &stats, &[], false) >= 100.0);
    }
}
