//! # fdb-relational — the relational substrate
//!
//! Flat-relation types and baseline main-memory engines used by the FDB
//! reproduction:
//!
//! * [`Value`], [`Catalog`]/[`AttrId`], [`Schema`], [`Relation`] — the data
//!   model shared with the factorised engine (`fdb-core`);
//! * [`ops`] — physical operators (selection, projection, hash / sort-merge
//!   joins, grouped aggregation with sort- and hash-based strategies,
//!   ordering, limit);
//! * [`planner`] — lazy ("naive") and eager (Yan–Larson) aggregation
//!   planners over [`planner::JoinAggTask`]s;
//! * [`engine::RdbEngine`] — the RDB baseline of the paper's Experiment 5,
//!   configurable to model SQLite (sort-based grouping) or PostgreSQL
//!   (hash-based grouping).
//!
//! The factorised query engine lives in `fdb-core`; this crate is the
//! comparison substrate and the source of ground-truth results in tests.

pub mod agg;
pub mod attr;
pub mod csv;
pub mod engine;
pub mod error;
pub mod expr;
pub mod ops;
pub mod plan;
pub mod planner;
pub mod relation;
pub mod schema;
pub mod value;

pub use agg::{AggFunc, AggSpec};
pub use attr::{AttrId, Catalog};
pub use error::RelError;
pub use expr::{CmpOp, Predicate};
pub use ops::GroupStrategy;
pub use relation::{dedup_sort_keys, Relation, SortDir, SortKey};
pub use schema::Schema;
pub use value::{Number, Value};
