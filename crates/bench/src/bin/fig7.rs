//! Figure 7 — AGG+ORD queries on the (factorised) materialised view
//! (Experiment 3).
//!
//! Q6–Q9: ordering should add little to the aggregate's cost for FDB —
//! Q6's order by customer is already realised by Q2's result structure,
//! Q7 re-orders by the aggregation result via consolidation plus one swap,
//! and Q8/Q9 are two different orders over Q3's result.
//!
//! `cargo run --release -p fdb-bench --bin fig7 -- --scale 8`

use fdb_bench::{median_secs, paper_queries, Args, BenchSetup, QueryClass};
use fdb_relational::engine::PlanMode;
use fdb_relational::GroupStrategy;
use fdb_workload::orders::OrdersConfig;

fn main() {
    let args = Args::parse(4, 4);
    let scale = args.scale;
    let mut emit = args.emitter();
    println!("# Figure 7: AGG+ORD queries on the materialised view R1 at scale {scale}");
    let mut env = BenchSetup {
        config: OrdersConfig {
            scale,
            customers: args.customers,
            seed: 0xFDB,
        },
        materialise_flat: true,
        threads: args.threads,
    }
    .build();
    let attrs = env.attrs;
    let queries = paper_queries(&mut env.fdb.catalog, &attrs);
    env.rdb_sort.catalog = env.fdb.catalog.clone();
    env.rdb_hash.catalog = env.fdb.catalog.clone();
    for q in queries.iter().filter(|q| q.class == QueryClass::AggOrd) {
        let (n, t) = median_secs(args.repeats, || env.run_fdb_flat(&q.task));
        emit.row("7", scale, q.name, "FDB", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Sort, PlanMode::Naive)
        });
        emit.row("7", scale, q.name, "RDB sort", t, &format!("rows={n}"));
        let (n, t) = median_secs(args.repeats, || {
            env.run_rdb(&q.task, GroupStrategy::Hash, PlanMode::Naive)
        });
        emit.row("7", scale, q.name, "RDB hash", t, &format!("rows={n}"));
    }
    emit.finish();
}
