//! Selection: filters tuples by a conjunction of predicates in one scan.

use crate::expr::Predicate;
use crate::relation::Relation;

/// Returns the tuples of `rel` satisfying every predicate in `preds`.
///
/// # Panics
/// Panics if a predicate mentions an attribute outside `rel`'s schema.
pub fn select(rel: &Relation, preds: &[Predicate]) -> Relation {
    let schema = rel.schema().clone();
    for p in preds {
        assert!(
            p.applies_to(&schema),
            "predicate references attribute outside schema"
        );
    }
    let mut out = Relation::empty(schema.clone());
    for row in rel.rows() {
        if preds.iter().all(|p| p.eval(&schema, row)) {
            out.push_row(row);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;
    use crate::expr::CmpOp;
    use crate::schema::Schema;
    use crate::value::Value;

    fn sample() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 1), (1, 2), (2, 2), (3, 5)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        (c, rel)
    }

    #[test]
    fn attr_eq_selects_diagonal() {
        let (c, rel) = sample();
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let out = select(&rel, &[Predicate::AttrEq(a, b)]);
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn const_comparison() {
        let (c, rel) = sample();
        let b = c.lookup("b").unwrap();
        let out = select(&rel, &[Predicate::AttrCmp(b, CmpOp::Gt, Value::Int(1))]);
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn conjunction_is_intersection() {
        let (c, rel) = sample();
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let out = select(
            &rel,
            &[
                Predicate::AttrEq(a, b),
                Predicate::AttrCmp(a, CmpOp::Ge, Value::Int(2)),
            ],
        );
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0), &[Value::Int(2), Value::Int(2)]);
    }

    #[test]
    fn empty_predicates_is_identity() {
        let (_, rel) = sample();
        let out = select(&rel, &[]);
        assert_eq!(out, rel);
    }
}
