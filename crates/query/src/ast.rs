//! Resolved query AST.
//!
//! The parser resolves attribute names against the registered schemas and
//! interns them into the shared [`Catalog`], so the AST carries [`AttrId`]s
//! rather than strings. [`Query::to_task`] lowers the AST into the
//! engine-neutral [`JoinAggTask`] executed by both the relational baselines
//! and the factorised engine.

use fdb_relational::planner::JoinAggTask;
use fdb_relational::{AggSpec, AttrId, Catalog, Predicate, SortKey};

/// One item of the `SELECT` clause.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SelectItem {
    /// Plain attribute (must be grouped when aggregates are present).
    Attr(AttrId),
    /// Aggregate `α ← F` with a resolved output attribute.
    Agg(AggSpec),
}

impl SelectItem {
    /// The output attribute this item contributes.
    pub fn output(&self) -> AttrId {
        match self {
            SelectItem::Attr(a) => *a,
            SelectItem::Agg(s) => s.output,
        }
    }
}

/// One parsed SQL statement: a query or a write.
///
/// The read path ([`crate::parse`]) predates writes and keeps returning
/// [`Query`] directly; [`crate::parse_statement`] is the superset entry
/// point the facade's write API and the serving layer route through.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// `SELECT …` — see [`Query`].
    Select(Query),
    /// `INSERT INTO r [(cols)] VALUES (…), …`.
    Insert(InsertStmt),
    /// `DELETE FROM r [WHERE conj]`.
    Delete(DeleteStmt),
}

/// A resolved `INSERT`: the parser checks the target table exists,
/// resolves an explicit column list against its schema and reorders
/// every `VALUES` tuple into **schema order**, so consumers can apply
/// the rows positionally.
#[derive(Clone, Debug, PartialEq)]
pub struct InsertStmt {
    pub table: String,
    /// Tuples in the target table's schema order.
    pub rows: Vec<Vec<fdb_relational::Value>>,
}

/// A resolved `DELETE`: conjunctive predicates over the target table's
/// schema. An empty list means *delete everything*.
#[derive(Clone, Debug, PartialEq)]
pub struct DeleteStmt {
    pub table: String,
    pub predicates: Vec<Predicate>,
}

/// A parsed, resolved query.
///
/// Shapes covered (the paper's query classes, §2 and Fig. 3):
/// select-project-join, grouped aggregates, having, order-by (asc/desc) and
/// limit, over natural joins of named relations.
#[derive(Clone, Debug, PartialEq)]
pub struct Query {
    pub select: Vec<SelectItem>,
    /// Relations joined by natural join, in order.
    pub from: Vec<String>,
    /// WHERE conjuncts.
    pub predicates: Vec<Predicate>,
    /// GROUP BY attributes (for ROLLUP/CUBE/GROUPING SETS this is the union
    /// of all sets, in first-appearance order).
    pub group_by: Vec<AttrId>,
    /// GROUPING SETS: each inner vec is one grouping set (subset of
    /// `group_by`); empty when the query is a plain GROUP BY.
    pub grouping_sets: Vec<Vec<AttrId>>,
    /// HAVING conjuncts (over output attributes).
    pub having: Vec<Predicate>,
    /// ORDER BY keys.
    pub order_by: Vec<SortKey>,
    /// LIMIT k.
    pub limit: Option<usize>,
    /// OFFSET m (rows skipped before the first returned row; `0` = none).
    pub offset: usize,
}

impl Query {
    /// True if the query has aggregates.
    pub fn is_aggregate(&self) -> bool {
        self.select.iter().any(|i| matches!(i, SelectItem::Agg(_)))
    }

    /// Aggregate specs in select order.
    pub fn aggregates(&self) -> Vec<AggSpec> {
        self.select
            .iter()
            .filter_map(|i| match i {
                SelectItem::Agg(s) => Some(*s),
                SelectItem::Attr(_) => None,
            })
            .collect()
    }

    /// Output attributes in select order.
    pub fn output_attrs(&self) -> Vec<AttrId> {
        self.select.iter().map(|i| i.output()).collect()
    }

    /// Lowers to the engine-neutral task.
    ///
    /// A grouped query without aggregates becomes a distinct projection
    /// onto the group-by attributes (standard SQL equivalence).
    pub fn to_task(&self) -> JoinAggTask {
        if self.is_aggregate() {
            JoinAggTask {
                inputs: self.from.clone(),
                predicates: self.predicates.clone(),
                projection: None,
                group_by: self.group_by.clone(),
                grouping_sets: self.grouping_sets.clone(),
                aggregates: self.aggregates(),
                having: self.having.clone(),
                order_by: self.order_by.clone(),
                limit: self.limit,
                offset: self.offset,
            }
        } else {
            JoinAggTask {
                inputs: self.from.clone(),
                predicates: self.predicates.clone(),
                projection: Some(self.output_attrs()),
                group_by: Vec::new(),
                grouping_sets: Vec::new(),
                aggregates: Vec::new(),
                having: self.having.clone(),
                order_by: self.order_by.clone(),
                limit: self.limit,
                offset: self.offset,
            }
        }
    }

    /// Renders the query back to SQL-ish text (for logs and EXPLAIN).
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut s = String::from("SELECT ");
        let items: Vec<String> = self
            .select
            .iter()
            .map(|i| match i {
                SelectItem::Attr(a) => catalog.name(*a).to_string(),
                SelectItem::Agg(spec) => format!(
                    "{} AS {}",
                    spec.func.derived_name(catalog),
                    catalog.name(spec.output)
                ),
            })
            .collect();
        s.push_str(&items.join(", "));
        s.push_str(" FROM ");
        s.push_str(&self.from.join(", "));
        if !self.predicates.is_empty() {
            let preds: Vec<String> = self
                .predicates
                .iter()
                .map(|p| p.display(catalog).to_string())
                .collect();
            s.push_str(" WHERE ");
            s.push_str(&preds.join(" AND "));
        }
        if !self.grouping_sets.is_empty() {
            let sets: Vec<String> = self
                .grouping_sets
                .iter()
                .map(|set| {
                    let g: Vec<&str> = set.iter().map(|&a| catalog.name(a)).collect();
                    format!("({})", g.join(", "))
                })
                .collect();
            s.push_str(" GROUP BY GROUPING SETS (");
            s.push_str(&sets.join(", "));
            s.push(')');
        } else if !self.group_by.is_empty() {
            let g: Vec<&str> = self.group_by.iter().map(|&a| catalog.name(a)).collect();
            s.push_str(" GROUP BY ");
            s.push_str(&g.join(", "));
        }
        if !self.having.is_empty() {
            let h: Vec<String> = self
                .having
                .iter()
                .map(|p| p.display(catalog).to_string())
                .collect();
            s.push_str(" HAVING ");
            s.push_str(&h.join(" AND "));
        }
        if !self.order_by.is_empty() {
            let o: Vec<String> = self
                .order_by
                .iter()
                .map(|k| {
                    format!(
                        "{}{}",
                        catalog.name(k.attr),
                        match k.dir {
                            fdb_relational::SortDir::Asc => "",
                            fdb_relational::SortDir::Desc => " DESC",
                        }
                    )
                })
                .collect();
            s.push_str(" ORDER BY ");
            s.push_str(&o.join(", "));
        }
        if let Some(k) = self.limit {
            s.push_str(&format!(" LIMIT {k}"));
        }
        if self.offset > 0 {
            s.push_str(&format!(" OFFSET {}", self.offset));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::AggFunc;

    #[test]
    fn grouped_query_without_aggregates_lowers_to_distinct_projection() {
        let a = AttrId(0);
        let q = Query {
            select: vec![SelectItem::Attr(a)],
            from: vec!["R".into()],
            predicates: vec![],
            group_by: vec![a],
            grouping_sets: vec![],
            having: vec![],
            order_by: vec![],
            limit: None,
            offset: 0,
        };
        let task = q.to_task();
        assert!(!task.is_aggregate());
        assert_eq!(task.projection, Some(vec![a]));
    }

    #[test]
    fn aggregate_query_lowers_with_group_by() {
        let g = AttrId(0);
        let p = AttrId(1);
        let out = AttrId(2);
        let q = Query {
            select: vec![
                SelectItem::Attr(g),
                SelectItem::Agg(AggSpec::new(AggFunc::Sum(p), out)),
            ],
            from: vec!["R".into()],
            predicates: vec![],
            group_by: vec![g],
            grouping_sets: vec![],
            having: vec![],
            order_by: vec![],
            limit: Some(5),
            offset: 7,
        };
        let task = q.to_task();
        assert!(task.is_aggregate());
        assert_eq!(task.group_by, vec![g]);
        assert_eq!(task.limit, Some(5));
        assert_eq!(task.offset, 7);
        assert_eq!(q.output_attrs(), vec![g, out]);
    }
}
