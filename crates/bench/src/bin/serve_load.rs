//! Load driver for `fdb-server`: throughput and latency percentiles
//! under a concurrency sweep.
//!
//! Spawns an in-process server over the Orders database, then for each
//! connection count in {1, 4, 16} drives it with that many client
//! threads issuing a fixed round-robin query mix, recording qps and
//! p50/p95/p99 request latency. One warm-up pass per level fills the
//! plan cache first, so the sweep measures the *serving* path —
//! protocol framing, worker handoff, cache lookup — at a latency small
//! enough to sit under the perf gate's 1 ms noise floor, while the
//! engine-execution numbers stay the business of the figure benches.
//!
//! ```text
//! serve_load [--scale N] [--customers N] [--repeats N] [--json PATH]
//! ```
//!
//! Requests per connection = 100 × `--repeats`. Rows are emitted with
//! engine `FDB serve c=N` (the `FDB` prefix keeps them inside the
//! default `perfgate` gate); `seconds` is the p50 latency and the note
//! carries qps, p95, p99 and the request count. The committed baseline
//! is `BENCH_serve.json`.

use fdb::workload::orders::{generate, OrdersConfig};
use fdb::{Catalog, Db, FdbEngine};
use fdb_bench::harness::Args;
use fdb_server::{spawn, Client, ServerOptions};
use std::time::{Duration, Instant};

/// The query mix: the paper's aggregate/ordering shapes over
/// Orders ⋈ Packages ⋈ Items.
const QUERIES: [&str; 4] = [
    "SELECT customer, SUM(price) AS revenue FROM Orders, Packages, Items \
     GROUP BY customer ORDER BY revenue DESC, customer LIMIT 10",
    "SELECT COUNT(*) AS n FROM Orders, Packages, Items",
    "SELECT package, COUNT(*) AS items FROM Packages GROUP BY package ORDER BY package",
    "SELECT customer, date, SUM(price) AS spent FROM Orders, Packages, Items \
     GROUP BY customer, date ORDER BY customer, date",
];

const CONNECTION_SWEEP: [usize; 3] = [1, 4, 16];

fn percentile(sorted: &[Duration], q: f64) -> Duration {
    assert!(!sorted.is_empty());
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct LevelReport {
    qps: f64,
    p50: Duration,
    p95: Duration,
    p99: Duration,
    requests: usize,
}

/// Drives `conns` connections, each issuing `per_conn` requests
/// round-robin over [`QUERIES`]; returns merged latency percentiles
/// and aggregate throughput.
fn drive(addr: std::net::SocketAddr, conns: usize, per_conn: usize) -> LevelReport {
    let wall = Instant::now();
    let mut latencies: Vec<Duration> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..conns)
            .map(|t| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut lat = Vec::with_capacity(per_conn);
                    for i in 0..per_conn {
                        let sql = QUERIES[(t + i) % QUERIES.len()];
                        let t0 = Instant::now();
                        let reply = c.query(sql).expect("transport");
                        lat.push(t0.elapsed());
                        reply.expect("query should succeed");
                    }
                    c.quit().expect("quit");
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("client thread"))
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    latencies.sort();
    let requests = latencies.len();
    LevelReport {
        qps: requests as f64 / elapsed,
        p50: percentile(&latencies, 0.50),
        p95: percentile(&latencies, 0.95),
        p99: percentile(&latencies, 0.99),
        requests,
    }
}

fn main() {
    let args = Args::parse(1, 1);
    let mut emitter = args.emitter();
    let per_conn = 100 * args.repeats;

    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: args.scale,
            customers: args.customers,
            seed: 0xFDB,
        },
    );
    let mut engine = FdbEngine::new(catalog);
    engine.register_relation("Orders", ds.orders);
    engine.register_relation("Packages", ds.packages);
    engine.register_relation("Items", ds.items);

    let opts = ServerOptions::new().workers(16);
    let mut server = spawn(Db::from_engine(engine), "127.0.0.1:0", opts).expect("spawn fdb-server");
    let addr = server.addr();

    // Warm-up: execute (and cache) every query once, and pin that the
    // served bytes match the library run before timing anything.
    {
        let db_check = {
            let mut catalog = Catalog::new();
            let ds = generate(
                &mut catalog,
                &OrdersConfig {
                    scale: args.scale,
                    customers: args.customers,
                    seed: 0xFDB,
                },
            );
            let mut engine = FdbEngine::new(catalog);
            engine.register_relation("Orders", ds.orders);
            engine.register_relation("Packages", ds.packages);
            engine.register_relation("Items", ds.items);
            Db::from_engine(engine)
        };
        let mut c = Client::connect(addr).expect("connect");
        for sql in QUERIES {
            let served = c.query(sql).expect("transport").expect("warm-up query");
            let mut session = db_check.session();
            let expected =
                fdb_server::proto::render_outcome(&session.query(sql).expect("library run"));
            assert_eq!(
                served, expected,
                "served bytes diverge from library on `{sql}`"
            );
        }
        c.quit().expect("quit");
    }

    for conns in CONNECTION_SWEEP {
        let report = drive(addr, conns, per_conn);
        emitter.row(
            "serve",
            args.scale,
            "mix4",
            &format!("FDB serve c={conns}"),
            report.p50.as_secs_f64(),
            &format!(
                "qps={:.0} p95us={} p99us={} requests={}",
                report.qps,
                report.p95.as_micros(),
                report.p99.as_micros(),
                report.requests
            ),
        );
    }

    server.shutdown();
    emitter.finish();
}
