//! Grouped aggregation: the `̟G; α1←F1,…,αk←Fk` operator on flat relations.
//!
//! Two strategies mirror the engines benchmarked in the paper (§6, Exp. 1):
//! * [`GroupStrategy::Sort`] — sort by the grouping attributes, then fold
//!   each run in one scan (SQLite's approach, and the paper's RDB baseline);
//! * [`GroupStrategy::Hash`] — a hash table keyed by the group values
//!   (PostgreSQL's approach).
//!
//! Both also implement the internal *weighted* aggregates needed by the
//! eager-aggregation planner (`sum(a·b·…)` across partial-aggregate
//! columns, Yan–Larson \[31\]).

use crate::agg::{Accumulator, AggFunc, AggSpec};
use crate::attr::AttrId;
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::{Number, Value};
use std::collections::HashMap;

/// Grouping strategy of the baseline engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GroupStrategy {
    /// Sort on the group-by attributes, then aggregate runs in one scan.
    Sort,
    /// Hash-partition groups in one pass.
    Hash,
}

/// Internal physical aggregate: either a plain [`AggFunc`] or a weighted
/// combination over partial-aggregate columns, used to recombine eager
/// pre-aggregates: `SumProd([s, c1, c2])` computes `Σ s·c1·c2` per group.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum PhysAgg {
    Plain(AggFunc),
    /// Sum over the product of the listed columns.
    SumProd(Vec<AttrId>),
}

impl PhysAgg {
    fn make_acc(&self) -> PhysAcc {
        match self {
            PhysAgg::Plain(f) => PhysAcc::Plain(Accumulator::new(*f)),
            PhysAgg::SumProd(_) => PhysAcc::SumProd(Number::ZERO),
        }
    }
}

enum PhysAcc {
    Plain(Accumulator),
    SumProd(Number),
}

impl PhysAcc {
    fn update(&mut self, spec: &PhysAgg, schema: &Schema, row: &[Value]) {
        match (self, spec) {
            (PhysAcc::Plain(acc), PhysAgg::Plain(f)) => {
                let v = f.attr().map(|a| {
                    let p = schema.position(a).expect("aggregated attr in schema");
                    &row[p]
                });
                acc.update(v);
            }
            (PhysAcc::SumProd(acc), PhysAgg::SumProd(cols)) => {
                let mut prod = Number::Int(1);
                for &a in cols {
                    let p = schema.position(a).expect("weighted attr in schema");
                    prod = prod.mul(row[p].as_number().expect("weight must be numeric"));
                }
                *acc = acc.add(prod);
            }
            _ => unreachable!("accumulator/spec mismatch"),
        }
    }

    fn finish(self) -> Value {
        match self {
            PhysAcc::Plain(acc) => acc.finish(),
            PhysAcc::SumProd(n) => n.into_value(),
        }
    }
}

/// One physical aggregate output: function plus output attribute.
#[derive(Clone, Debug)]
pub struct PhysAggSpec {
    pub agg: PhysAgg,
    pub output: AttrId,
}

impl From<AggSpec> for PhysAggSpec {
    fn from(s: AggSpec) -> Self {
        PhysAggSpec {
            agg: PhysAgg::Plain(s.func),
            output: s.output,
        }
    }
}

/// Groups `rel` by `group` and evaluates `aggs` within each group.
///
/// The output schema is `group ++ outputs(aggs)`; output tuples appear in
/// ascending group order for [`GroupStrategy::Sort`] and in unspecified
/// order for [`GroupStrategy::Hash`] (callers needing an order sort
/// afterwards, exactly like the engines the strategies model).
pub fn group_aggregate(
    rel: &Relation,
    group: &[AttrId],
    aggs: &[PhysAggSpec],
    strategy: GroupStrategy,
) -> Relation {
    let schema = rel.schema().clone();
    let group_pos: Vec<usize> = group
        .iter()
        .map(|&a| schema.position(a).expect("group attr in schema"))
        .collect();
    let out_schema = Schema::new(
        group
            .iter()
            .copied()
            .chain(aggs.iter().map(|a| a.output))
            .collect(),
    );
    let mut out = Relation::empty(out_schema);
    if rel.is_empty() {
        return out;
    }
    match strategy {
        GroupStrategy::Sort => {
            let keys: Vec<crate::relation::SortKey> = group
                .iter()
                .map(|&a| crate::relation::SortKey::asc(a))
                .collect();
            let mut sorted = rel.clone();
            sorted.sort_by_keys(&keys);
            let mut accs: Vec<PhysAcc> = aggs.iter().map(|a| a.agg.make_acc()).collect();
            let mut current: Option<Vec<Value>> = None;
            let mut buf: Vec<Value> = Vec::new();
            let flush = |accs: &mut Vec<PhysAcc>,
                         key: &[Value],
                         out: &mut Relation,
                         buf: &mut Vec<Value>| {
                buf.clear();
                buf.extend_from_slice(key);
                for acc in std::mem::replace(accs, aggs.iter().map(|a| a.agg.make_acc()).collect())
                {
                    buf.push(acc.finish());
                }
                out.push_row(buf);
            };
            for row in sorted.rows() {
                let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
                match &current {
                    Some(k) if *k == key => {}
                    Some(k) => {
                        let k = k.clone();
                        flush(&mut accs, &k, &mut out, &mut buf);
                        current = Some(key);
                    }
                    None => current = Some(key),
                }
                for (acc, spec) in accs.iter_mut().zip(aggs) {
                    acc.update(&spec.agg, &schema, row);
                }
            }
            if let Some(k) = current {
                flush(&mut accs, &k, &mut out, &mut buf);
            }
        }
        GroupStrategy::Hash => {
            let mut table: HashMap<Vec<Value>, Vec<PhysAcc>> = HashMap::new();
            for row in rel.rows() {
                let key: Vec<Value> = group_pos.iter().map(|&p| row[p].clone()).collect();
                let accs = table
                    .entry(key)
                    .or_insert_with(|| aggs.iter().map(|a| a.agg.make_acc()).collect());
                for (acc, spec) in accs.iter_mut().zip(aggs) {
                    acc.update(&spec.agg, &schema, row);
                }
            }
            let mut buf: Vec<Value> = Vec::new();
            for (key, accs) in table {
                buf.clear();
                buf.extend(key);
                for acc in accs {
                    buf.push(acc.finish());
                }
                out.push_row(&buf);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Catalog;

    fn sales() -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let cust = c.intern("customer");
        let price = c.intern("price");
        let rel = Relation::from_rows(
            Schema::new(vec![cust, price]),
            [
                ("Lucia", 9),
                ("Mario", 8),
                ("Mario", 8),
                ("Mario", 6),
                ("Pietro", 9),
            ]
            .into_iter()
            .map(|(n, p)| vec![Value::str(n), Value::Int(p)]),
        );
        (c, rel)
    }

    fn specs(c: &mut Catalog) -> Vec<PhysAggSpec> {
        let price = c.lookup("price").unwrap();
        let s = c.intern("revenue");
        let n = c.intern("orders");
        vec![
            AggSpec::new(AggFunc::Sum(price), s).into(),
            AggSpec::new(AggFunc::Count, n).into(),
        ]
    }

    #[test]
    fn sort_and_hash_agree() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let aggs = specs(&mut c);
        let a = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort).canonical();
        let b = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Hash).canonical();
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn sort_strategy_emits_sorted_groups() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let aggs = specs(&mut c);
        let out = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort);
        let names: Vec<String> = out
            .rows()
            .map(|r| r[0].as_str().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["Lucia", "Mario", "Pietro"]);
        // Mario: 8 + 8 + 6 = 22 over 3 orders (matches Example 1's revenue
        // per customer, with the duplicate standing for two order dates).
        assert_eq!(out.row(1)[1], Value::Int(22));
        assert_eq!(out.row(1)[2], Value::Int(3));
    }

    #[test]
    fn global_aggregate_without_grouping() {
        let (mut c, rel) = sales();
        let aggs = specs(&mut c);
        let out = group_aggregate(&rel, &[], &aggs, GroupStrategy::Sort);
        assert_eq!(out.len(), 1);
        assert_eq!(out.row(0)[0], Value::Int(40));
        assert_eq!(out.row(0)[1], Value::Int(5));
    }

    #[test]
    fn empty_input_yields_no_groups() {
        let (mut c, rel) = sales();
        let empty = Relation::empty(rel.schema().clone());
        let aggs = specs(&mut c);
        let out = group_aggregate(&empty, &[], &aggs, GroupStrategy::Hash);
        assert!(out.is_empty());
    }

    #[test]
    fn sum_prod_recombines_partials() {
        // Simulates the eager-aggregation combine step: per-group partial
        // sums s with counts c, final = Σ s·c.
        let mut c = Catalog::new();
        let g = c.intern("g");
        let s = c.intern("s");
        let n = c.intern("c");
        let rel = Relation::from_rows(
            Schema::new(vec![g, s, n]),
            [(1, 8, 2), (1, 6, 1), (2, 9, 1)]
                .into_iter()
                .map(|(a, b, d)| vec![Value::Int(a), Value::Int(b), Value::Int(d)]),
        );
        let out_attr = c.intern("total");
        let aggs = vec![PhysAggSpec {
            agg: PhysAgg::SumProd(vec![s, n]),
            output: out_attr,
        }];
        let out = group_aggregate(&rel, &[g], &aggs, GroupStrategy::Sort);
        assert_eq!(out.row(0), &[Value::Int(1), Value::Int(22)]);
        assert_eq!(out.row(1), &[Value::Int(2), Value::Int(9)]);
    }

    #[test]
    fn min_max_grouping() {
        let (mut c, rel) = sales();
        let cust = c.lookup("customer").unwrap();
        let price = c.lookup("price").unwrap();
        let mn = c.intern("cheapest");
        let aggs = vec![PhysAggSpec::from(AggSpec::new(AggFunc::Min(price), mn))];
        let out = group_aggregate(&rel, &[cust], &aggs, GroupStrategy::Sort);
        assert_eq!(out.row(1), &[Value::str("Mario"), Value::Int(6)]);
    }
}
