//! Offline stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no network access, so bench targets link
//! against this minimal harness instead. It exposes the subset of the
//! `criterion` 0.5 API the workspace benches use — [`Criterion`],
//! benchmark groups with `sample_size`, [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and measures with
//! plain wall-clock sampling: per benchmark it runs a warm-up call, then
//! times `sample_size` invocations and prints min / median / mean to
//! stdout. There are no plots, no statistical regression analysis, and
//! no baseline files; the figure binaries in `fdb-bench` are the
//! publication-quality path.

use std::time::{Duration, Instant};

/// Prevents the optimiser from discarding a computed value.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// How `iter_batched` amortises setup cost; the shim times routines
/// individually, so the variants only document intent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumBatches(u64),
    NumIterations(u64),
}

/// Times closures for one benchmark id.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    fn with_sample_size(sample_size: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_size),
            sample_size,
        }
    }

    /// Times `routine` once per sample after a warm-up invocation.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        black_box(routine());
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        black_box(routine(setup()));
        for _ in 0..self.sample_size {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{id}: no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{id}: min {:?} / median {:?} / mean {:?} ({} samples)",
        min,
        median,
        mean,
        samples.len()
    );
}

/// Top-level benchmark driver (a far smaller `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        report(&id, &mut bencher.samples);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group of benchmarks sharing settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 1, "sample size must be positive");
        self.sample_size = n;
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        let mut bencher = Bencher::with_sample_size(self.sample_size);
        f(&mut bencher);
        report(&id, &mut bencher.samples);
        self
    }

    pub fn finish(self) {}
}

/// Declares a group function invoking each target with a shared
/// [`Criterion`].
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group; ignores harness CLI flags that
/// `cargo bench`/`cargo test` pass through.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test --benches` probes with `--test`; a benchmark has
            // no #[test] cases, so exit immediately rather than measure.
            if std::env::args().any(|a| a == "--test" || a == "--list") {
                return;
            }
            $($group();)+
        }
    };
}
