//! # fdb — factorised databases with aggregation and ordering
//!
//! Facade crate for the reproduction of *Aggregation and Ordering in
//! Factorised Databases* (Bakibayev, Kočiský, Olteanu, Závodný; VLDB
//! 2013). It re-exports the workspace crates:
//!
//! * [`core`] (`fdb-core`) — factorised representations, f-trees, the
//!   aggregation operator, constant-delay enumeration, restructuring and
//!   the query optimisers;
//! * [`relational`] (`fdb-relational`) — the flat-relation substrate and
//!   the baseline main-memory engines (sort-/hash-grouping, naive and
//!   eager-aggregation planners);
//! * [`query`] (`fdb-query`) — the SQL-ish front-end;
//! * [`workload`] (`fdb-workload`) — the paper's synthetic datasets.
//!
//! See `examples/quickstart.rs` for an end-to-end tour, and DESIGN.md /
//! EXPERIMENTS.md for the system inventory and experiment index.

pub use fdb_core as core;
pub use fdb_query as query;
pub use fdb_relational as relational;
pub use fdb_workload as workload;

pub mod db;

pub use db::{Db, QueryOutcome, Session, WriteBatch, WriteReport};
pub use fdb_core::{FRep, FTree, FdbEngine, FdbResult};
pub use fdb_query::{parse, parse_statement};
pub use fdb_relational::{Catalog, Relation, Schema, Value};
