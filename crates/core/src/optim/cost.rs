//! Cost metric for f-trees: asymptotically tight size bounds (§2.1, §5).
//!
//! The size of a factorisation over an f-tree `T` is bounded by
//! `Σ_{v ∈ T} Π_e |R_e|^{x_e(v)}`, where `x(v)` is an optimal fractional
//! edge cover of the atomic attributes on the root path of `v` \[22\]. The
//! bound both predicts operator output sizes (the optimiser's cost) and is
//! checked against actual singleton counts in tests (soundness).

use crate::ftree::{FTree, NodeLabel};
use crate::optim::lp::fractional_edge_cover;
use fdb_relational::AttrId;
use std::collections::BTreeSet;

/// Input cardinalities: one weighted hyperedge per base relation.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// `(schema attributes, cardinality)`; cardinalities are clamped ≥ 1.
    pub edges: Vec<(BTreeSet<AttrId>, f64)>,
}

impl Stats {
    pub fn new() -> Self {
        Stats::default()
    }

    /// Registers a base relation's schema and size.
    pub fn add_relation(&mut self, attrs: impl IntoIterator<Item = AttrId>, size: usize) {
        self.edges
            .push((attrs.into_iter().collect(), (size.max(1)) as f64));
    }

    /// When selections merge attribute classes, an edge covering one class
    /// member covers them all; `expand` maps each attribute to its class.
    fn covers(&self, edge: &BTreeSet<AttrId>, class: &[AttrId]) -> bool {
        class.iter().any(|a| edge.contains(a))
    }

    /// Tight size bound for the set of attribute classes `classes` (each a
    /// slice of equivalent attributes): `Π_e |R_e|^{x_e}` for the optimal
    /// fractional cover `x`.
    pub fn bound_for_classes(&self, classes: &[Vec<AttrId>]) -> f64 {
        if classes.is_empty() {
            return 1.0;
        }
        let edges: Vec<(Vec<usize>, f64)> = self
            .edges
            .iter()
            .map(|(attrs, size)| {
                let members: Vec<usize> = classes
                    .iter()
                    .enumerate()
                    .filter(|(_, class)| self.covers(attrs, class))
                    .map(|(i, _)| i)
                    .collect();
                (members, size.ln())
            })
            .collect();
        let exponent = fractional_edge_cover(classes.len(), &edges);
        if exponent.is_infinite() {
            f64::MAX
        } else {
            exponent.exp()
        }
    }
}

/// Size bound for a factorisation over `tree` given base-relation `stats`:
/// the sum over nodes of the bound on the node's union count, which is the
/// bound on distinct value combinations along its root path.
pub fn tree_cost(tree: &FTree, stats: &Stats) -> f64 {
    let mut total = 0.0;
    for n in tree.live_nodes() {
        let mut classes: Vec<Vec<AttrId>> = Vec::new();
        for p in tree.root_path(n) {
            if let NodeLabel::Atomic(attrs) = &tree.node(p).label {
                classes.push(attrs.clone());
            }
        }
        total += stats.bound_for_classes(&classes);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frep::FRep;
    use fdb_relational::{Catalog, Relation, Schema, Value};

    #[test]
    fn path_tree_bound_matches_trie_intuition() {
        // R(a,b) with |R| = N: path a→b has bound N (for a) wait — for
        // node a the path is {a}: bound N; for b the path {a,b}: bound N;
        // total 2N.
        let mut stats = Stats::new();
        let a = AttrId(0);
        let b = AttrId(1);
        stats.add_relation([a, b], 100);
        let tree = FTree::path(&[a, b]);
        let cost = tree_cost(&tree, &stats);
        assert!((cost - 200.0).abs() < 1e-6, "got {cost}");
    }

    #[test]
    fn bound_dominates_actual_size() {
        // Soundness: the bound is an upper bound on the singleton count.
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            (0..20).map(|i| vec![Value::Int(i % 5), Value::Int(i)]),
        );
        let mut stats = Stats::new();
        stats.add_relation([a, b], rel.len());
        let tree = FTree::path(&[a, b]);
        let rep = FRep::from_relation(&rel, tree.clone()).unwrap();
        assert!(tree_cost(&tree, &stats) + 1e-9 >= rep.singleton_count() as f64);
    }

    #[test]
    fn branching_tree_is_cheaper_for_independent_branches() {
        // Orders ⋈ Packages ⋈ Items over T1-style branching vs a pure
        // path: the branching bound must not exceed the path bound.
        let mut c = Catalog::new();
        let pkg = c.intern("package");
        let date = c.intern("date");
        let cust = c.intern("customer");
        let item = c.intern("item");
        let price = c.intern("price");
        let mut stats = Stats::new();
        stats.add_relation([cust, date, pkg], 1000);
        stats.add_relation([pkg, item], 200);
        stats.add_relation([item, price], 50);

        use crate::ftree::NodeLabel;
        let mut branching = FTree::new();
        let n_pkg = branching.add_node(NodeLabel::Atomic(vec![pkg]), None);
        let n_date = branching.add_node(NodeLabel::Atomic(vec![date]), Some(n_pkg));
        branching.add_node(NodeLabel::Atomic(vec![cust]), Some(n_date));
        let n_item = branching.add_node(NodeLabel::Atomic(vec![item]), Some(n_pkg));
        branching.add_node(NodeLabel::Atomic(vec![price]), Some(n_item));

        let path = FTree::path(&[pkg, date, cust, item, price]);
        let cb = tree_cost(&branching, &stats);
        let cp = tree_cost(&path, &stats);
        assert!(cb < cp, "branching {cb} should beat path {cp}");
    }

    #[test]
    fn aggregate_nodes_cost_by_their_path_context() {
        use crate::ftree::{AggLabel, AggOp, NodeLabel};
        let mut stats = Stats::new();
        let a = AttrId(0);
        let b = AttrId(1);
        let out = AttrId(9);
        stats.add_relation([a, b], 100);
        let mut t = FTree::new();
        let na = t.add_node(NodeLabel::Atomic(vec![a]), None);
        t.add_node(
            NodeLabel::Agg(AggLabel {
                funcs: vec![AggOp::Sum(b)],
                over: [b].into_iter().collect(),
                outputs: vec![out],
            }),
            Some(na),
        );
        // Aggregate node: one value per `a` value → bound 100; plus the a
        // node itself: 100. Total 200.
        let cost = tree_cost(&t, &stats);
        assert!((cost - 200.0).abs() < 1e-6, "got {cost}");
    }

    #[test]
    fn merged_classes_are_covered_by_either_edge() {
        // After a join a=b, the class {a,b} is covered by either relation.
        let a = AttrId(0);
        let b = AttrId(1);
        let mut stats = Stats::new();
        stats.add_relation([a], 10);
        stats.add_relation([b], 1000);
        let bound = stats.bound_for_classes(&[vec![a, b]]);
        assert!((bound - 10.0).abs() < 1e-6, "got {bound}");
    }
}
