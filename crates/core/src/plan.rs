//! F-plans: sequences of f-plan operators (§2.1, §5).
//!
//! A plan is produced by the optimiser against the *initial* f-tree and
//! executed later against the representation. Node ids are stable across
//! restructuring and fresh ids are allocated deterministically, so a plan
//! simulated on a scratch tree references exactly the nodes that will exist
//! at execution time.

use crate::error::Result;
use crate::frep::FRep;
use crate::ftree::{AggOp, FTree, NodeId};
use crate::ops;
use fdb_relational::{AttrId, Catalog, CmpOp, Value};
use std::fmt::Write as _;

/// One f-plan operator.
#[derive(Clone, Debug, PartialEq)]
pub enum FOp {
    /// `σ_{A θ c}`.
    SelectConst {
        attr: AttrId,
        op: CmpOp,
        value: Value,
    },
    /// `σ_{A=B}` for sibling nodes.
    Merge { a: NodeId, b: NodeId },
    /// `σ_{A=B}` along a root-to-leaf path.
    Absorb { anc: NodeId, desc: NodeId },
    /// `χ_{A,B}` restructuring.
    Swap { parent: NodeId, child: NodeId },
    /// `γ_{F(U)}` aggregation.
    Aggregate {
        parent: Option<NodeId>,
        targets: Vec<NodeId>,
        funcs: Vec<AggOp>,
        outputs: Vec<AttrId>,
    },
    /// Projection of one attribute.
    ProjectAway { attr: AttrId },
    /// Constant-time renaming.
    Rename { from: AttrId, to: AttrId },
}

/// A sequence of operators.
#[derive(Clone, Debug, Default)]
pub struct FPlan {
    pub ops: Vec<FOp>,
}

impl FPlan {
    pub fn new() -> Self {
        FPlan { ops: Vec::new() }
    }

    pub fn push(&mut self, op: FOp) {
        self.ops.push(op);
    }

    pub fn len(&self) -> usize {
        self.ops.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the plan to a representation.
    pub fn execute(&self, rep: FRep) -> Result<FRep> {
        self.execute_with(rep, 1)
    }

    /// Applies the plan through the staged pipeline executor
    /// ([`crate::pipeline::execute_staged`]): every operator runs in
    /// place on one shared arena, consecutive selections fuse into one
    /// walk, and one compaction pass per plan replaces the legacy
    /// one-full-copy-per-operator transforms. Aggregation operators fan
    /// out to `threads` workers; results are identical for every thread
    /// count and bit-identical to [`FPlan::execute_per_op`].
    pub fn execute_with(&self, rep: FRep, threads: usize) -> Result<FRep> {
        crate::pipeline::execute_staged(self, rep, threads).map(|(rep, _)| rep)
    }

    /// Applies the plan one copy transform per operator — the legacy
    /// execution path, kept as the reference for the fused-vs-per-op
    /// differential suites and the ablation benchmark.
    pub fn execute_per_op(&self, mut rep: FRep, threads: usize) -> Result<FRep> {
        for op in &self.ops {
            rep = apply_with(rep, op, threads)?;
        }
        Ok(rep)
    }

    /// Simulates the plan on an f-tree (what the optimiser explores).
    pub fn simulate(&self, tree: &mut FTree) -> Result<()> {
        for op in &self.ops {
            apply_to_tree(tree, op)?;
        }
        Ok(())
    }

    /// Human-readable rendering.
    pub fn display(&self, catalog: &Catalog) -> String {
        let mut out = String::new();
        for (i, op) in self.ops.iter().enumerate() {
            let _ = write!(out, "{:>3}. ", i + 1);
            match op {
                FOp::SelectConst { attr, op, value } => {
                    let _ = writeln!(out, "select {} {op} {value}", catalog.name(*attr));
                }
                FOp::Merge { a, b } => {
                    let _ = writeln!(out, "merge {a:?} with {b:?}");
                }
                FOp::Absorb { anc, desc } => {
                    let _ = writeln!(out, "absorb {desc:?} into {anc:?}");
                }
                FOp::Swap { parent, child } => {
                    let _ = writeln!(out, "swap χ({parent:?}, {child:?})");
                }
                FOp::Aggregate {
                    targets,
                    funcs,
                    outputs,
                    ..
                } => {
                    let fs: Vec<String> = funcs.iter().map(|f| f.display(catalog)).collect();
                    let os: Vec<&str> = outputs.iter().map(|&o| catalog.name(o)).collect();
                    let _ = writeln!(
                        out,
                        "γ[{}] over {targets:?} -> {}",
                        fs.join(","),
                        os.join(",")
                    );
                }
                FOp::ProjectAway { attr } => {
                    let _ = writeln!(out, "project away {}", catalog.name(*attr));
                }
                FOp::Rename { from, to } => {
                    let _ = writeln!(
                        out,
                        "rename {} -> {}",
                        catalog.name(*from),
                        catalog.name(*to)
                    );
                }
            }
        }
        out
    }
}

/// Applies one operator to a representation.
pub fn apply(rep: FRep, op: &FOp) -> Result<FRep> {
    apply_with(rep, op, 1)
}

/// Applies one operator with aggregation parallelised on `threads`
/// workers; the structural operators stay serial (they are linear
/// single-pass rewrites).
pub fn apply_with(rep: FRep, op: &FOp, threads: usize) -> Result<FRep> {
    match op {
        FOp::SelectConst { attr, op, value } => ops::select_const(rep, *attr, *op, value),
        FOp::Merge { a, b } => ops::merge(rep, *a, *b),
        FOp::Absorb { anc, desc } => ops::absorb(rep, *anc, *desc),
        FOp::Swap { parent, child } => ops::swap(rep, *parent, *child),
        FOp::Aggregate {
            parent,
            targets,
            funcs,
            outputs,
        } => ops::aggregate_par(
            rep,
            &ops::AggTarget {
                parent: *parent,
                nodes: targets.clone(),
            },
            funcs.clone(),
            outputs.clone(),
            threads,
        ),
        FOp::ProjectAway { attr } => ops::project_away(rep, *attr),
        FOp::Rename { from, to } => ops::rename(rep, *from, *to),
    }
}

/// Applies one operator to an f-tree only (plan simulation).
pub fn apply_to_tree(tree: &mut FTree, op: &FOp) -> Result<()> {
    match op {
        FOp::SelectConst { .. } => Ok(()),
        FOp::Merge { a, b } => tree.merge(*a, *b).map(|_| ()),
        FOp::Absorb { anc, desc } => tree.absorb(*anc, *desc).map(|_| ()),
        FOp::Swap { parent, child } => tree.swap(*parent, *child).map(|_| ()),
        FOp::Aggregate {
            parent,
            targets,
            funcs,
            outputs,
        } => tree
            .aggregate(*parent, targets, funcs.clone(), outputs.clone())
            .map(|_| ()),
        FOp::ProjectAway { attr } => {
            // Tree-level approximation of project_away: label shrink or
            // push-down-and-remove, mirroring `ops::project_away`.
            let node = tree.node_of_attr(*attr).ok_or_else(|| {
                crate::error::FdbError::Unresolved(format!("attribute {attr} not in f-tree"))
            })?;
            match tree.node(node).label.clone() {
                crate::ftree::NodeLabel::Atomic(attrs) if attrs.len() > 1 => {
                    tree.shrink_class(node, *attr)
                }
                _ => {
                    loop {
                        let children = tree.node(node).children.clone();
                        match children.first() {
                            None => break,
                            Some(&c) => {
                                tree.swap(node, c)?;
                            }
                        }
                    }
                    tree.remove_leaf(node).map(|_| ())
                }
            }
        }
        FOp::Rename { from, to } => tree.rename_attr(*from, *to),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_relational::{Relation, Schema};

    fn simple_rep() -> (Catalog, FRep) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            [(1, 10), (1, 20), (2, 10)]
                .into_iter()
                .map(|(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        let rep = FRep::from_relation(&rel, FTree::path(&[a, b])).unwrap();
        (c, rep)
    }

    #[test]
    fn plan_executes_and_simulates_consistently() {
        let (mut c, rep) = simple_rep();
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let na = rep.ftree().node_of_attr(a).unwrap();
        let nb = rep.ftree().node_of_attr(b).unwrap();
        let out_attr = c.intern("n");
        let mut plan = FPlan::new();
        plan.push(FOp::SelectConst {
            attr: a,
            op: CmpOp::Eq,
            value: Value::Int(1),
        });
        plan.push(FOp::Aggregate {
            parent: Some(na),
            targets: vec![nb],
            funcs: vec![AggOp::Count],
            outputs: vec![out_attr],
        });
        // Simulation yields the same structure as execution.
        let mut sim_tree = rep.ftree().clone();
        plan.simulate(&mut sim_tree).unwrap();
        let out = plan.execute(rep).unwrap();
        assert_eq!(out.ftree().canonical_key(), sim_tree.canonical_key());
        assert_eq!(out.tuple_count(), 1);
        // a=1 has two b values.
        assert_eq!(
            *out.root(0).entry(0).child(0).entry(0).value(),
            Value::Int(2)
        );
    }

    #[test]
    fn plan_display_is_readable() {
        let (c, rep) = simple_rep();
        let a = c.lookup("a").unwrap();
        let na = rep.ftree().node_of_attr(a).unwrap();
        let nb = rep.ftree().node(na).children[0];
        let mut plan = FPlan::new();
        plan.push(FOp::Swap {
            parent: na,
            child: nb,
        });
        plan.push(FOp::ProjectAway { attr: a });
        let s = plan.display(&c);
        assert!(s.contains("swap"));
        assert!(s.contains("project away a"));
    }

    #[test]
    fn project_away_via_plan() {
        let (mut c, rep) = simple_rep();
        let a = c.lookup("a").unwrap();
        let mut plan = FPlan::new();
        plan.push(FOp::ProjectAway { attr: a });
        let out = plan.execute(rep).unwrap();
        assert_eq!(out.tuple_count(), 2); // distinct b values
        let _ = c.intern("unused");
    }
}
