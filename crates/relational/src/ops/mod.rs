//! Physical relational operators.
//!
//! These implement the baseline ("RDB") engine of Experiment 5: selection,
//! projection, joins (hash and sort-merge), cross product, grouped
//! aggregation (hash- and sort-based, standing in for PostgreSQL's and
//! SQLite's grouping strategies respectively), ordering and limit.

pub mod aggregate;
mod join;
mod project;
mod select;
mod sort;

pub use aggregate::{group_aggregate, group_aggregate_par, GroupStrategy};
pub use join::{hash_join, product, sort_merge_join};
pub use project::project;
pub use select::select;
pub use sort::{limit, order_by, order_by_par, page, top_k};
