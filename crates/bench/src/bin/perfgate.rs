//! CI perf-smoke gate: compares a fresh `--json` results file against
//! the committed baseline and fails on large regressions.
//!
//! ```text
//! perfgate --baseline BENCH_s1.json --current fresh.json \
//!          [--max-ratio 3.0] [--floor-ms 1.0] [--max-mem-ratio 1.2] \
//!          [--engine-prefix FDB]
//! ```
//!
//! Exit codes: `0` pass, `1` regression detected, `2` usage/parse error.
//! Only rows whose engine starts with the prefix are gated (default
//! `FDB`); the timing threshold is deliberately generous so that shared
//! CI runners don't flake the build — the gate exists to catch
//! order-of-magnitude storage regressions, not single-digit percents.
//! Rows carrying an `ibytes=` note (intermediate bytes allocated by
//! the staged plan execution) are additionally gated on memory with the
//! much tighter `--max-mem-ratio`, since allocation is deterministic.

use fdb_bench::perf::{compare, parse_results, GateConfig};

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut baseline_path: Option<String> = None;
    let mut current_path: Option<String> = None;
    let mut max_ratio = 3.0f64;
    let mut floor_ms = 1.0f64;
    let mut max_mem_ratio = 1.2f64;
    let mut engine_prefix = "FDB".to_string();
    let mut i = 0;
    let usage = "usage: perfgate --baseline PATH --current PATH \
                 [--max-ratio R] [--floor-ms MS] [--max-mem-ratio R] \
                 [--engine-prefix P]";
    while i < argv.len() {
        let value = |i: usize| -> String {
            argv.get(i + 1)
                .unwrap_or_else(|| {
                    eprintln!("missing value for {}", argv[i]);
                    std::process::exit(2);
                })
                .clone()
        };
        match argv[i].as_str() {
            "--baseline" => baseline_path = Some(value(i)),
            "--current" => current_path = Some(value(i)),
            "--max-ratio" => {
                max_ratio = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --max-ratio");
                    std::process::exit(2);
                })
            }
            "--floor-ms" => {
                floor_ms = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --floor-ms");
                    std::process::exit(2);
                })
            }
            "--max-mem-ratio" => {
                max_mem_ratio = value(i).parse().unwrap_or_else(|_| {
                    eprintln!("bad --max-mem-ratio");
                    std::process::exit(2);
                })
            }
            "--engine-prefix" => engine_prefix = value(i),
            "--help" | "-h" => {
                eprintln!("{usage}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown flag `{other}`; {usage}");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let (Some(baseline_path), Some(current_path)) = (baseline_path, current_path) else {
        eprintln!("{usage}");
        std::process::exit(2);
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let parse = |path: &str, text: &str| {
        parse_results(text).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            std::process::exit(2);
        })
    };
    let baseline = parse(&baseline_path, &read(&baseline_path));
    let current = parse(&current_path, &read(&current_path));
    let cfg = GateConfig {
        max_ratio,
        floor_secs: floor_ms / 1000.0,
        max_mem_ratio,
        engine_prefix: &engine_prefix,
        ..GateConfig::default()
    };
    let verdicts = compare(&baseline, &current, &cfg);
    if verdicts.is_empty() {
        eprintln!("no gated rows matched engine prefix `{engine_prefix}` — refusing to pass an empty gate");
        std::process::exit(2);
    }
    let mut failed = false;
    println!(
        "# perf gate: max-ratio {max_ratio}, floor {floor_ms} ms, \
         max-mem-ratio {max_mem_ratio}, prefix `{engine_prefix}`"
    );
    for v in &verdicts {
        let status = if v.failed { "FAIL" } else { "ok  " };
        failed |= v.failed;
        println!(
            "{status} {key} [{metric}]: baseline {base:.6} current {cur:.6} ratio {ratio:.2}",
            key = v.key,
            metric = v.metric.label(),
            base = v.baseline,
            cur = v.current,
            ratio = v.ratio,
        );
    }
    if failed {
        eprintln!("perf gate FAILED: at least one gated row regressed past {max_ratio}x");
        std::process::exit(1);
    }
    println!("# perf gate passed ({} rows)", verdicts.len());
}
