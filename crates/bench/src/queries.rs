//! The queries of Figure 3, as engine-neutral tasks.
//!
//! ```text
//! R1 = Orders ⋈ Items ⋈ Packages                    (materialised view)
//! Q1 = ̟package,date,customer; sum(price)(R1)   ┐
//! Q2 = ̟customer; revenue←sum(price)(R1)        │
//! Q3 = ̟date,package; sum(price)(R1)            │ AGG
//! Q4 = ̟package; sum(price)(R1)                 │
//! Q5 = ̟sum(price)(R1)                          ┘
//! Q6 = o_customer(Q2)        ┐
//! Q7 = o_revenue(Q2)         │ AGG+ORD
//! Q8 = o_date,package(Q3)    │
//! Q9 = o_package,date(Q3)    ┘
//! R2 = o_package,date,item(R1); R3 = o_date,customer,package(Orders)
//! Q10 = R2                         ┐
//! Q11 = o_package,item,date(R2)    │ ORD
//! Q12 = o_date,package,item(R2)    │
//! Q13 = o_customer,date,package(R3)┘
//! ```
//!
//! Q13 is printed in Figure 3 with an `item` attribute, but `R3` is a sort
//! of `Orders`, which has no `item`; the running text (Experiment 4)
//! describes Q13 as re-sorting `R3` by swapping `date` and `customer`, so
//! we implement `o_{customer,date,package}(R3)` (see DESIGN.md).

use fdb_relational::planner::JoinAggTask;
use fdb_relational::{AggFunc, AggSpec, Catalog, CmpOp, SortKey};
use fdb_workload::orders::OrdersAttrs;

/// Query classes of Figure 3, plus the extended aggregate surface.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryClass {
    /// Aggregates and group-by (Q1–Q5).
    Agg,
    /// Aggregates with order-by (Q6–Q9).
    AggOrd,
    /// Order-by only (Q10–Q13).
    Ord,
    /// Extended aggregate surface (QD/QP/QB/QK/QG): distinct counting,
    /// wrapping product, boolean quantifiers, top-k-per-group and a
    /// ROLLUP grouping-set expansion ([`extended_agg_queries`]).
    AggExt,
}

/// One benchmark query: its name, class, task, and which materialised
/// input it runs on (`R1` for Q1–Q12, `R3` for Q13).
#[derive(Clone, Debug)]
pub struct PaperQuery {
    pub name: &'static str,
    pub class: QueryClass,
    pub task: JoinAggTask,
    /// The input registered under this name is the query's FROM relation.
    pub input: &'static str,
}

/// Builds Q1–Q13 over the benchmark schema. `revenue` is interned once so
/// Q2/Q6/Q7 share the output attribute.
pub fn paper_queries(catalog: &mut Catalog, a: &OrdersAttrs) -> Vec<PaperQuery> {
    let revenue = catalog.intern("revenue");
    let sum_price = catalog.intern("sum_price");
    let sum = |out| vec![AggSpec::new(AggFunc::Sum(a.price), out)];
    let on_r1 = |group: Vec<_>, aggs, order: Vec<SortKey>| JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: group,
        aggregates: aggs,
        order_by: order,
        ..Default::default()
    };
    let ord_r1 = |order: Vec<SortKey>| JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.date, a.customer, a.item, a.price]),
        order_by: order,
        ..Default::default()
    };
    vec![
        PaperQuery {
            name: "Q1",
            class: QueryClass::Agg,
            task: on_r1(vec![a.package, a.date, a.customer], sum(sum_price), vec![]),
            input: "R1",
        },
        PaperQuery {
            name: "Q2",
            class: QueryClass::Agg,
            task: on_r1(vec![a.customer], sum(revenue), vec![]),
            input: "R1",
        },
        PaperQuery {
            name: "Q3",
            class: QueryClass::Agg,
            task: on_r1(vec![a.date, a.package], sum(sum_price), vec![]),
            input: "R1",
        },
        PaperQuery {
            name: "Q4",
            class: QueryClass::Agg,
            task: on_r1(vec![a.package], sum(sum_price), vec![]),
            input: "R1",
        },
        PaperQuery {
            name: "Q5",
            class: QueryClass::Agg,
            task: on_r1(vec![], sum(sum_price), vec![]),
            input: "R1",
        },
        PaperQuery {
            name: "Q6",
            class: QueryClass::AggOrd,
            task: on_r1(
                vec![a.customer],
                sum(revenue),
                vec![SortKey::asc(a.customer)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "Q7",
            class: QueryClass::AggOrd,
            task: on_r1(vec![a.customer], sum(revenue), vec![SortKey::asc(revenue)]),
            input: "R1",
        },
        PaperQuery {
            name: "Q8",
            class: QueryClass::AggOrd,
            task: on_r1(
                vec![a.date, a.package],
                sum(sum_price),
                vec![SortKey::asc(a.date), SortKey::asc(a.package)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "Q9",
            class: QueryClass::AggOrd,
            task: on_r1(
                vec![a.date, a.package],
                sum(sum_price),
                vec![SortKey::asc(a.package), SortKey::asc(a.date)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "Q10",
            class: QueryClass::Ord,
            task: ord_r1(vec![
                SortKey::asc(a.package),
                SortKey::asc(a.date),
                SortKey::asc(a.item),
            ]),
            input: "R1",
        },
        PaperQuery {
            name: "Q11",
            class: QueryClass::Ord,
            task: ord_r1(vec![
                SortKey::asc(a.package),
                SortKey::asc(a.item),
                SortKey::asc(a.date),
            ]),
            input: "R1",
        },
        PaperQuery {
            name: "Q12",
            class: QueryClass::Ord,
            task: ord_r1(vec![
                SortKey::asc(a.date),
                SortKey::asc(a.package),
                SortKey::asc(a.item),
            ]),
            input: "R1",
        },
        PaperQuery {
            name: "Q13",
            class: QueryClass::Ord,
            task: JoinAggTask {
                inputs: vec!["R3".into()],
                projection: Some(vec![a.customer, a.date, a.package]),
                order_by: vec![
                    SortKey::asc(a.customer),
                    SortKey::asc(a.date),
                    SortKey::asc(a.package),
                ],
                ..Default::default()
            },
            input: "R3",
        },
    ]
}

/// The extended aggregate surface over the same view — not part of
/// Figure 3. `QD` counts distinct items per customer, `QP` takes the
/// (wrapping) price product, `QB` evaluates both boolean quantifiers
/// per package, `QK` keeps the three largest prices per customer, and
/// `QG` expands `ROLLUP (customer, date)` over `SUM(price)`. Benched by
/// the `ablation` fused-vs-per-op sweep and the perf-smoke `fig5` rows.
pub fn extended_agg_queries(catalog: &mut Catalog, a: &OrdersAttrs) -> Vec<PaperQuery> {
    let u_items = catalog.intern("u_items");
    let p_price = catalog.intern("p_price");
    let e_price = catalog.intern("e_price");
    let f_price = catalog.intern("f_price");
    let top_price = catalog.intern("top_price");
    let gs_price = catalog.intern("gs_sum_price");
    let on_r1 = |group: Vec<_>, aggs| JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: group,
        aggregates: aggs,
        ..Default::default()
    };
    vec![
        PaperQuery {
            name: "QD",
            class: QueryClass::AggExt,
            task: on_r1(
                vec![a.customer],
                vec![AggSpec::new(AggFunc::CountDistinct(a.item), u_items)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "QP",
            class: QueryClass::AggExt,
            task: on_r1(
                vec![a.customer],
                vec![AggSpec::new(AggFunc::Product(a.price), p_price)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "QB",
            class: QueryClass::AggExt,
            task: on_r1(
                vec![a.package],
                vec![
                    AggSpec::new(AggFunc::Exists(a.price, CmpOp::Gt, 8), e_price),
                    AggSpec::new(AggFunc::Forall(a.price, CmpOp::Ge, 1), f_price),
                ],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "QK",
            class: QueryClass::AggExt,
            task: on_r1(
                vec![a.customer],
                vec![AggSpec::new(AggFunc::TopK(a.price, 3), top_price)],
            ),
            input: "R1",
        },
        PaperQuery {
            name: "QG",
            class: QueryClass::AggExt,
            task: JoinAggTask {
                inputs: vec!["R1".into()],
                group_by: vec![a.customer, a.date],
                grouping_sets: vec![vec![a.customer, a.date], vec![a.customer], vec![]],
                aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), gs_price)],
                ..Default::default()
            },
            input: "R1",
        },
    ]
}

/// The flat-input variants of the AGG queries (Figure 6): same grouping
/// and aggregates, but over the three base relations instead of the view.
pub fn flat_input_agg_queries(catalog: &mut Catalog, a: &OrdersAttrs) -> Vec<PaperQuery> {
    paper_queries(catalog, a)
        .into_iter()
        .filter(|q| q.class == QueryClass::Agg)
        .map(|mut q| {
            q.task.inputs = vec!["Orders".into(), "Packages".into(), "Items".into()];
            q
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdb_workload::orders::{generate, OrdersConfig};

    #[test]
    fn thirteen_queries_in_three_classes() {
        let mut c = Catalog::new();
        let ds = generate(
            &mut c,
            &OrdersConfig {
                scale: 1,
                customers: 4,
                seed: 1,
            },
        );
        let qs = paper_queries(&mut c, &ds.attrs);
        assert_eq!(qs.len(), 13);
        assert_eq!(qs.iter().filter(|q| q.class == QueryClass::Agg).count(), 5);
        assert_eq!(
            qs.iter().filter(|q| q.class == QueryClass::AggOrd).count(),
            4
        );
        assert_eq!(qs.iter().filter(|q| q.class == QueryClass::Ord).count(), 4);
        assert!(qs.iter().all(|q| !q.task.inputs.is_empty()));
    }

    #[test]
    fn flat_variants_join_three_relations() {
        let mut c = Catalog::new();
        let ds = generate(
            &mut c,
            &OrdersConfig {
                scale: 1,
                customers: 4,
                seed: 1,
            },
        );
        let qs = flat_input_agg_queries(&mut c, &ds.attrs);
        assert_eq!(qs.len(), 5);
        assert!(qs.iter().all(|q| q.task.inputs.len() == 3));
    }
}
