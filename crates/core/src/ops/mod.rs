//! F-plan operators on factorised representations (§2.1, §3, §4.2).
//!
//! Each operator transforms an [`crate::frep::FRep`] into another one, changing the
//! f-tree and mirroring the change on the data in one pass:
//!
//! | operator | implements | module |
//! |---|---|---|
//! | `product` | cross product (cheapest op: forest union) | [`product`] |
//! | `select_const` | `A θ c` selections | [`select`] |
//! | `merge` / `absorb` | `A = B` selections (siblings / path) | [`restructure`] |
//! | `swap` | restructuring `χ_{A,B}` | [`restructure`] |
//! | `aggregate` | the new aggregation operator `γ_F(U)` | [`aggregate`] |
//! | `project_away` | projection (leaf removal, with push-down) | [`project`] |
//! | `rename` | constant-time attribute renaming | [`project`] |
//!
//! All operators preserve the sortedness invariant of unions and prune
//! entries whose subtrees become empty, cascading towards the roots.

pub mod aggregate;
pub mod product;
pub mod project;
pub mod restructure;
pub mod select;

pub use aggregate::{aggregate, aggregate_par, AggTarget};
pub use product::product;
pub use project::{project_away, remove_leaf, rename};
pub use restructure::{absorb, merge, swap};
pub use select::select_const;

use crate::error::Result;
use crate::frep::Union;
use crate::ftree::{FTree, NodeId};

/// Applies `f` to every occurrence of `target`'s union within `roots`.
///
/// The unions of a node occur once per combination of its ancestors'
/// values; this walks the unique root path (computed on the f-tree *before*
/// any structural change) and rewrites each occurrence. If `f` returns
/// `None` — or a union with no entries — the containing entry is pruned and
/// pruning cascades upward; at the root an empty union denotes the empty
/// relation.
pub(crate) fn rewrite_at(
    tree: &FTree,
    mut roots: Vec<Union>,
    target: NodeId,
    f: &mut dyn FnMut(Union) -> Result<Option<Union>>,
) -> Result<Vec<Union>> {
    let path = tree.root_path(target);
    let root_idx = tree
        .roots()
        .iter()
        .position(|&r| r == path[0])
        .expect("target's root is a forest root");
    let placeholder = Union::empty(path[0]);
    let u = std::mem::replace(&mut roots[root_idx], placeholder);
    let nu = rewrite_rec(tree, u, &path, f)?;
    roots[root_idx] = nu.unwrap_or_else(|| Union::empty(path[0]));
    Ok(roots)
}

fn rewrite_rec(
    tree: &FTree,
    u: Union,
    path: &[NodeId],
    f: &mut dyn FnMut(Union) -> Result<Option<Union>>,
) -> Result<Option<Union>> {
    debug_assert_eq!(u.node, path[0]);
    if path.len() == 1 {
        return Ok(f(u)?.filter(|nu| !nu.entries.is_empty()));
    }
    let child_idx = tree
        .node(path[0])
        .children
        .iter()
        .position(|&c| c == path[1])
        .expect("path step is a child");
    let mut entries = Vec::with_capacity(u.entries.len());
    for mut e in u.entries {
        let slot = std::mem::replace(&mut e.children[child_idx], Union::empty(path[1]));
        if let Some(nu) = rewrite_rec(tree, slot, &path[1..], f)? {
            e.children[child_idx] = nu;
            entries.push(e);
        }
    }
    Ok((!entries.is_empty()).then_some(Union {
        node: u.node,
        entries,
    }))
}
