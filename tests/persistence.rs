//! Materialised factorised views survive a save/load cycle — the
//! read-optimised workflow: build once, persist, reload into a fresh
//! engine, query.

mod common;

use fdb::core::engine::FdbEngine;
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::{Catalog, Value};

#[test]
fn save_and_reload_view_then_query() {
    // Build the factorised view in one engine.
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 10,
            seed: 21,
        },
    );
    let mut producer = FdbEngine::new(catalog);
    producer.register_view("R1", ds.factorised_view());
    let expected = producer
        .run_sql(
            "SELECT customer, SUM(price) AS revenue FROM R1 \
             GROUP BY customer ORDER BY customer",
        )
        .unwrap();

    // Persist it.
    let mut bytes = Vec::new();
    producer.save_view("R1", &mut bytes).unwrap();
    assert!(!bytes.is_empty());

    // A fresh consumer engine with an empty catalog loads and queries it.
    let mut consumer = FdbEngine::new(Catalog::new());
    consumer.load_view("R1", bytes.as_slice()).unwrap();
    let got = consumer
        .run_sql(
            "SELECT customer, SUM(price) AS revenue FROM R1 \
             GROUP BY customer ORDER BY customer",
        )
        .unwrap();

    // Attribute ids differ across catalogs; compare the tuple data.
    let tuples =
        |r: &fdb::Relation| -> Vec<Vec<Value>> { r.rows().map(|row| row.to_vec()).collect() };
    assert_eq!(tuples(&expected), tuples(&got));
    assert!(!got.is_empty());
}

#[test]
fn pizzeria_view_through_a_file() {
    let mut e = common::pizzeria_engines();
    // Materialise the join as a view via an SPJ run.
    let task = fdb::relational::planner::JoinAggTask {
        inputs: vec!["Orders".into(), "Pizzas".into(), "Items".into()],
        ..Default::default()
    };
    let rep = e.fdb.run_default(&task).unwrap().rep().clone();
    e.fdb.register_view("R", rep);

    let dir = std::env::temp_dir().join("fdb_persistence_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("pizzeria.fdbv1");
    {
        let file = std::fs::File::create(&path).unwrap();
        e.fdb.save_view("R", std::io::BufWriter::new(file)).unwrap();
    }
    let mut fresh = FdbEngine::new(Catalog::new());
    {
        let file = std::fs::File::open(&path).unwrap();
        fresh.load_view("R", std::io::BufReader::new(file)).unwrap();
    }
    std::fs::remove_file(&path).ok();
    let out = fresh.run_sql("SELECT SUM(price) AS total FROM R").unwrap();
    assert_eq!(out.row(0)[0], Value::Int(40));
}

#[test]
fn save_unknown_view_errors() {
    let e = FdbEngine::new(Catalog::new());
    let mut sink = Vec::new();
    assert!(e.save_view("missing", &mut sink).is_err());
}
