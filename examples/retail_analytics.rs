//! Retail analytics on the scalable benchmark dataset (§6 schema).
//!
//! Generates the Orders/Packages/Items database at a small scale,
//! materialises the factorised view `R1 = Orders ⋈ Packages ⋈ Items` over
//! the paper's f-tree, and answers a set of business questions on it,
//! timing the factorised engine against the relational baseline:
//!
//! * revenue per customer (AGG);
//! * top-5 customers by revenue (AGG + ORDER BY aggregate + LIMIT);
//! * average basket price per package (avg = sum/count);
//! * cheapest and dearest package contents (min/max);
//! * the catalogue ordered three different ways without re-sorting
//!   (ORDER BY on the factorisation, Theorem 2).
//!
//! Run with: `cargo run --release --example retail_analytics`

use fdb::core::engine::FdbEngine;
use fdb::relational::engine::{PlanMode, RdbEngine};
use fdb::relational::planner::JoinAggTask;
use fdb::relational::{AggFunc, AggSpec, GroupStrategy, SortKey};
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::Catalog;
use std::time::Instant;

fn main() {
    let mut catalog = Catalog::new();
    let cfg = OrdersConfig {
        scale: 2,
        customers: 100,
        seed: 7,
    };
    println!(
        "generating orders dataset at scale {} ({} dates, {} packages, {} items)…",
        cfg.scale,
        cfg.dates(),
        cfg.packages(),
        cfg.items()
    );
    let ds = generate(&mut catalog, &cfg);
    let a = ds.attrs;
    let view = ds.factorised_view();
    println!(
        "flat join: {} tuples ({} singletons) — factorised view: {} singletons ({}x smaller)\n",
        ds.flat_join_size(),
        ds.flat_join_size() * 5,
        view.singleton_count(),
        (ds.flat_join_size() * 5) / view.singleton_count().max(1)
    );

    let mut fdb = FdbEngine::new(catalog.clone());
    fdb.register_view("R1", view);

    let mut rdb = RdbEngine::new(catalog.clone(), GroupStrategy::Hash);
    rdb.register("R1", ds.join());

    let revenue = fdb.catalog.intern("revenue");
    rdb.catalog = fdb.catalog.clone();

    // ---- Revenue per customer -------------------------------------
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.customer],
        aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), revenue)],
        order_by: vec![SortKey::asc(a.customer)],
        ..Default::default()
    };
    let t0 = Instant::now();
    let fdb_out = fdb.run_default(&task).unwrap().to_relation().unwrap();
    let t_fdb = t0.elapsed();
    let t0 = Instant::now();
    let rdb_out = rdb.run(&task, PlanMode::Naive).unwrap();
    let t_rdb = t0.elapsed();
    assert_eq!(fdb_out.canonical(), rdb_out.canonical());
    println!(
        "revenue per customer: {} groups | FDB {:?} vs RDB {:?}",
        fdb_out.len(),
        t_fdb,
        t_rdb
    );

    // ---- Top-5 customers by revenue --------------------------------
    let task = JoinAggTask {
        order_by: vec![SortKey::desc(revenue)],
        limit: Some(5),
        ..task
    };
    let top = fdb.run_default(&task).unwrap().to_relation().unwrap();
    println!(
        "\ntop-5 customers by revenue:\n{}",
        top.display(&fdb.catalog)
    );

    // ---- Average item price per package ----------------------------
    let mean = fdb.catalog.intern("avg_item_price");
    rdb.catalog = fdb.catalog.clone();
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.package],
        aggregates: vec![AggSpec::new(AggFunc::Avg(a.price), mean)],
        order_by: vec![SortKey::asc(a.package)],
        limit: Some(3),
        ..Default::default()
    };
    let avg_out = fdb.run_default(&task).unwrap().to_relation().unwrap();
    println!(
        "average item price for the first packages:\n{}",
        avg_out.display(&fdb.catalog)
    );

    // ---- Cheapest / dearest item per package -----------------------
    let lo = fdb.catalog.intern("cheapest");
    let hi = fdb.catalog.intern("dearest");
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.package],
        aggregates: vec![
            AggSpec::new(AggFunc::Min(a.price), lo),
            AggSpec::new(AggFunc::Max(a.price), hi),
        ],
        order_by: vec![SortKey::asc(a.package)],
        limit: Some(3),
        ..Default::default()
    };
    let mm = fdb.run_default(&task).unwrap().to_relation().unwrap();
    println!("price extremes per package:\n{}", mm.display(&fdb.catalog));

    // ---- Three orders from one factorisation -----------------------
    // T supports (package, date, item) and (package, item, date) without
    // restructuring; (date, package, item) needs one swap (Experiment 4).
    for keys in [
        vec![
            SortKey::asc(a.package),
            SortKey::asc(a.date),
            SortKey::asc(a.item),
        ],
        vec![
            SortKey::asc(a.package),
            SortKey::asc(a.item),
            SortKey::asc(a.date),
        ],
        vec![
            SortKey::asc(a.date),
            SortKey::asc(a.package),
            SortKey::asc(a.item),
        ],
    ] {
        let names: Vec<String> = keys
            .iter()
            .map(|k| fdb.catalog.name(k.attr).to_string())
            .collect();
        let supported =
            fdb::core::enumerate::supports_order(fdb.view("R1").unwrap().ftree(), &keys);
        let task = JoinAggTask {
            inputs: vec!["R1".into()],
            order_by: keys,
            limit: Some(3),
            ..Default::default()
        };
        let t0 = Instant::now();
        let out = fdb.run_default(&task).unwrap().to_relation().unwrap();
        println!(
            "order by ({}): first tuple {:?} | already supported: {supported} | {:?}",
            names.join(", "),
            out.row(0).iter().map(|v| v.to_string()).collect::<Vec<_>>(),
            t0.elapsed()
        );
    }
}
