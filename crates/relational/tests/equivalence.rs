//! Property-based equivalence of the relational substrate's alternative
//! implementations: the two join algorithms, the two grouping strategies,
//! and the naive vs eager (Yan–Larson) planners must be observationally
//! identical on arbitrary inputs.

use fdb_relational::engine::{PlanMode, RdbEngine};
use fdb_relational::ops::{self, GroupStrategy};
use fdb_relational::planner::JoinAggTask;
use fdb_relational::{AggFunc, AggSpec, AttrId, Catalog, Relation, Schema, SortKey, Value};
use proptest::prelude::*;

fn rel2(x: AttrId, y: AttrId, rows: &[(i64, i64)]) -> Relation {
    Relation::from_rows(
        Schema::new(vec![x, y]),
        rows.iter()
            .map(|&(u, v)| vec![Value::Int(u), Value::Int(v)]),
    )
    .canonical()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn joins_agree(
        l in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        r in prop::collection::vec((0i64..6, 0i64..6), 0..25),
    ) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let d = c.intern("d");
        let left = rel2(a, b, &l);
        let right = rel2(b, d, &r);
        let h = ops::hash_join(&left, &right).canonical();
        let m = ops::sort_merge_join(&left, &right).canonical();
        prop_assert_eq!(h, m);
    }

    #[test]
    fn grouping_strategies_agree(
        rows in prop::collection::vec((0i64..5, -9i64..9), 0..30),
    ) {
        let mut c = Catalog::new();
        let g = c.intern("g");
        let v = c.intern("v");
        let rel = rel2(g, v, &rows);
        let outs: Vec<AttrId> = ["s", "n", "lo", "hi", "m"]
            .iter()
            .map(|n| c.intern(n))
            .collect();
        let aggs: Vec<_> = vec![
            AggSpec::new(AggFunc::Sum(v), outs[0]).into(),
            AggSpec::new(AggFunc::Count, outs[1]).into(),
            AggSpec::new(AggFunc::Min(v), outs[2]).into(),
            AggSpec::new(AggFunc::Max(v), outs[3]).into(),
            AggSpec::new(AggFunc::Avg(v), outs[4]).into(),
        ];
        let sorted = ops::group_aggregate(&rel, &[g], &aggs, GroupStrategy::Sort).canonical();
        let hashed = ops::group_aggregate(&rel, &[g], &aggs, GroupStrategy::Hash).canonical();
        prop_assert_eq!(sorted, hashed);
    }

    #[test]
    fn eager_plan_agrees_with_naive(
        l in prop::collection::vec((0i64..5, 0i64..5), 0..20),
        r in prop::collection::vec((0i64..5, 0i64..5), 0..20),
        group_left in any::<bool>(),
    ) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let d = c.intern("d");
        let mut engine = RdbEngine::new(c, GroupStrategy::Sort);
        engine.register("L", rel2(a, b, &l));
        engine.register("R", rel2(b, d, &r));
        let s = engine.catalog.intern("s");
        let n = engine.catalog.intern("n");
        let task = JoinAggTask {
            inputs: vec!["L".into(), "R".into()],
            group_by: vec![if group_left { a } else { d }],
            aggregates: vec![
                AggSpec::new(AggFunc::Sum(d), s),
                AggSpec::new(AggFunc::Count, n),
            ],
            ..Default::default()
        };
        let naive = engine.run(&task, PlanMode::Naive).unwrap().canonical();
        let eager = engine.run(&task, PlanMode::Eager).unwrap().canonical();
        prop_assert_eq!(naive, eager);
    }

    #[test]
    fn top_k_equals_sort_then_limit(
        rows in prop::collection::vec((0i64..9, 0i64..9), 0..30),
        k in 0usize..12,
    ) {
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let rel = rel2(x, y, &rows);
        // Total order (both columns) makes top-k deterministic.
        let keys = [SortKey::asc(x), SortKey::desc(y)];
        let direct = ops::top_k(&rel, &keys, k);
        let manual = ops::limit(&ops::order_by(&rel, &keys), k);
        prop_assert_eq!(direct, manual);
    }

    #[test]
    fn select_then_project_commutes_when_attr_kept(
        rows in prop::collection::vec((0i64..6, 0i64..6), 0..25),
        threshold in 0i64..6,
    ) {
        use fdb_relational::{CmpOp, Predicate};
        let mut c = Catalog::new();
        let x = c.intern("x");
        let y = c.intern("y");
        let rel = rel2(x, y, &rows);
        let pred = Predicate::AttrCmp(x, CmpOp::Ge, Value::Int(threshold));
        let a = ops::project(&ops::select(&rel, std::slice::from_ref(&pred)), &[x], true);
        let b = ops::select(&ops::project(&rel, &[x], true), &[pred]);
        prop_assert_eq!(a.canonical(), b.canonical());
    }
}

#[test]
fn eager_three_way_chain_fixed_case() {
    // A deterministic three-relation case covering the weighted
    // recombination (partial sums times foreign counts).
    let mut c = Catalog::new();
    let a = c.intern("a");
    let b = c.intern("b");
    let d = c.intern("d");
    let e_attr = c.intern("e");
    let mut engine = RdbEngine::new(c, GroupStrategy::Hash);
    engine.register("R", rel2(a, b, &[(1, 1), (1, 2), (2, 1), (3, 2), (3, 3)]));
    engine.register("S", rel2(b, d, &[(1, 10), (1, 20), (2, 10), (3, 30)]));
    engine.register("T", rel2(d, e_attr, &[(10, 5), (20, 5), (20, 7), (30, 9)]));
    let s = engine.catalog.intern("sum_e");
    let n = engine.catalog.intern("cnt");
    let task = JoinAggTask {
        inputs: vec!["R".into(), "S".into(), "T".into()],
        group_by: vec![a],
        aggregates: vec![
            AggSpec::new(AggFunc::Sum(e_attr), s),
            AggSpec::new(AggFunc::Count, n),
        ],
        ..Default::default()
    };
    let naive = engine.run(&task, PlanMode::Naive).unwrap().canonical();
    let eager = engine.run(&task, PlanMode::Eager).unwrap().canonical();
    assert_eq!(naive, eager);
    assert!(!naive.is_empty());
}
