//! Perf-regression gating over the `--json` results format.
//!
//! The figure binaries emit a machine-readable results file (see
//! [`crate::harness::Emitter`]); `BENCH_s1.json` in the repository root
//! is the committed baseline. The CI perf-smoke step re-runs `fig5
//! --scale 1 --json` on the runner and calls [`compare`] (via the
//! `perfgate` binary) to fail the build when an FDB row regresses by
//! more than a generous ratio — the threshold tolerates runner noise and
//! only catches order-of-magnitude slowdowns, which is exactly what a
//! storage-layout regression looks like.
//!
//! The parser below handles precisely the JSON subset the
//! [`crate::harness::Emitter`] writes (an object with scalar fields and
//! one array of flat row objects); it is not a general JSON reader and
//! rejects anything else.

use std::collections::BTreeMap;

/// One timing row of a results file.
#[derive(Clone, Debug, PartialEq)]
pub struct PerfRow {
    pub figure: String,
    pub scale: u64,
    pub query: String,
    pub engine: String,
    /// Optional configuration tag (`t1`, `t0`, … in the threads sweep);
    /// part of the row identity, so one file can gate the same query at
    /// several configurations. Empty for untagged rows.
    pub tag: String,
    pub seconds: f64,
    pub note: String,
}

impl PerfRow {
    /// The identity a row is matched on across files.
    pub fn key(&self) -> String {
        let tag = if self.tag.is_empty() {
            String::new()
        } else {
            format!(" tag={}", self.tag)
        };
        format!(
            "figure={} scale={} query={} engine={}{tag}",
            self.figure, self.scale, self.query, self.engine
        )
    }

    /// Extracts an integer `key=value` stat from the row's note (the
    /// figure binaries embed stats such as `bytes=…` and `ibytes=…`).
    pub fn note_stat(&self, key: &str) -> Option<u64> {
        for part in self.note.split_whitespace() {
            if let Some(v) = part.strip_prefix(key) {
                if let Some(v) = v.strip_prefix('=') {
                    return v.parse().ok();
                }
            }
        }
        None
    }
}

/// The quantity one verdict gates on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Wall-clock seconds of the row.
    Seconds,
    /// Peak intermediate arena bytes of the plan run (`ibytes=` note).
    IntermediateBytes,
}

impl Metric {
    pub fn label(&self) -> &'static str {
        match self {
            Metric::Seconds => "seconds",
            Metric::IntermediateBytes => "ibytes",
        }
    }
}

/// One gate comparison outcome.
#[derive(Clone, Debug)]
pub struct Verdict {
    pub key: String,
    pub metric: Metric,
    pub baseline: f64,
    pub current: f64,
    /// `current / max(baseline, floor)`.
    pub ratio: f64,
    pub failed: bool,
}

/// Gate configuration.
#[derive(Clone, Copy, Debug)]
pub struct GateConfig<'a> {
    /// Fail when `current / max(baseline, floor_secs) > max_ratio`.
    pub max_ratio: f64,
    /// Baselines below this are clamped up before the division, so
    /// sub-millisecond rows do not amplify timer noise into failures.
    pub floor_secs: f64,
    /// Fail when a row's `ibytes=` note grows past
    /// `max_mem_ratio × max(baseline, floor_bytes)` — intermediate
    /// allocation is deterministic, so this is much tighter than the
    /// timing ratio; the slack only absorbs record-layout and
    /// allocator differences across toolchains. Rows whose *baseline*
    /// lacks the stat are skipped (pre-fusion baselines), rows that
    /// *lose* it fail.
    pub max_mem_ratio: f64,
    /// Baselines below this are clamped up before the division —
    /// the analog of `floor_secs` for the memory gate, so rows with
    /// a few hundred bytes of intermediates don't gate on a
    /// tens-of-bytes tolerance.
    pub floor_bytes: u64,
    /// Only rows whose engine starts with this prefix are gated
    /// (the acceptance criterion targets the FDB rows; the relational
    /// baselines are too noisy to gate).
    pub engine_prefix: &'a str,
}

impl Default for GateConfig<'_> {
    fn default() -> Self {
        GateConfig {
            max_ratio: 3.0,
            floor_secs: 0.001,
            max_mem_ratio: 1.2,
            floor_bytes: 64 * 1024,
            engine_prefix: "FDB",
        }
    }
}

/// Compares `current` against `baseline` row-by-row, gating wall time
/// for every matched row and intermediate bytes for rows whose
/// baseline note carries `ibytes=`.
///
/// Returns one [`Verdict`] per gated (row, metric) pair. A gated
/// baseline row *missing* from `current` is reported as failed (a
/// silently dropped measurement must not weaken the gate); extra rows
/// in `current` are ignored.
pub fn compare(baseline: &[PerfRow], current: &[PerfRow], cfg: &GateConfig<'_>) -> Vec<Verdict> {
    let cur: BTreeMap<String, &PerfRow> = current.iter().map(|r| (r.key(), r)).collect();
    let mut out = Vec::new();
    for b in baseline {
        if !b.engine.starts_with(cfg.engine_prefix) {
            continue;
        }
        let key = b.key();
        match cur.get(&key) {
            None => {
                out.push(Verdict {
                    key,
                    metric: Metric::Seconds,
                    baseline: b.seconds,
                    current: f64::NAN,
                    ratio: f64::INFINITY,
                    failed: true,
                });
            }
            Some(c) => {
                let denom = b.seconds.max(cfg.floor_secs);
                let ratio = c.seconds / denom;
                out.push(Verdict {
                    key: key.clone(),
                    metric: Metric::Seconds,
                    baseline: b.seconds,
                    current: c.seconds,
                    ratio,
                    failed: ratio > cfg.max_ratio,
                });
                if let Some(bb) = b.note_stat("ibytes") {
                    let (cb, ratio, failed) = match c.note_stat("ibytes") {
                        None => (f64::NAN, f64::INFINITY, true),
                        Some(cb) => {
                            let denom = bb.max(cfg.floor_bytes).max(1);
                            let ratio = cb as f64 / denom as f64;
                            (cb as f64, ratio, ratio > cfg.max_mem_ratio)
                        }
                    };
                    out.push(Verdict {
                        key,
                        metric: Metric::IntermediateBytes,
                        baseline: bb as f64,
                        current: cb,
                        ratio,
                        failed,
                    });
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Minimal parser for the Emitter's JSON subset
// ---------------------------------------------------------------------

struct Cursor<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Cursor<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && self.b[self.i].is_ascii_whitespace() {
            self.i += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        self.ws();
        if self.b.get(self.i) == Some(&c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {} of results file",
                c as char, self.i
            ))
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.b.get(self.i) {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    match self.b.get(self.i) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'n') => out.push('\n'),
                        Some(b'u') => {
                            let hex = self
                                .b
                                .get(self.i + 1..self.i + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.i += 4;
                        }
                        other => return Err(format!("unsupported escape {other:?}")),
                    }
                    self.i += 1;
                }
                Some(&c) => {
                    // The Emitter writes UTF-8; collect continuation bytes.
                    let start = self.i;
                    self.i += 1;
                    while self.b.get(self.i).is_some_and(|&b| b & 0xC0 == 0x80) {
                        self.i += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.b[start..self.i])
                            .map_err(|_| "non-utf8 string")?,
                    );
                    let _ = c;
                }
            }
        }
    }

    fn number(&mut self) -> Result<f64, String> {
        self.ws();
        let start = self.i;
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.i += 1;
        }
        std::str::from_utf8(&self.b[start..self.i])
            .ok()
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("bad number at byte {start}"))
    }
}

/// Parses a results file produced by [`crate::harness::Emitter::to_json`].
pub fn parse_results(text: &str) -> Result<Vec<PerfRow>, String> {
    let mut c = Cursor {
        b: text.as_bytes(),
        i: 0,
    };
    c.eat(b'{')?;
    let mut rows = Vec::new();
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        if key == "rows" {
            c.eat(b'[')?;
            if c.peek() == Some(b']') {
                c.eat(b']')?;
            } else {
                loop {
                    rows.push(parse_row(&mut c)?);
                    match c.peek() {
                        Some(b',') => c.eat(b',')?,
                        _ => {
                            c.eat(b']')?;
                            break;
                        }
                    }
                }
            }
        } else {
            // Scalar header field (threads, repeats): skip its value.
            c.number()?;
        }
        match c.peek() {
            Some(b',') => c.eat(b',')?,
            _ => {
                c.eat(b'}')?;
                break;
            }
        }
    }
    Ok(rows)
}

fn parse_row(c: &mut Cursor<'_>) -> Result<PerfRow, String> {
    c.eat(b'{')?;
    let mut row = PerfRow {
        figure: String::new(),
        scale: 0,
        query: String::new(),
        engine: String::new(),
        tag: String::new(),
        seconds: 0.0,
        note: String::new(),
    };
    loop {
        let key = c.string()?;
        c.eat(b':')?;
        match key.as_str() {
            "figure" => row.figure = c.string()?,
            "scale" => row.scale = c.number()? as u64,
            "query" => row.query = c.string()?,
            "engine" => row.engine = c.string()?,
            "tag" => row.tag = c.string()?,
            "seconds" => row.seconds = c.number()?,
            "note" => row.note = c.string()?,
            other => return Err(format!("unknown row field `{other}`")),
        }
        match c.peek() {
            Some(b',') => c.eat(b',')?,
            _ => {
                c.eat(b'}')?;
                break;
            }
        }
    }
    Ok(row)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> String {
        let mut e = crate::harness::Emitter::for_tests(2, 3);
        e.row("5", 1, "Q1", "FDB f/o", 0.002, "singletons=10");
        e.row("5", 1, "Q1", "FDB", 0.004, "rows=5 with \"quotes\"");
        e.row("5", 1, "Q1", "RDB sort", 0.100, "");
        e.to_json()
    }

    #[test]
    fn parses_emitter_output() {
        let rows = parse_results(&sample()).unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].engine, "FDB f/o");
        assert_eq!(rows[0].seconds, 0.002);
        assert_eq!(rows[1].note, "rows=5 with \"quotes\"");
        assert_eq!(rows[2].engine, "RDB sort");
    }

    #[test]
    fn empty_rows_parse() {
        let rows = parse_results("{\n \"threads\": 1,\n \"rows\": [\n ]\n}\n").unwrap();
        assert!(rows.is_empty());
    }

    #[test]
    fn malformed_is_rejected() {
        assert!(parse_results("not json").is_err());
        assert!(parse_results("{\"rows\": [{\"bogus\": 1}]}").is_err());
    }

    #[test]
    fn tagged_rows_round_trip_with_distinct_keys() {
        let mut e = crate::harness::Emitter::for_tests(1, 3);
        e.row_tagged("T", 1, "Q1", "FDB", "t1", 0.004, "rows=5");
        e.row_tagged("T", 1, "Q1", "FDB", "t0", 0.002, "rows=5");
        let rows = parse_results(&e.to_json()).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].tag, "t1");
        assert_eq!(rows[1].tag, "t0");
        // The tag is part of the identity: both rows gate independently.
        assert_ne!(rows[0].key(), rows[1].key());
        let verdicts = compare(&rows, &rows, &GateConfig::default());
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| !v.failed));
        // A missing tagged row still fails the gate.
        let verdicts = compare(&rows, &rows[..1], &GateConfig::default());
        assert!(verdicts.iter().any(|v| v.failed));
    }

    #[test]
    fn gate_passes_within_ratio() {
        let base = parse_results(&sample()).unwrap();
        let mut cur = base.clone();
        for r in &mut cur {
            r.seconds *= 1.5; // well under 3×
        }
        let verdicts = compare(&base, &cur, &GateConfig::default());
        // RDB rows are not gated.
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| !v.failed));
    }

    #[test]
    fn gate_fails_on_big_regression() {
        let base = parse_results(&sample()).unwrap();
        let mut cur = base.clone();
        cur[1].seconds = 1.0; // FDB row 250× slower
        let verdicts = compare(&base, &cur, &GateConfig::default());
        assert!(verdicts.iter().any(|v| v.failed));
    }

    #[test]
    fn gate_floor_absorbs_micro_noise() {
        // A 0.2 ms baseline that becomes 0.9 ms is noise, not a
        // regression: the 1 ms floor keeps the ratio under threshold.
        let base = vec![PerfRow {
            figure: "5".into(),
            scale: 1,
            query: "Q1".into(),
            engine: "FDB".into(),
            tag: String::new(),
            seconds: 0.0002,
            note: String::new(),
        }];
        let mut cur = base.clone();
        cur[0].seconds = 0.0009;
        let verdicts = compare(&base, &cur, &GateConfig::default());
        assert!(!verdicts[0].failed, "{verdicts:?}");
    }

    #[test]
    fn gate_fails_on_missing_row() {
        let base = parse_results(&sample()).unwrap();
        let verdicts = compare(&base, &[], &GateConfig::default());
        assert_eq!(verdicts.len(), 2);
        assert!(verdicts.iter().all(|v| v.failed));
    }

    fn row_with_note(note: &str) -> PerfRow {
        PerfRow {
            figure: "5".into(),
            scale: 1,
            query: "Q1".into(),
            engine: "FDB f/o".into(),
            tag: String::new(),
            seconds: 0.002,
            note: note.into(),
        }
    }

    #[test]
    fn note_stats_parse() {
        let r = row_with_note("singletons=27900 bytes=1445152 ibytes=2000000");
        assert_eq!(r.note_stat("bytes"), Some(1445152));
        assert_eq!(r.note_stat("ibytes"), Some(2000000));
        assert_eq!(r.note_stat("rows"), None);
        // `bytes` must not match inside `ibytes`.
        let r = row_with_note("ibytes=7");
        assert_eq!(r.note_stat("bytes"), None);
    }

    #[test]
    fn memory_gate_fails_on_intermediate_growth() {
        let base = vec![row_with_note("ibytes=1000000")];
        let mut cur = base.clone();
        cur[0].note = "ibytes=1100000".into(); // within 1.2×
        let ok = compare(&base, &cur, &GateConfig::default());
        assert_eq!(ok.len(), 2); // seconds + ibytes
        assert!(ok.iter().all(|v| !v.failed), "{ok:?}");
        cur[0].note = "ibytes=1300000".into(); // past 1.2×
        let bad = compare(&base, &cur, &GateConfig::default());
        let mem = bad
            .iter()
            .find(|v| v.metric == Metric::IntermediateBytes)
            .unwrap();
        assert!(mem.failed, "{bad:?}");
    }

    #[test]
    fn memory_gate_floor_absorbs_tiny_baselines() {
        // A 368-byte baseline growing by a few hundred bytes is record
        // noise, not a regression: the 64 KiB floor keeps the ratio
        // harmless, exactly like `floor_secs` does for timings.
        let base = vec![row_with_note("ibytes=368")];
        let mut cur = base.clone();
        cur[0].note = "ibytes=900".into();
        let verdicts = compare(&base, &cur, &GateConfig::default());
        let mem = verdicts
            .iter()
            .find(|v| v.metric == Metric::IntermediateBytes)
            .unwrap();
        assert!(!mem.failed, "{verdicts:?}");
    }

    #[test]
    fn memory_gate_skips_pre_fusion_baselines_but_not_dropped_stats() {
        // Baseline without the stat: nothing to gate on.
        let base = vec![row_with_note("bytes=5")];
        let cur = vec![row_with_note("bytes=5 ibytes=9")];
        let verdicts = compare(&base, &cur, &GateConfig::default());
        assert_eq!(verdicts.len(), 1);
        // Baseline with the stat, current silently dropping it: fail.
        let base = vec![row_with_note("ibytes=9")];
        let cur = vec![row_with_note("bytes=5")];
        let verdicts = compare(&base, &cur, &GateConfig::default());
        let mem = verdicts
            .iter()
            .find(|v| v.metric == Metric::IntermediateBytes)
            .unwrap();
        assert!(mem.failed);
    }
}
