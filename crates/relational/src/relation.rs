//! In-memory relations with set semantics.
//!
//! A [`Relation`] stores tuples row-major in one flat `Vec<Value>` (arity
//! stride), which keeps scans cache-friendly and avoids one allocation per
//! tuple. Relational algebra in the paper is over *sets* of tuples — the
//! factorised representations denote sets (Def. 1: unions are disjoint) — so
//! relations offer canonicalisation (sort + dedup) and all engines preserve
//! distinctness.

use crate::attr::Catalog;
use crate::schema::Schema;
use crate::value::Value;
use crate::AttrId;
use std::cmp::Ordering;
use std::fmt;

/// Sort direction for one ordering key, ascending by default as in the paper
/// (`oG` orders ascending unless `↓` is specified, §2).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum SortDir {
    #[default]
    Asc,
    Desc,
}

impl SortDir {
    /// Applies the direction to an ascending comparison result.
    #[inline]
    pub fn apply(self, ord: Ordering) -> Ordering {
        match self {
            SortDir::Asc => ord,
            SortDir::Desc => ord.reverse(),
        }
    }
}

/// One ordering key: attribute plus direction.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SortKey {
    pub attr: AttrId,
    pub dir: SortDir,
}

impl SortKey {
    /// Ascending key.
    pub fn asc(attr: AttrId) -> Self {
        SortKey {
            attr,
            dir: SortDir::Asc,
        }
    }

    /// Descending key.
    pub fn desc(attr: AttrId) -> Self {
        SortKey {
            attr,
            dir: SortDir::Desc,
        }
    }
}

/// Normalises an ORDER BY key list: later occurrences of an attribute are
/// dropped, keeping the **first** occurrence (and its direction).
///
/// A duplicate key — even with a conflicting direction, as in
/// `ORDER BY a ASC, a DESC` — can never influence the order: rows equal
/// under the first occurrence carry equal values in the duplicate column
/// too, so the first occurrence decides. Normalising once up front makes
/// every consumer (the flat [`Relation::sort_by_keys`] comparator,
/// arena-ordered enumeration, and heap top-k) honour the first occurrence
/// by construction instead of each re-deriving the rule.
pub fn dedup_sort_keys(keys: &[SortKey]) -> Vec<SortKey> {
    let mut out: Vec<SortKey> = Vec::with_capacity(keys.len());
    for k in keys {
        if !out.iter().any(|seen| seen.attr == k.attr) {
            out.push(*k);
        }
    }
    out
}

/// A materialised relation: a schema plus a flat row-major tuple store.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    schema: Schema,
    data: Vec<Value>,
}

impl Relation {
    /// Creates an empty relation over `schema`.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            data: Vec::new(),
        }
    }

    /// Creates a relation from rows.
    ///
    /// # Panics
    /// Panics if any row's length differs from the schema arity.
    pub fn from_rows(schema: Schema, rows: impl IntoIterator<Item = Vec<Value>>) -> Self {
        let mut rel = Relation::empty(schema);
        for row in rows {
            rel.push_row(&row);
        }
        rel
    }

    /// The relation's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.schema.arity()
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        if self.schema.arity() == 0 {
            // A nullary relation holds either zero tuples or the nullary
            // tuple once; we track it via a sentinel length in `data`.
            return self.data.len();
        }
        self.data.len() / self.schema.arity()
    }

    /// True if the relation holds no tuples.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one tuple.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn push_row(&mut self, row: &[Value]) {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} does not match schema arity {}",
            row.len(),
            self.schema.arity()
        );
        if self.schema.arity() == 0 {
            // Represent the presence of the nullary tuple with one sentinel.
            if self.data.is_empty() {
                self.data.push(Value::Int(0));
            }
            return;
        }
        self.data.extend_from_slice(row);
    }

    /// Appends one tuple without arity checks (internal fast path).
    pub(crate) fn push_row_unchecked(&mut self, row: &[Value]) {
        debug_assert_eq!(row.len(), self.schema.arity());
        self.data.extend_from_slice(row);
    }

    /// Reserves capacity for `additional` more tuples.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional * self.schema.arity().max(1));
    }

    /// Set-semantics insert: appends `row` unless an equal tuple is
    /// already stored; returns whether the relation changed. Mirror of
    /// the factorised delta insert for the differential oracle.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn insert(&mut self, row: &[Value]) -> bool {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} does not match schema arity {}",
            row.len(),
            self.schema.arity()
        );
        if self.rows().any(|r| r == row) {
            return false;
        }
        self.push_row(row);
        true
    }

    /// Set-semantics delete: removes every stored tuple equal to `row`
    /// (a canonical relation holds at most one); returns whether the
    /// relation changed. Mirror of the factorised delta delete.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn delete_row(&mut self, row: &[Value]) -> bool {
        assert_eq!(
            row.len(),
            self.schema.arity(),
            "row arity {} does not match schema arity {}",
            row.len(),
            self.schema.arity()
        );
        self.delete_where(|r| r == row) > 0
    }

    /// Removes every tuple matching `pred`; returns how many went.
    /// Relative order of the survivors is preserved.
    pub fn delete_where(&mut self, mut pred: impl FnMut(&[Value]) -> bool) -> usize {
        let a = self.schema.arity();
        if a == 0 {
            // The nullary relation holds the nullary tuple at most once.
            if !self.data.is_empty() && pred(&[]) {
                self.data.clear();
                return 1;
            }
            return 0;
        }
        let before = self.len();
        let mut out: Vec<Value> = Vec::with_capacity(self.data.len());
        for row in self.data.chunks_exact(a) {
            if !pred(row) {
                out.extend_from_slice(row);
            }
        }
        self.data = out;
        before - self.len()
    }

    /// Borrowing access to the `i`-th tuple.
    pub fn row(&self, i: usize) -> &[Value] {
        let a = self.schema.arity();
        &self.data[i * a..(i + 1) * a]
    }

    /// Iterates over tuples as slices.
    pub fn rows(&self) -> impl Iterator<Item = &[Value]> + '_ {
        let a = self.schema.arity();
        if a == 0 {
            // chunks(1) over the sentinel yields one pseudo-row per tuple;
            // map to the empty slice.
            RowsIter::Nullary {
                remaining: self.len(),
            }
        } else {
            RowsIter::Chunks(self.data.chunks_exact(a))
        }
    }

    /// Sorts tuples lexicographically by the given keys (stable).
    ///
    /// Attributes not mentioned in `keys` keep their relative order, which
    /// mirrors how re-sorting can reuse existing orders (§1).
    pub fn sort_by_keys(&mut self, keys: &[SortKey]) {
        self.sort_by_keys_par(keys, 1);
    }

    /// Parallel stable sort on up to `threads` worker threads.
    ///
    /// Contiguous row chunks are stable-sorted in parallel and then
    /// stably merged (ties take the left, i.e. earlier, chunk), so the
    /// result is **identical** to [`Relation::sort_by_keys`] for every
    /// thread count; `threads <= 1` is exactly the serial sort.
    pub fn sort_by_keys_par(&mut self, keys: &[SortKey], threads: usize) {
        let positions: Vec<(usize, SortDir)> = keys
            .iter()
            .map(|k| {
                (
                    self.schema
                        .position(k.attr)
                        .expect("sort key must be in schema"),
                    k.dir,
                )
            })
            .collect();
        let a = self.schema.arity();
        if a == 0 {
            return;
        }
        let n = self.len();
        let data = &self.data;
        let cmp = |i: usize, j: usize| -> Ordering {
            let ri = &data[i * a..(i + 1) * a];
            let rj = &data[j * a..(j + 1) * a];
            for &(p, dir) in &positions {
                let ord = dir.apply(ri[p].cmp(&rj[p]));
                if ord != Ordering::Equal {
                    return ord;
                }
            }
            Ordering::Equal
        };
        let index: Vec<usize> = if threads <= 1 || n < 2 {
            let mut index: Vec<usize> = (0..n).collect();
            index.sort_by(|&i, &j| cmp(i, j));
            index
        } else {
            // Sort contiguous index chunks in parallel, carved at morsel
            // granularity (~4× threads) so stealing rebalances uneven
            // comparison costs. Each chunk holds ascending original
            // indices, and `sort_by` is stable, so ties within a chunk
            // keep input order.
            let chunks = fdb_exec::split_morsels((0..n).collect(), threads);
            let mut runs = fdb_exec::parallel_map(threads, chunks, |mut chunk: Vec<usize>| {
                chunk.sort_by(|&i, &j| cmp(i, j));
                chunk
            });
            // Merge adjacent runs pairwise; the independent pair merges
            // of each round run on the pool too. Every index of a left
            // run precedes every index of its right run in the input, so
            // taking the left on ties preserves overall stability.
            while runs.len() > 1 {
                let mut pairs: Vec<(Vec<usize>, Option<Vec<usize>>)> =
                    Vec::with_capacity(runs.len().div_ceil(2));
                let mut it = runs.into_iter();
                while let Some(left) = it.next() {
                    pairs.push((left, it.next()));
                }
                runs = fdb_exec::parallel_map(threads, pairs, |(left, right)| match right {
                    Some(right) => merge_runs(left, right, &cmp),
                    None => left,
                });
            }
            runs.pop().unwrap_or_default()
        };
        let mut out = Vec::with_capacity(self.data.len());
        for i in index {
            out.extend_from_slice(&self.data[i * a..(i + 1) * a]);
        }
        self.data = out;
    }

    /// Sorts by all columns ascending and removes duplicate tuples,
    /// producing the canonical set form used to compare query results.
    pub fn canonicalize(&mut self) {
        let a = self.schema.arity();
        if a == 0 {
            return;
        }
        let mut rows: Vec<&[Value]> = self.data.chunks_exact(a).collect();
        rows.sort();
        rows.dedup();
        let mut out = Vec::with_capacity(rows.len() * a);
        for r in rows {
            out.extend_from_slice(r);
        }
        self.data = out;
    }

    /// Returns a canonicalised copy (sorted by all columns, deduplicated).
    pub fn canonical(&self) -> Relation {
        let mut r = self.clone();
        r.canonicalize();
        r
    }

    /// True if the tuples are sorted (non-strictly) by `keys`.
    pub fn is_sorted_by(&self, keys: &[SortKey]) -> bool {
        let positions: Vec<(usize, SortDir)> = keys
            .iter()
            .filter_map(|k| self.schema.position(k.attr).map(|p| (p, k.dir)))
            .collect();
        if positions.len() != keys.len() {
            return false;
        }
        let mut prev: Option<&[Value]> = None;
        for row in self.rows() {
            if let Some(p) = prev {
                let mut ord = Ordering::Equal;
                for &(pos, dir) in &positions {
                    ord = dir.apply(p[pos].cmp(&row[pos]));
                    if ord != Ordering::Equal {
                        break;
                    }
                }
                if ord == Ordering::Greater {
                    return false;
                }
            }
            prev = Some(row);
        }
        true
    }

    /// Projects the relation onto `attrs` without deduplication.
    ///
    /// Only correct as a relational projection when `attrs` is a superkey or
    /// when followed by [`Relation::canonicalize`]; the distinct variant
    /// lives in [`crate::ops::project`].
    pub fn project_cols(&self, attrs: &[AttrId]) -> Relation {
        let positions: Vec<usize> = attrs
            .iter()
            .map(|a| self.schema.position(*a).expect("attr in schema"))
            .collect();
        let out_schema = Schema::new(attrs.to_vec());
        let mut out = Relation::empty(out_schema);
        out.reserve(self.len());
        let mut buf = Vec::with_capacity(attrs.len());
        for row in self.rows() {
            buf.clear();
            buf.extend(positions.iter().map(|&p| row[p].clone()));
            if buf.is_empty() {
                out.push_row(&buf);
            } else {
                out.push_row_unchecked(&buf);
            }
        }
        out
    }

    /// Renders the relation as an aligned table using `catalog` for headers.
    pub fn display<'a>(&'a self, catalog: &'a Catalog) -> RelationDisplay<'a> {
        RelationDisplay {
            relation: self,
            catalog,
        }
    }
}

/// Stable two-way merge of sorted index runs: ties take `left`, whose
/// indices all precede `right`'s in the original input.
fn merge_runs(
    left: Vec<usize>,
    right: Vec<usize>,
    cmp: &impl Fn(usize, usize) -> Ordering,
) -> Vec<usize> {
    let mut out = Vec::with_capacity(left.len() + right.len());
    let mut li = left.into_iter().peekable();
    let mut ri = right.into_iter().peekable();
    loop {
        match (li.peek(), ri.peek()) {
            (Some(&l), Some(&r)) => {
                if cmp(l, r) == Ordering::Greater {
                    out.push(r);
                    ri.next();
                } else {
                    out.push(l);
                    li.next();
                }
            }
            (Some(_), None) => {
                out.extend(li.by_ref());
                break;
            }
            (None, _) => {
                out.extend(ri.by_ref());
                break;
            }
        }
    }
    out
}

enum RowsIter<'a> {
    Chunks(std::slice::ChunksExact<'a, Value>),
    Nullary { remaining: usize },
}

impl<'a> Iterator for RowsIter<'a> {
    type Item = &'a [Value];

    fn next(&mut self) -> Option<&'a [Value]> {
        match self {
            RowsIter::Chunks(c) => c.next(),
            RowsIter::Nullary { remaining } => {
                if *remaining == 0 {
                    None
                } else {
                    *remaining -= 1;
                    Some(&[])
                }
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            RowsIter::Chunks(c) => c.size_hint(),
            RowsIter::Nullary { remaining } => (*remaining, Some(*remaining)),
        }
    }
}

/// Helper for [`Relation::display`].
pub struct RelationDisplay<'a> {
    relation: &'a Relation,
    catalog: &'a Catalog,
}

impl fmt::Display for RelationDisplay<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let headers: Vec<String> = self
            .relation
            .schema()
            .attrs()
            .iter()
            .map(|&a| self.catalog.name(a).to_string())
            .collect();
        let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
        let rows: Vec<Vec<String>> = self
            .relation
            .rows()
            .map(|r| r.iter().map(|v| v.to_string()).collect())
            .collect();
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        for (i, h) in headers.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{:width$}", h, width = widths[i])?;
        }
        writeln!(f)?;
        for row in &rows {
            for (i, cell) in row.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                write!(f, "{:width$}", cell, width = widths[i])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel_ab(rows: &[(i64, i64)]) -> (Catalog, Relation) {
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rel = Relation::from_rows(
            Schema::new(vec![a, b]),
            rows.iter()
                .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
        );
        (c, rel)
    }

    #[test]
    fn push_and_iterate() {
        let (_, rel) = rel_ab(&[(1, 2), (3, 4)]);
        assert_eq!(rel.len(), 2);
        let rows: Vec<Vec<i64>> = rel
            .rows()
            .map(|r| r.iter().map(|v| v.as_int().unwrap()).collect())
            .collect();
        assert_eq!(rows, vec![vec![1, 2], vec![3, 4]]);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let (_, mut rel) = rel_ab(&[]);
        rel.push_row(&[Value::Int(1)]);
    }

    #[test]
    fn sort_by_keys_multi() {
        let (c, mut rel) = rel_ab(&[(2, 1), (1, 2), (2, 0), (1, 1)]);
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        rel.sort_by_keys(&[SortKey::asc(a), SortKey::desc(b)]);
        let rows: Vec<(i64, i64)> = rel
            .rows()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 2), (1, 1), (2, 1), (2, 0)]);
        assert!(rel.is_sorted_by(&[SortKey::asc(a)]));
        assert!(!rel.is_sorted_by(&[SortKey::asc(b)]));
    }

    #[test]
    fn dedup_sort_keys_keeps_first_occurrence() {
        let (c, mut rel) = rel_ab(&[(2, 1), (1, 2), (2, 0), (1, 1)]);
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        // A conflicting-direction duplicate keeps the first occurrence.
        let keys = [SortKey::desc(a), SortKey::asc(b), SortKey::asc(a)];
        let norm = dedup_sort_keys(&keys);
        assert_eq!(norm, vec![SortKey::desc(a), SortKey::asc(b)]);
        // Sorting by the raw and the normalised list is identical: the
        // duplicate can never break a tie the first occurrence left.
        let mut raw = rel.clone();
        raw.sort_by_keys(&keys);
        rel.sort_by_keys(&norm);
        assert_eq!(raw, rel);
    }

    #[test]
    fn canonicalize_dedups() {
        let (_, mut rel) = rel_ab(&[(1, 1), (1, 1), (0, 5)]);
        rel.canonicalize();
        assert_eq!(rel.len(), 2);
        assert_eq!(rel.row(0), &[Value::Int(0), Value::Int(5)]);
    }

    #[test]
    fn nullary_relation_semantics() {
        let mut rel = Relation::empty(Schema::empty());
        assert_eq!(rel.len(), 0);
        rel.push_row(&[]);
        rel.push_row(&[]);
        // Set semantics: the nullary tuple is present at most once.
        assert_eq!(rel.len(), 1);
        assert_eq!(rel.rows().count(), 1);
    }

    #[test]
    fn project_cols_reorders() {
        let (c, rel) = rel_ab(&[(1, 2)]);
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        let p = rel.project_cols(&[b, a]);
        assert_eq!(p.row(0), &[Value::Int(2), Value::Int(1)]);
    }

    #[test]
    fn display_renders_headers() {
        let (c, rel) = rel_ab(&[(1, 2)]);
        let s = rel.display(&c).to_string();
        assert!(s.contains('a') && s.contains('b') && s.contains('1'));
    }

    #[test]
    fn parallel_sort_matches_serial_exactly() {
        // Duplicated keys force tie-breaking: the parallel merge must
        // reproduce the serial stable order bit for bit.
        let mut c = Catalog::new();
        let a = c.intern("a");
        let b = c.intern("b");
        let rows: Vec<(i64, i64)> = (0..97).map(|i| ((i * 7) % 5, (i * 13) % 3)).collect();
        let mk = || {
            Relation::from_rows(
                Schema::new(vec![a, b]),
                rows.iter()
                    .map(|&(x, y)| vec![Value::Int(x), Value::Int(y)]),
            )
        };
        let keys = [SortKey::asc(a), SortKey::desc(b)];
        let mut serial = mk();
        serial.sort_by_keys(&keys);
        for threads in [2, 3, 4, 8] {
            let mut par = mk();
            par.sort_by_keys_par(&keys, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn stable_sort_preserves_existing_suborder() {
        // Mirrors §1: a relation sorted by (a, b) re-sorted by b keeps the
        // a-order within equal b groups.
        let (c, mut rel) = rel_ab(&[(1, 7), (2, 7), (1, 3), (2, 3)]);
        let a = c.lookup("a").unwrap();
        let b = c.lookup("b").unwrap();
        rel.sort_by_keys(&[SortKey::asc(a), SortKey::asc(b)]);
        rel.sort_by_keys(&[SortKey::asc(b)]);
        let rows: Vec<(i64, i64)> = rel
            .rows()
            .map(|r| (r[0].as_int().unwrap(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(rows, vec![(1, 3), (2, 3), (1, 7), (2, 7)]);
    }
}
