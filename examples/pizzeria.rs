//! A guided tour of the paper's running example (Examples 1–11).
//!
//! Builds the pizzeria database of Figure 1, factorises the join `R =
//! Orders ⋈ Pizzas ⋈ Items` over the f-tree T1, and replays the paper's
//! aggregate scenarios step by step, printing the factorisations in the
//! paper's notation after each operator:
//!
//! 1. local aggregation (query `S`: price of each ordered pizza, T1 → T2);
//! 2. partial aggregation interleaved with restructuring (query `P`:
//!    revenue per customer, T2 → T3 → T4 → final);
//! 3. on-the-fly combination during enumeration (revenue per customer and
//!    pizza over T4, no further restructuring).
//!
//! Run with: `cargo run --release --example pizzeria`

use fdb::core::enumerate::{EnumSpec, GroupCursor};
use fdb::core::ftree::AggOp;
use fdb::core::ops::{self, AggTarget};
use fdb::workload::pizzeria::{factorised_r, pizzeria, t1};
use fdb::Catalog;

fn main() {
    let mut catalog = Catalog::new();
    let db = pizzeria(&mut catalog);
    let a = db.attrs;

    println!("== Figure 1: the factorisation of R over T1 ==");
    let rep = factorised_r(&db);
    println!("f-tree T1:\n{}", rep.ftree().display(&catalog));
    println!("factorisation:\n{}\n", rep.display(&catalog));
    println!(
        "({} tuples represented by {} singletons)\n",
        rep.tuple_count(),
        rep.singleton_count()
    );
    let _ = t1(&a);

    // ------------------------------------------------------------------
    println!("== Scenario 1 (query S): sum the price per pizza, locally ==");
    let item_node = rep.ftree().node_of_attr(a.item).unwrap();
    let sumprice = catalog.intern("sumprice");
    let target = AggTarget::subtree(rep.ftree(), item_node);
    let s = ops::aggregate(
        rep.clone(),
        &target,
        vec![AggOp::Sum(a.price)],
        vec![sumprice],
    )
    .expect("γ sum(price) over the item subtree");
    println!("f-tree T2:\n{}", s.ftree().display(&catalog));
    println!("factorisation:\n{}\n", s.display(&catalog));

    // ------------------------------------------------------------------
    println!("== Scenario 2 (query P): revenue per customer ==");
    // Swap customer up past date and pizza (T2 → T3).
    let n_cust = s.ftree().node_of_attr(a.customer).unwrap();
    let n_date = s.ftree().node(n_cust).parent.unwrap();
    let p = ops::swap(s, n_date, n_cust).expect("χ(date, customer)");
    let n_pizza = p.ftree().node(n_cust).parent.unwrap();
    let p = ops::swap(p, n_pizza, n_cust).expect("χ(pizza, customer)");
    println!(
        "f-tree T3 (customer pushed to the root):\n{}",
        p.ftree().display(&catalog)
    );

    // Count order dates per (customer, pizza) (T3 → T4).
    let n_date = p.ftree().node_of_attr(a.date).unwrap();
    let countdate = catalog.intern("countdate");
    let target = AggTarget::subtree(p.ftree(), n_date);
    let p = ops::aggregate(p, &target, vec![AggOp::Count], vec![countdate]).expect("γ count(date)");
    println!("f-tree T4:\n{}", p.ftree().display(&catalog));
    println!("factorisation over T4:\n{}\n", p.display(&catalog));

    // Final aggregate: sum over everything below customer.
    let below = p.ftree().node(n_cust).children.clone();
    let revenue = catalog.intern("revenue");
    let p_final = ops::aggregate(
        p.clone(),
        &AggTarget {
            parent: Some(n_cust),
            nodes: below,
        },
        vec![AggOp::Sum(a.price)],
        vec![revenue],
    )
    .expect("final γ sum(price)");
    println!("final result:\n{}\n", p_final.display(&catalog));
    let flat = p_final.flatten();
    println!("as a relation:\n{}", flat.display(&catalog));

    // ------------------------------------------------------------------
    println!("== Scenario 3: revenue per customer and pizza, on the fly ==");
    // Reuse the T4 factorisation: enumerate (customer, pizza) groups and
    // combine the partial aggregates per group without restructuring.
    let spec = EnumSpec::group_prefix(p.ftree(), &[a.customer, a.pizza])
        .expect("customer and pizza are above the partial aggregates");
    let mut cur = GroupCursor::new(&p, &spec).expect("group cursor");
    while let Some((vals, dangling)) = cur.next_group() {
        let v = fdb::core::agg::eval_funcs(p.ftree(), &dangling, &[AggOp::Sum(a.price)])
            .expect("sum over partial aggregates");
        println!("  {} × {} -> revenue {}", vals[0], vals[1], v);
    }
    println!("\n(the paper's numbers: Lucia 9, Mario 22 = 16 + 6, Pietro 9)");
}
