//! `ORDER BY … LIMIT` differential suite: the three physical ordering
//! strategies — bounded-heap top-k, collect-sort-cut, restructure+stream
//! — must agree on every query, swept over executors {fused, per-op} ×
//! threads {1, 2, 4}, including two-run determinism when ties straddle
//! the LIMIT boundary and NULL-bearing columns (NULLS LAST ascending,
//! first descending).
//!
//! Exactness levels (tie order *within* equal keys is a per-strategy
//! deterministic choice, not a cross-strategy promise):
//!
//! * heap ≡ sort **byte-identical** — the heap's stable tie-break makes
//!   it literally a stable sort + truncate;
//! * every strategy × executor × thread count: byte-identical to its own
//!   re-run (determinism) and identical to the reference on the ORDER BY
//!   key columns (the columns the query actually constrains);
//! * every output is sorted by the keys and is a subset of the
//!   unlimited result.

use fdb::core::engine::{ExecutorMode, FdbEngine, OrderMode, OrderStrategy, RunOptions};
use fdb::relational::planner::JoinAggTask;
use fdb::relational::{AggFunc, AggSpec, Relation, Schema, SortKey, Value};
use fdb::workload::orders::{generate, OrdersConfig};
use fdb::Catalog;

fn thread_sweep() -> Vec<usize> {
    vec![1, 2, 4]
}

fn order_attrs(task: &JoinAggTask) -> Vec<fdb::relational::AttrId> {
    let mut attrs: Vec<fdb::relational::AttrId> = Vec::new();
    for k in &task.order_by {
        if !attrs.contains(&k.attr) {
            attrs.push(k.attr);
        }
    }
    attrs
}

/// Runs `task` under every ordering mode × executor × thread count and
/// checks the agreement contract; returns the collect-sort-cut reference.
fn assert_strategies_agree(e: &mut FdbEngine, task: &JoinAggTask, label: &str) -> Relation {
    let keys = fdb::relational::dedup_sort_keys(&task.order_by);
    let key_attrs = order_attrs(task);
    let opts_for = |order, executor, threads| {
        RunOptions::new()
            .order(order)
            .executor(executor)
            .threads(threads)
    };
    let reference = e
        .run(
            task,
            opts_for(OrderMode::ForceSort, ExecutorMode::Staged, 1),
        )
        .unwrap_or_else(|err| panic!("{label}: sort reference plans: {err}"))
        .to_relation()
        .unwrap();
    let unlimited = {
        let mut t = task.clone();
        t.limit = None;
        e.run(&t, opts_for(OrderMode::ForceSort, ExecutorMode::Staged, 1))
            .unwrap()
            .to_relation()
            .unwrap()
            .canonical()
    };
    assert!(reference.is_sorted_by(&keys), "{label}: reference sorted");
    for mode in [
        OrderMode::Auto,
        OrderMode::ForceStream,
        OrderMode::ForceHeap,
        OrderMode::ForceSort,
    ] {
        for executor in [ExecutorMode::Staged, ExecutorMode::PerOp] {
            for threads in thread_sweep() {
                let opts = opts_for(mode, executor, threads);
                let mut run = || {
                    e.run(task, opts)
                        .unwrap_or_else(|err| {
                            panic!("{label}: {mode:?}/{executor:?}/t{threads}: {err}")
                        })
                        .to_relation_counted()
                        .unwrap()
                };
                let (out, stats) = run();
                let (out2, _) = run();
                assert_eq!(
                    out, out2,
                    "{label}: {mode:?}/{executor:?}/t{threads}: two runs diverged"
                );
                assert!(
                    out.is_sorted_by(&keys),
                    "{label}: {mode:?}/{executor:?}/t{threads}: unsorted output"
                );
                assert_eq!(
                    out.project_cols(&key_attrs),
                    reference.project_cols(&key_attrs),
                    "{label}: {mode:?}/{executor:?}/t{threads}: key columns differ"
                );
                let contained = out.rows().all(|r| unlimited.rows().any(|u| u == r));
                assert!(
                    contained,
                    "{label}: {mode:?}/{executor:?}/t{threads}: row not in unlimited result"
                );
                if mode == OrderMode::ForceHeap {
                    // Heap ≡ stable sort + truncate, byte for byte.
                    assert_eq!(
                        out, reference,
                        "{label}: heap/{executor:?}/t{threads} differs from sort"
                    );
                    if task.limit.is_some() {
                        assert!(
                            matches!(stats.strategy, OrderStrategy::HeapTopK { .. }),
                            "{label}: ForceHeap must execute the heap"
                        );
                    }
                }
            }
        }
    }
    reference
}

/// The orders workload with the factorised view registered.
fn orders_engine() -> (FdbEngine, fdb::workload::orders::OrdersDataset) {
    let mut catalog = Catalog::new();
    let ds = generate(
        &mut catalog,
        &OrdersConfig {
            scale: 1,
            customers: 10,
            seed: 0xBEEF,
        },
    );
    let mut e = FdbEngine::new(catalog);
    e.register_view("R1", ds.factorised_view());
    e.register_relation("Orders", ds.orders.clone());
    e.register_relation("Packages", ds.packages.clone());
    e.register_relation("Items", ds.items.clone());
    (e, ds)
}

#[test]
fn orders_workload_limit_sweep() {
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    // Q12-style: keys not realised by the stored f-tree (needs a swap to
    // stream), plus a LIMIT — the acceptance query shape.
    for k in [1, 7, 100] {
        let task = JoinAggTask {
            inputs: vec!["R1".into()],
            projection: Some(vec![a.date, a.package, a.item]),
            order_by: vec![
                SortKey::asc(a.date),
                SortKey::asc(a.package),
                SortKey::asc(a.item),
            ],
            limit: Some(k),
            ..Default::default()
        };
        assert_strategies_agree(&mut e, &task, &format!("Q12 LIMIT {k}"));
    }
    // Q7-style ORDER BY aggregate DESC LIMIT (ties in revenue likely).
    let revenue = e.catalog.intern("rev_diff");
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        group_by: vec![a.customer],
        aggregates: vec![AggSpec::new(AggFunc::Sum(a.price), revenue)],
        order_by: vec![SortKey::desc(revenue), SortKey::asc(a.customer)],
        limit: Some(3),
        ..Default::default()
    };
    assert_strategies_agree(&mut e, &task, "Q7 LIMIT 3");
    // Mixed directions without a limit: heap degrades to sort, stream
    // restructures; all agree.
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.date]),
        order_by: vec![SortKey::desc(a.package), SortKey::asc(a.date)],
        ..Default::default()
    };
    assert_strategies_agree(&mut e, &task, "mixed no-limit");
}

#[test]
fn ties_at_the_limit_boundary_are_deterministic() {
    // Revenue ties by construction: customers pair up with equal totals
    // and the LIMIT cuts inside a tie pair; no tiebreaker key.
    let build = || {
        let mut catalog = Catalog::new();
        let customer = catalog.intern("customer");
        let order_id = catalog.intern("order_id");
        let amount = catalog.intern("amount");
        let rows: Vec<Vec<Value>> = (0..12i64)
            .flat_map(|c| {
                (0..3i64).map(move |o| {
                    vec![
                        Value::Int(c),
                        Value::Int(c * 10 + o),
                        Value::Int(50 * (c / 2)),
                    ]
                })
            })
            .collect();
        let sales = Relation::from_rows(Schema::new(vec![customer, order_id, amount]), rows);
        let mut e = FdbEngine::new(catalog);
        e.register_relation("Sales", sales);
        e
    };
    let mut e = build();
    let customer = e.catalog.lookup("customer").unwrap();
    let amount = e.catalog.lookup("amount").unwrap();
    let revenue = e.catalog.intern("revenue");
    let task = JoinAggTask {
        inputs: vec!["Sales".into()],
        group_by: vec![customer],
        aggregates: vec![AggSpec::new(AggFunc::Sum(amount), revenue)],
        order_by: vec![SortKey::desc(revenue)], // ties, no tiebreaker
        limit: Some(5),                         // cuts inside a tie pair
        ..Default::default()
    };
    assert_strategies_agree(&mut e, &task, "tie boundary");
}

#[test]
fn null_bearing_columns_agree_on_placement() {
    // NULLS LAST under ASC, first under DESC — and every strategy agrees
    // because the rule lives in `Value::cmp` itself.
    let mut catalog = Catalog::new();
    let id = catalog.intern("id");
    let score = catalog.intern("score");
    let rows: Vec<Vec<Value>> = (0..20i64)
        .map(|i| {
            vec![
                Value::Int(i),
                if i % 4 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 5)
                },
            ]
        })
        .collect();
    let rel = Relation::from_rows(Schema::new(vec![id, score]), rows);
    let mut e = FdbEngine::new(catalog);
    e.register_relation("T", rel);
    for dir in [SortKey::asc(score), SortKey::desc(score)] {
        let task = JoinAggTask {
            inputs: vec!["T".into()],
            projection: Some(vec![score, id]),
            order_by: vec![dir, SortKey::asc(id)],
            limit: Some(6),
            ..Default::default()
        };
        let reference = assert_strategies_agree(&mut e, &task, &format!("nulls {:?}", dir.dir));
        // Spot-check the placement rule itself.
        let first_is_null = reference.row(0)[0].is_null();
        match dir.dir {
            fdb::relational::SortDir::Asc => {
                assert!(!first_is_null, "ASC puts NULLs last");
            }
            fdb::relational::SortDir::Desc => {
                assert!(first_is_null, "DESC puts NULLs first");
            }
        }
    }
}

#[test]
fn duplicate_conflicting_direction_keys_honour_first_everywhere() {
    // ORDER BY package DESC, package ASC: the ASC duplicate is dropped —
    // by every strategy, matching `Relation::sort_by_keys` on the raw
    // key list.
    let (mut e, ds) = orders_engine();
    let a = ds.attrs;
    let task = JoinAggTask {
        inputs: vec!["R1".into()],
        projection: Some(vec![a.package, a.item]),
        order_by: vec![
            SortKey::desc(a.package),
            SortKey::asc(a.package),
            SortKey::asc(a.item),
        ],
        limit: Some(9),
        ..Default::default()
    };
    let reference = assert_strategies_agree(&mut e, &task, "dup keys");
    // The raw (un-deduplicated) list sorts identically: the first
    // occurrence decided.
    assert!(reference.is_sorted_by(&fdb::relational::dedup_sort_keys(&task.order_by)));
    let mut resorted = reference.clone();
    resorted.sort_by_keys(&task.order_by);
    assert_eq!(resorted, reference);
}

/// `TOP_K(x, k)` per group (the PR-7 aggregate, not the `ORDER BY …
/// LIMIT` pipeline): every executor × thread count must be byte-identical
/// to the flat sort-and-truncate reference, twice in a row.
#[test]
fn top_k_per_group_matches_sort_and_truncate() {
    let mut catalog = Catalog::new();
    let customer = catalog.intern("customer");
    let order_id = catalog.intern("order_id");
    let amount = catalog.intern("amount");
    // Duplicates inside groups, ties across groups, scattered NULLs, and
    // one group (customer 99) whose amounts are all NULL.
    let mut rows: Vec<Vec<Value>> = (0..8i64)
        .flat_map(|c| {
            (0..5i64).map(move |o| {
                let a = if (c + o) % 5 == 0 {
                    Value::Null
                } else {
                    Value::Int((c * o * 7) % 13)
                };
                vec![Value::Int(c), Value::Int(c * 10 + o), a]
            })
        })
        .collect();
    for o in 0..3i64 {
        rows.push(vec![Value::Int(99), Value::Int(990 + o), Value::Null]);
    }
    let sales = Relation::from_rows(Schema::new(vec![customer, order_id, amount]), rows.clone());
    let mut e = FdbEngine::new(catalog);
    e.register_relation("Sales", sales);
    let top = e.catalog.intern("top");

    for k in [1usize, 3, 10] {
        // Flat reference: per group, sort the non-NULL amounts descending
        // and truncate to k (NULL when nothing survives).
        let mut expected: Vec<Vec<Value>> = Vec::new();
        let mut groups: Vec<i64> = rows.iter().map(|r| r[0].as_int().unwrap()).collect();
        groups.sort_unstable();
        groups.dedup();
        for c in groups {
            let mut vals: Vec<Value> = rows
                .iter()
                .filter(|r| r[0].as_int() == Some(c) && !r[2].is_null())
                .map(|r| r[2].clone())
                .collect();
            vals.sort_by(|a, b| b.cmp(a));
            vals.truncate(k);
            let v = if vals.is_empty() {
                Value::Null
            } else {
                Value::tup(vals)
            };
            expected.push(vec![Value::Int(c), v]);
        }
        let reference = Relation::from_rows(Schema::new(vec![customer, top]), expected);

        let task = JoinAggTask {
            inputs: vec!["Sales".into()],
            group_by: vec![customer],
            aggregates: vec![AggSpec::new(AggFunc::TopK(amount, k), top)],
            order_by: vec![SortKey::asc(customer)],
            ..Default::default()
        };
        for executor in [ExecutorMode::Staged, ExecutorMode::PerOp] {
            for threads in thread_sweep() {
                let mut run = || {
                    e.run(&task, RunOptions::new().executor(executor).threads(threads))
                        .unwrap_or_else(|err| panic!("top_k k={k} {executor:?}/t{threads}: {err}"))
                        .to_relation()
                        .unwrap()
                };
                let out = run();
                assert_eq!(
                    out, reference,
                    "top_k k={k} {executor:?}/t{threads} vs sort-and-truncate"
                );
                // Two-run determinism, byte for byte.
                assert_eq!(out, run(), "top_k k={k} {executor:?}/t{threads} re-run");
            }
        }
    }
}

#[test]
fn heap_memory_is_independent_of_flat_size_and_below_sort() {
    // The acceptance property at engine level: the heap's ordering-side
    // allocation depends on k, not on the flat result size, and sits
    // strictly below the collect-sort-cut buffer.
    let run = |customers: u32, mode: OrderMode| {
        let mut catalog = Catalog::new();
        let ds = generate(
            &mut catalog,
            &OrdersConfig {
                scale: 2,
                customers,
                seed: 7,
            },
        );
        let a = ds.attrs;
        let mut e = FdbEngine::new(catalog);
        e.register_view("R1", ds.factorised_view());
        let task = JoinAggTask {
            inputs: vec!["R1".into()],
            projection: Some(vec![a.date, a.package, a.item]),
            order_by: vec![
                SortKey::asc(a.date),
                SortKey::asc(a.package),
                SortKey::asc(a.item),
            ],
            limit: Some(10),
            ..Default::default()
        };
        let result = e.run(&task, RunOptions::new().order(mode)).unwrap();
        let (out, stats) = result.to_relation_counted().unwrap();
        assert_eq!(out.len(), 10);
        stats
    };
    let heap_small = run(20, OrderMode::ForceHeap);
    let heap_large = run(60, OrderMode::ForceHeap);
    let sort_large = run(60, OrderMode::ForceSort);
    assert!(
        heap_large.rows_enumerated > heap_small.rows_enumerated,
        "the large input must actually enumerate more rows \
         ({} vs {})",
        heap_large.rows_enumerated,
        heap_small.rows_enumerated
    );
    assert_eq!(
        heap_small.order_bytes, heap_large.order_bytes,
        "heap allocation must not scale with the flat result"
    );
    assert!(
        heap_large.order_bytes < sort_large.order_bytes,
        "heap ({}) must undercut collect-sort-cut ({})",
        heap_large.order_bytes,
        sort_large.order_bytes
    );
}
