//! Query optimisation for f-plans (§5).
//!
//! * [`cost`] — the paper's cost metric: tight factorisation size bounds
//!   from fractional edge covers of root paths;
//! * [`lp`] — the small simplex solver behind the bounds;
//! * [`mod@greedy`] — the polynomial-time heuristic of §5.2;
//! * [`mod@exhaustive`] — Dijkstra over the space of f-trees with permissible
//!   operators as edges (Prop. 3), exact but exponential.

pub mod cost;
pub mod exhaustive;
pub mod greedy;
pub mod lp;

pub use cost::{tree_cost, Stats};
pub use exhaustive::{exhaustive, ExhaustiveConfig};
pub use greedy::{greedy, QuerySpec};
