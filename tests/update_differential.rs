//! Differential oracle for the write path: randomised INSERT/DELETE
//! interleavings where the delta-maintained factorised view must stay
//! **byte-identical** to a from-scratch rebuild and agree with the
//! relational ground truth across both executors and every thread
//! count — plus snapshot isolation, batch atomicity and memoised-
//! annotation freshness at the `Db` level.

mod common;

use common::thread_sweep;
use fdb::core::engine::{ExecutorMode, RunOptions};
use fdb::relational::{CmpOp, Predicate};
use fdb::{Catalog, Db, FRep, FTree, FdbEngine, Relation, Schema, Value};
use std::collections::BTreeMap;

/// Deterministic LCG so the churn sequence is reproducible.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

/// `R(a, b, c)` over small domains, mirrored three ways: the
/// delta-maintained view inside a [`Db`], a plain [`Relation`] ground
/// truth, and (rebuilt on demand) a from-scratch factorisation.
struct Fixture {
    db: Db,
    mirror: Relation,
    tree: FTree,
}

fn fixture(seed: u64, initial: usize) -> Fixture {
    let mut catalog = Catalog::new();
    let a = catalog.intern("a");
    let b = catalog.intern("b");
    let c = catalog.intern("c");
    let tree = FTree::path(&[a, b, c]);
    let mut mirror = Relation::empty(Schema::new(vec![a, b, c]));
    let mut lcg = Lcg(seed);
    for _ in 0..initial {
        let row = random_row(&mut lcg);
        mirror.insert(&row);
    }
    let rep = FRep::from_relation(&mirror, tree.clone()).unwrap();
    let mut engine = FdbEngine::new(catalog);
    engine.register_view("R", rep);
    Fixture {
        db: Db::from_engine(engine),
        mirror,
        tree,
    }
}

fn random_row(lcg: &mut Lcg) -> Vec<Value> {
    vec![
        Value::Int((lcg.next() % 6) as i64),
        Value::Int((lcg.next() % 8) as i64),
        Value::Int((lcg.next() % 10) as i64),
    ]
}

/// Sorted distinct rows of the mirror — the ground truth for
/// `SELECT a, b, c FROM R ORDER BY a, b, c`.
fn sorted_rows(mirror: &Relation) -> Vec<Vec<Value>> {
    let mut rows: Vec<Vec<Value>> = mirror.rows().map(<[Value]>::to_vec).collect();
    rows.sort_by(|x, y| x.partial_cmp(y).unwrap());
    rows
}

/// Ground truth for `SELECT a, SUM(c) AS s FROM R GROUP BY a ORDER BY a`.
fn grouped_sums(mirror: &Relation) -> Vec<(i64, i64)> {
    let mut sums: BTreeMap<i64, i64> = BTreeMap::new();
    for row in mirror.rows() {
        let (Value::Int(a), Value::Int(c)) = (&row[0], &row[2]) else {
            panic!("fixture rows are integers")
        };
        *sums.entry(*a).or_insert(0) += c;
    }
    sums.into_iter().collect()
}

fn as_pairs(rel: &Relation) -> Vec<(i64, i64)> {
    rel.rows()
        .map(|r| {
            let (Value::Int(a), Value::Int(s)) = (&r[0], &r[1]) else {
                panic!("integer outputs")
            };
            (*a, *s)
        })
        .collect()
}

fn as_rows(rel: &Relation) -> Vec<Vec<Value>> {
    rel.rows().map(<[Value]>::to_vec).collect()
}

/// Checks the current `Db` state three ways: the registered view is
/// byte-identical to a from-scratch rebuild of the mirror, and both
/// a projection and a grouped aggregate agree with the relational
/// ground truth across both executors × the thread sweep.
fn check(fx: &Fixture, step: usize) {
    let mut session = fx.db.session();
    let rebuilt = FRep::from_relation(&fx.mirror, fx.tree.clone()).unwrap();
    let live = session.engine_mut().view("R").expect("view registered");
    assert!(
        live.same_data(&rebuilt),
        "step {step}: delta-maintained view diverged from rebuild \
         ({} vs {} tuples)",
        live.tuple_count(),
        rebuilt.tuple_count()
    );

    let want_rows = sorted_rows(&fx.mirror);
    let want_sums = grouped_sums(&fx.mirror);
    for threads in thread_sweep() {
        for executor in [ExecutorMode::Staged, ExecutorMode::PerOp] {
            let opts = RunOptions::new().threads(threads).executor(executor);
            let got = session
                .query_with("SELECT a, b, c FROM R ORDER BY a, b, c", opts)
                .unwrap_or_else(|e| panic!("step {step} projection: {e}"));
            assert_eq!(
                as_rows(&got.rows),
                want_rows,
                "step {step}: projection ({executor:?}, threads={threads})"
            );
            let got = session
                .query_with("SELECT a, SUM(c) AS s FROM R GROUP BY a ORDER BY a", opts)
                .unwrap_or_else(|e| panic!("step {step} aggregate: {e}"));
            assert_eq!(
                as_pairs(&got.rows),
                want_sums,
                "step {step}: aggregate ({executor:?}, threads={threads})"
            );
        }
    }
}

/// The tentpole differential: 120 randomised insert / delete-row /
/// delete-where steps; every 10 steps the delta-maintained view must be
/// byte-identical to a from-scratch rebuild AND both executors at every
/// thread count must reproduce the relational ground truth.
#[test]
fn randomised_churn_delta_equals_rebuild_and_relational() {
    let mut fx = fixture(0xFDB_2013, 40);
    let mut lcg = Lcg(0xBEEF);
    check(&fx, 0);
    for step in 1..=120 {
        match lcg.next() % 4 {
            // Insert (sometimes a duplicate — must be a no-op).
            0 | 1 => {
                let row = random_row(&mut lcg);
                let added = fx.mirror.insert(&row);
                let report = fx.db.insert("R", [row]).unwrap();
                assert_eq!(report, usize::from(added), "step {step}: insert count");
            }
            // Delete one existing row (or a guaranteed-absent one).
            2 => {
                let row = if fx.mirror.is_empty() || lcg.next() % 5 == 0 {
                    vec![Value::Int(99), Value::Int(99), Value::Int(99)]
                } else {
                    let i = (lcg.next() as usize) % fx.mirror.len();
                    fx.mirror.row(i).to_vec()
                };
                let removed = fx.mirror.delete_row(&row);
                let got = fx.db.delete_row("R", row).unwrap();
                assert_eq!(got, removed, "step {step}: delete-row count");
            }
            // Predicate delete: everything with a = v.
            _ => {
                let v = (lcg.next() % 6) as i64;
                let removed = fx.mirror.delete_where(|r| r[0] == Value::Int(v));
                let preds = vec![Predicate::AttrCmp(
                    fx.db.catalog().intern("a"),
                    CmpOp::Eq,
                    Value::Int(v),
                )];
                let got = fx.db.delete_where("R", preds).unwrap();
                assert_eq!(got, removed, "step {step}: delete-where count");
            }
        }
        if step % 10 == 0 {
            check(&fx, step);
        }
    }
    // Drain to empty and refill: the empty rep round-trips.
    let n = fx.mirror.delete_where(|_| true);
    assert_eq!(fx.db.delete_where("R", Vec::new()).unwrap(), n);
    check(&fx, 121);
    let row = vec![Value::Int(1), Value::Int(2), Value::Int(3)];
    fx.mirror.insert(&row);
    fx.db.insert("R", [row]).unwrap();
    check(&fx, 122);
}

/// Sessions pin a snapshot: a session opened before a write keeps
/// answering from its epoch — identical bytes before and after the
/// write — while fresh sessions see the new state. Readers in other
/// threads observe the same isolation.
#[test]
fn sessions_are_snapshot_isolated_under_churn() {
    let fx = fixture(7, 30);
    let sql = "SELECT a, b, c FROM R ORDER BY a, b, c";
    let mut pinned = fx.db.session();
    let before = pinned.query(sql).unwrap().rows;
    let epoch0 = pinned.epoch();

    // Concurrent readers each pin their own snapshot while the main
    // thread churns; both reads inside one session must be identical.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let mut session = fx.db.session();
                scope.spawn(move || {
                    let first = session.query(sql).unwrap().rows;
                    std::thread::yield_now();
                    let second = session.query(sql).unwrap().rows;
                    assert_eq!(first, second, "a session must never see a write");
                    first
                })
            })
            .collect();
        let mut lcg = Lcg(11);
        for _ in 0..40 {
            fx.db.insert("R", [random_row(&mut lcg)]).unwrap();
        }
        for h in handles {
            // Readers pinned the pre-churn epoch (spawned before the
            // writes), so they all saw the original state.
            assert_eq!(h.join().unwrap(), before);
        }
    });

    // The pre-write session still answers from its snapshot…
    assert_eq!(pinned.query(sql).unwrap().rows, before);
    assert_eq!(pinned.epoch(), epoch0);
    // …while a fresh session sees the post-churn state.
    let mut fresh = fx.db.session();
    assert!(fresh.epoch() > epoch0);
    assert!(fresh.query(sql).unwrap().rows.len() >= before.len());
}

/// `begin_batch` commits atomically: one epoch bump for many ops, and a
/// failing op aborts the whole batch — no partial state, no bump.
#[test]
fn write_batches_commit_atomically_or_not_at_all() {
    let fx = fixture(3, 10);
    let epoch0 = fx.db.epoch();
    let before = sorted_rows(&fx.mirror);

    // A failing batch (unknown table in the middle) must leave no trace.
    let mut batch = fx.db.begin_batch();
    batch
        .insert("R", vec![Value::Int(50), Value::Int(50), Value::Int(50)])
        .delete_where("NoSuchTable", Vec::new())
        .insert("R", vec![Value::Int(51), Value::Int(51), Value::Int(51)]);
    assert_eq!(batch.len(), 3);
    assert!(batch.commit().is_err());
    assert_eq!(
        fx.db.epoch(),
        epoch0,
        "failed batch must not bump the epoch"
    );
    let mut s = fx.db.session();
    let rows = s
        .query("SELECT a, b, c FROM R ORDER BY a, b, c")
        .unwrap()
        .rows;
    assert_eq!(as_rows(&rows), before, "failed batch must not leak writes");

    // A successful multi-op batch lands together under ONE epoch bump.
    let mut batch = fx.db.begin_batch();
    batch
        .insert("R", vec![Value::Int(60), Value::Int(0), Value::Int(0)])
        .insert("R", vec![Value::Int(61), Value::Int(0), Value::Int(0)])
        .delete_row("R", vec![Value::Int(60), Value::Int(0), Value::Int(0)]);
    let report = batch.commit().unwrap();
    assert_eq!((report.inserted, report.deleted), (2, 1));
    assert_eq!(fx.db.epoch(), epoch0 + 1, "one bump per committed batch");

    // An all-no-op batch (set semantics) must NOT bump the epoch.
    let mut batch = fx.db.begin_batch();
    batch.insert("R", vec![Value::Int(61), Value::Int(0), Value::Int(0)]);
    let report = batch.commit().unwrap();
    assert_eq!((report.inserted, report.deleted), (0, 0));
    assert_eq!(fx.db.epoch(), epoch0 + 1, "no-op batch must not bump");
}

/// Satellite 1 (staleness audit at the facade): the count annotations
/// memoised for direct access are invalidated by writes — paginated
/// queries after a write land on the post-write offsets, never on the
/// stale index.
#[test]
fn memoised_count_annotations_stay_fresh_across_writes() {
    let mut fx = fixture(5, 25);
    let sql = "SELECT a, b, c FROM R ORDER BY a, b, c LIMIT 3 OFFSET 4";
    let page = |mirror: &Relation| -> Vec<Vec<Value>> {
        sorted_rows(mirror).into_iter().skip(4).take(3).collect()
    };

    // Force the count index by paginating, then write, then re-paginate.
    let mut s = fx.db.session();
    assert_eq!(as_rows(&s.query(sql).unwrap().rows), page(&fx.mirror));

    let mut lcg = Lcg(99);
    for step in 0..12 {
        if step % 3 == 2 && !fx.mirror.is_empty() {
            let row = fx.mirror.row(0).to_vec();
            fx.mirror.delete_row(&row);
            fx.db.delete_row("R", row).unwrap();
        } else {
            let row = random_row(&mut lcg);
            fx.mirror.insert(&row);
            fx.db.insert("R", [row]).unwrap();
        }
        let mut s = fx.db.session();
        let got = s.query(sql).unwrap();
        assert_eq!(
            as_rows(&got.rows),
            page(&fx.mirror),
            "step {step}: page served from a stale count index"
        );
    }
}
