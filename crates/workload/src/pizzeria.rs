//! The pizzeria micro-database of Figure 1 — Orders, Pizzas, Items — plus
//! the factorisation of `R = Orders ⋈ Pizzas ⋈ Items` over the f-tree T1.
//!
//! Used by examples and tests to walk through the paper's running
//! examples with exactly the paper's data.

use fdb_core::ftree::{FTree, NodeLabel};
use fdb_core::FRep;
use fdb_relational::{AttrId, Catalog, Relation, Schema, Value};

/// Attribute handles for the pizzeria schema.
#[derive(Clone, Copy, Debug)]
pub struct PizzeriaAttrs {
    pub customer: AttrId,
    pub date: AttrId,
    pub pizza: AttrId,
    pub item: AttrId,
    pub price: AttrId,
}

/// The three base relations plus attribute handles.
#[derive(Clone, Debug)]
pub struct Pizzeria {
    pub attrs: PizzeriaAttrs,
    pub orders: Relation,
    pub pizzas: Relation,
    pub items: Relation,
}

/// Builds the Figure 1 database. Dates are encoded as integers
/// (Monday=1, Tuesday=2, Friday=5) so ordering behaves like the weekdays.
pub fn pizzeria(catalog: &mut Catalog) -> Pizzeria {
    let attrs = PizzeriaAttrs {
        customer: catalog.intern("customer"),
        date: catalog.intern("date"),
        pizza: catalog.intern("pizza"),
        item: catalog.intern("item"),
        price: catalog.intern("price"),
    };
    let orders = Relation::from_rows(
        Schema::new(vec![attrs.customer, attrs.date, attrs.pizza]),
        [
            ("Mario", 1, "Capricciosa"),
            ("Mario", 2, "Margherita"),
            ("Pietro", 5, "Hawaii"),
            ("Lucia", 5, "Hawaii"),
            ("Mario", 5, "Capricciosa"),
        ]
        .into_iter()
        .map(|(c, d, p)| vec![Value::str(c), Value::Int(d), Value::str(p)]),
    );
    let pizzas = Relation::from_rows(
        Schema::new(vec![attrs.pizza, attrs.item]),
        [
            ("Margherita", "base"),
            ("Capricciosa", "base"),
            ("Capricciosa", "ham"),
            ("Capricciosa", "mushrooms"),
            ("Hawaii", "base"),
            ("Hawaii", "ham"),
            ("Hawaii", "pineapple"),
        ]
        .into_iter()
        .map(|(p, i)| vec![Value::str(p), Value::str(i)]),
    );
    let items = Relation::from_rows(
        Schema::new(vec![attrs.item, attrs.price]),
        [("base", 6), ("ham", 1), ("mushrooms", 1), ("pineapple", 2)]
            .into_iter()
            .map(|(i, p)| vec![Value::str(i), Value::Int(p)]),
    );
    Pizzeria {
        attrs,
        orders,
        pizzas,
        items,
    }
}

/// The f-tree T1 of Figure 2: pizza → {date → customer, item → price},
/// with the dependency edges of the three base relations.
pub fn t1(attrs: &PizzeriaAttrs) -> FTree {
    let mut t = FTree::new();
    let n_pizza = t.add_node(NodeLabel::Atomic(vec![attrs.pizza]), None);
    let n_date = t.add_node(NodeLabel::Atomic(vec![attrs.date]), Some(n_pizza));
    t.add_node(NodeLabel::Atomic(vec![attrs.customer]), Some(n_date));
    let n_item = t.add_node(NodeLabel::Atomic(vec![attrs.item]), Some(n_pizza));
    t.add_node(NodeLabel::Atomic(vec![attrs.price]), Some(n_item));
    t.add_dep([attrs.customer, attrs.date, attrs.pizza]);
    t.add_dep([attrs.pizza, attrs.item]);
    t.add_dep([attrs.item, attrs.price]);
    t
}

/// The factorisation of `Orders ⋈ Pizzas ⋈ Items` over T1 (Figure 1,
/// right), built from the flat join — valid because the join satisfies
/// T1's join dependencies by construction.
pub fn factorised_r(db: &Pizzeria) -> FRep {
    let j1 = fdb_relational::ops::hash_join(&db.orders, &db.pizzas);
    let j2 = fdb_relational::ops::hash_join(&j1, &db.items);
    // Reorder columns to T1's pre-order.
    let flat = j2.project_cols(&[
        db.attrs.pizza,
        db.attrs.date,
        db.attrs.customer,
        db.attrs.item,
        db.attrs.price,
    ]);
    FRep::from_relation(&flat, t1(&db.attrs)).expect("join fits T1")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_cardinalities() {
        let mut c = Catalog::new();
        let db = pizzeria(&mut c);
        assert_eq!(db.orders.len(), 5);
        assert_eq!(db.pizzas.len(), 7);
        assert_eq!(db.items.len(), 4);
    }

    #[test]
    fn factorisation_represents_the_join() {
        let mut c = Catalog::new();
        let db = pizzeria(&mut c);
        let rep = factorised_r(&db);
        rep.check_invariants().unwrap();
        // 13 tuples in the join (3+3 Capricciosa, 3+3 Hawaii, 1 Margherita).
        assert_eq!(rep.tuple_count(), 13);
        // The factorisation is smaller than the flat relation: 13 tuples ×
        // 5 attributes = 65 singletons flat.
        assert!(rep.singleton_count() < 65);
        let flat = rep.flatten().canonical();
        let j1 = fdb_relational::ops::hash_join(&db.orders, &db.pizzas);
        let j2 = fdb_relational::ops::hash_join(&j1, &db.items);
        let expected = j2
            .project_cols(&[
                db.attrs.pizza,
                db.attrs.date,
                db.attrs.customer,
                db.attrs.item,
                db.attrs.price,
            ])
            .canonical();
        assert_eq!(flat, expected);
    }

    #[test]
    fn revenue_example_numbers() {
        // Example 1: Lucia 9, Mario 22, Pietro 9 via the relational path.
        let mut c = Catalog::new();
        let db = pizzeria(&mut c);
        let j1 = fdb_relational::ops::hash_join(&db.orders, &db.pizzas);
        let j2 = fdb_relational::ops::hash_join(&j1, &db.items);
        let rev = c.intern("revenue");
        let out = fdb_relational::ops::group_aggregate(
            &j2,
            &[db.attrs.customer],
            &[
                fdb_relational::AggSpec::new(fdb_relational::AggFunc::Sum(db.attrs.price), rev)
                    .into(),
            ],
            fdb_relational::GroupStrategy::Sort,
        );
        let rows: Vec<(String, i64)> = out
            .rows()
            .map(|r| (r[0].as_str().unwrap().to_string(), r[1].as_int().unwrap()))
            .collect();
        assert_eq!(
            rows,
            vec![
                ("Lucia".to_string(), 9),
                ("Mario".to_string(), 22),
                ("Pietro".to_string(), 9)
            ]
        );
    }
}
