//! # fdb-workload — synthetic datasets for the FDB experiments
//!
//! * [`mod@pizzeria`] — the Figure 1 micro-database (Orders, Pizzas, Items)
//!   and the factorisation of their join over the f-tree T1, used to walk
//!   through the paper's running examples;
//! * [`orders`] — the scalable benchmark generator of §6 (Orders,
//!   Packages, Items with scale parameter `s`), including direct
//!   construction of the factorised materialised view `R1` over the
//!   paper's f-tree `T`;
//! * [`rng`] — binomial and distinct-k sampling used by the generators.

pub mod orders;
pub mod pizzeria;
pub mod rng;

pub use orders::{generate, OrdersConfig, OrdersDataset};
pub use pizzeria::{factorised_r, pizzeria, Pizzeria};
